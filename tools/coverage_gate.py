#!/usr/bin/env python3
"""Line-coverage gate for the corpus subsystem (stdlib-only).

Runs the corpus test suites (``tests/corpus``) under a ``sys.settrace``
line tracer scoped to ``src/repro/corpus/*.py``, computes per-file and
aggregate line coverage, and fails when the aggregate drops below the
committed floor — so the columnar record store, index, search,
statistics and differential reference can't regress to untested.

Executable lines are derived from the compiled code objects
(``co_lines`` over the module and every nested function/class body), so
the denominator is what the interpreter could actually attribute a line
event to — not raw source lines.

No third-party dependency: the sandbox image has no ``coverage``
package, and the gate must run identically offline and in CI.

Usage: ``python tools/coverage_gate.py`` (from the repo root; the
Makefile target sets PYTHONPATH).  Exit status 0 = floor held, 1 =
coverage regression or test failure.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
TARGET_DIR = REPO_ROOT / "src" / "repro" / "corpus"
TEST_ARGS = ["-q", "-p", "no:cacheprovider", str(REPO_ROOT / "tests" / "corpus")]

#: The gate: aggregate line coverage of src/repro/corpus under
#: tests/corpus must not drop below this.  Measured 97% when the
#: columnar subsystem landed (PR 5); raise it when coverage grows,
#: never lower it to make a failing PR pass.
FLOOR_PERCENT = 95.0


def executable_lines(path: Path) -> set[int]:
    """Line numbers the interpreter can attribute events to, i.e. the
    union of ``co_lines`` over the module code object and every code
    object reachable through ``co_consts``."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        lines.update(
            line for _start, _end, line in current.co_lines() if line is not None
        )
        stack.extend(
            const for const in current.co_consts if hasattr(const, "co_lines")
        )
    return lines


def main() -> int:
    import pytest

    targets = sorted(TARGET_DIR.glob("*.py"))
    target_names = {str(path) for path in targets}
    hit: dict[str, set[int]] = {name: set() for name in target_names}

    def tracer(frame, event, _arg):
        filename = frame.f_code.co_filename
        if filename not in target_names:
            return None  # don't trace lines outside the subsystem
        lines = hit[filename]

        def local(frame, event, _arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local

        if event == "call":
            lines.add(frame.f_lineno)
        return local

    # Trace before importing: module-level lines (class bodies, defs)
    # execute exactly once, at import time.
    for name in list(sys.modules):
        if name == "repro" or name.startswith("repro."):
            del sys.modules[name]
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(TEST_ARGS)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"coverage gate: test run failed (pytest exit {exit_code})")
        return 1

    total_executable = 0
    total_hit = 0
    print(f"{'file':<44} {'lines':>6} {'hit':>6} {'cover':>7}")
    for path in targets:
        expected = executable_lines(path)
        covered = hit[str(path)] & expected
        total_executable += len(expected)
        total_hit += len(covered)
        percent = 100.0 * len(covered) / len(expected) if expected else 100.0
        print(
            f"{path.relative_to(REPO_ROOT).as_posix():<44} "
            f"{len(expected):>6} {len(covered):>6} {percent:>6.1f}%"
        )
    aggregate = 100.0 * total_hit / total_executable if total_executable else 100.0
    print(f"{'TOTAL':<44} {total_executable:>6} {total_hit:>6} {aggregate:>6.1f}%")
    if aggregate < FLOOR_PERCENT:
        print(
            f"coverage gate: {aggregate:.1f}% < floor {FLOOR_PERCENT:.1f}% — "
            "the corpus subsystem lost test coverage"
        )
        return 1
    print(f"coverage gate: {aggregate:.1f}% >= floor {FLOOR_PERCENT:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
