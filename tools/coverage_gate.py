#!/usr/bin/env python3
"""Line-coverage gate for the gated subsystems (stdlib-only).

Runs the gated test suites under a ``sys.settrace`` line tracer scoped
to the gated source directories, computes per-file and aggregate line
coverage per subsystem, and fails when any subsystem's aggregate drops
below its committed floor.  Gated today:

* ``src/repro/corpus``     against ``tests/corpus``     (floor 95%) —
  the columnar record store, index, search, statistics and the
  differential reference can't regress to untested;
* ``src/repro/durability`` against ``tests/durability`` (floor 95%) —
  the write-ahead log, snapshots, fault clock and recovery path are
  exactly the code that only runs when something already went wrong,
  so untested lines there are latent data loss;
* ``src/repro/resilience`` against ``tests/resilience`` (floor 95%) —
  retries, breakers and quarantine are likewise fault-path-only code:
  a line that never ran in tests first runs during a production fault;
* ``src/repro/state``      against ``tests/state``      (floor 95%) —
  the fork/merge/delta protocol is what the process runtime ships
  across its boundary; an untested line there is silent state
  divergence between parent and child.

One pytest run covers all suites; coverage is attributed per subsystem
afterwards, so cross-subsystem hits (the durability tests exercising
corpus restore, say) count for both.

Executable lines are derived from the compiled code objects
(``co_lines`` over the module and every nested function/class body), so
the denominator is what the interpreter could actually attribute a line
event to — not raw source lines.

No third-party dependency: the sandbox image has no ``coverage``
package, and the gate must run identically offline and in CI.

Usage: ``python tools/coverage_gate.py`` (from the repo root; the
Makefile target sets PYTHONPATH).  Exit status 0 = every floor held,
1 = coverage regression or test failure.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: The gates: (source subsystem, test suite, aggregate floor percent).
#: Floors are raised when coverage grows, never lowered to make a
#: failing PR pass.  corpus measured 97% when the columnar subsystem
#: landed (PR 5); durability measured 97% when the WAL/snapshot layer
#: landed (PR 6); resilience measured 96.7% when the
#: fault-tolerance subsystem landed (PR 7); state measured
#: 100% when the process runtime landed (PR 8).
SUBSYSTEMS: tuple[tuple[str, str, float], ...] = (
    ("src/repro/corpus", "tests/corpus", 95.0),
    ("src/repro/durability", "tests/durability", 95.0),
    ("src/repro/resilience", "tests/resilience", 95.0),
    ("src/repro/state", "tests/state", 95.0),
)


def executable_lines(path: Path) -> set[int]:
    """Line numbers the interpreter can attribute events to, i.e. the
    union of ``co_lines`` over the module code object and every code
    object reachable through ``co_consts``."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        current = stack.pop()
        lines.update(
            line for _start, _end, line in current.co_lines() if line is not None
        )
        stack.extend(
            const for const in current.co_consts if hasattr(const, "co_lines")
        )
    return lines


def main() -> int:
    import pytest

    targets_by_subsystem: dict[str, list[Path]] = {
        source: sorted((REPO_ROOT / source).glob("*.py"))
        for source, _tests, _floor in SUBSYSTEMS
    }
    target_names = {
        str(path) for paths in targets_by_subsystem.values() for path in paths
    }
    hit: dict[str, set[int]] = {name: set() for name in target_names}
    test_args = ["-q", "-p", "no:cacheprovider"] + [
        str(REPO_ROOT / tests) for _source, tests, _floor in SUBSYSTEMS
    ]

    def tracer(frame, event, _arg):
        filename = frame.f_code.co_filename
        if filename not in target_names:
            return None  # don't trace lines outside the gated subsystems
        lines = hit[filename]

        def local(frame, event, _arg):
            if event == "line":
                lines.add(frame.f_lineno)
            return local

        if event == "call":
            lines.add(frame.f_lineno)
        return local

    # Trace before importing: module-level lines (class bodies, defs)
    # execute exactly once, at import time.
    for name in list(sys.modules):
        if name == "repro" or name.startswith("repro."):
            del sys.modules[name]
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        exit_code = pytest.main(test_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print(f"coverage gate: test run failed (pytest exit {exit_code})")
        return 1

    failures: list[str] = []
    print(f"{'file':<44} {'lines':>6} {'hit':>6} {'cover':>7}")
    for source, _tests, floor in SUBSYSTEMS:
        total_executable = 0
        total_hit = 0
        for path in targets_by_subsystem[source]:
            expected = executable_lines(path)
            covered = hit[str(path)] & expected
            total_executable += len(expected)
            total_hit += len(covered)
            percent = 100.0 * len(covered) / len(expected) if expected else 100.0
            print(
                f"{path.relative_to(REPO_ROOT).as_posix():<44} "
                f"{len(expected):>6} {len(covered):>6} {percent:>6.1f}%"
            )
        aggregate = (
            100.0 * total_hit / total_executable if total_executable else 100.0
        )
        label = f"TOTAL {source}"
        print(f"{label:<44} {total_executable:>6} {total_hit:>6} {aggregate:>6.1f}%")
        if aggregate < floor:
            failures.append(
                f"{source}: {aggregate:.1f}% < floor {floor:.1f}%"
            )
        else:
            print(
                f"coverage gate: {source} {aggregate:.1f}% >= floor {floor:.1f}%"
            )
    if failures:
        for failure in failures:
            print(f"coverage gate: {failure} — the subsystem lost test coverage")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
