#!/usr/bin/env python3
"""Markdown link checker for the repo docs (``make docs-check``).

Validates every inline markdown link and image in ``README.md`` and
``docs/**/*.md`` (plus any extra files passed on the command line),
offline and stdlib-only:

* **relative links** must point at an existing file or directory,
  resolved from the linking file (query strings stripped);
* **anchored links** (``file.md#section`` or ``#section``) must match a
  heading in the target file, using GitHub's anchor slugging
  (lower-case, punctuation dropped, spaces to hyphens);
* **absolute URLs** are checked for scheme sanity only (no network);
* bare ``http(s)://`` autolinks and code spans/fences are ignored.

Exit status is the number of broken links, capped at 100 so it can
never wrap modulo 256 back to 0 (0 = clean), letting the Makefile and
CI gate on it.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` / ``![alt](target)`` inline links; target ends at
#: the first unescaped ``)`` (titles after whitespace are tolerated).
_LINK = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\s*\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_CODE_FENCE = re.compile(r"^(```|~~~)")
_CODE_SPAN = re.compile(r"`[^`]*`")


def _slug(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = re.sub(r"[*_`~]", "", heading.strip().lower())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def _markdown_lines(path: Path) -> list[str]:
    """File lines with fenced code blocks and inline code spans blanked,
    so example links inside code are not checked."""
    lines: list[str] = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _CODE_FENCE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else _CODE_SPAN.sub("", line))
    return lines


def _anchors(path: Path) -> set[str]:
    anchors: set[str] = set()
    for line in _markdown_lines(path):
        match = _HEADING.match(line)
        if match:
            anchors.add(_slug(match.group(2)))
    return anchors


def check_file(path: Path) -> list[str]:
    """Human-readable problem strings for every broken link in ``path``."""
    problems: list[str] = []
    try:
        shown = path.relative_to(REPO_ROOT)
    except ValueError:
        shown = path
    for number, line in enumerate(_markdown_lines(path), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            where = f"{shown}:{number}"
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # absolute URL
                if not target.startswith(("http://", "https://", "mailto:")):
                    problems.append(f"{where}: suspicious URL scheme in {target!r}")
                continue
            base, _, anchor = target.partition("#")
            resolved = (path.parent / base).resolve() if base else path
            if not resolved.exists():
                problems.append(f"{where}: broken link target {target!r}")
                continue
            if anchor and resolved.suffix == ".md":
                if _slug(anchor) not in _anchors(resolved):
                    problems.append(f"{where}: missing anchor {target!r}")
    return problems


def main(argv: list[str] | None = None) -> int:
    extra = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    files = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("**/*.md")), *extra]
    problems: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            problems.append(f"{path}: file missing")
            continue
        checked += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    print(f"docs-check: {checked} files, {len(problems)} problem(s)")
    return min(len(problems), 100)


if __name__ == "__main__":
    raise SystemExit(main())
