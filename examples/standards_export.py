#!/usr/bin/env python3
"""Distance-learning standards export (the paper's section-5 future work).

Runs a short class to accumulate a FAQ, then exports:

* a SCORM/IMS content package of the knowledge body (imsmanifest.xml plus
  one HTML SCO per concept, taxonomy-nested), and
* an IMS QTI-style self-check assessment generated from the FAQ.

Also demonstrates transcript archiving + offline QA mining, and the
teaching-material recommendation a struggling learner receives.

Run:  python examples/standards_export.py [output-dir]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import ELearningSystem
from repro.chatroom.transcript_io import as_mining_lines, load_transcript, save_transcript
from repro.qa import FAQDatabase
from repro.simulation import ClassroomSession, LearnerProfile
from repro.standards import write_assessment, write_package


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(tempfile.mkdtemp(prefix="repro-export-"))

    print("1) running a question-heavy class to accumulate a FAQ ...")
    system = ELearningSystem.with_defaults()
    session = ClassroomSession(
        system,
        learners=6,
        profile=LearnerProfile(question_rate=0.5, syntax_error_rate=0.1,
                               semantic_error_rate=0.15),
        seed=7,
    )
    session.run(rounds=6)
    print(f"   questions answered: {system.stats.questions_answered}, "
          f"FAQ pairs: {len(system.faq)}")

    print("\n2) SCORM content package from the knowledge body ...")
    package = write_package(system.ontology, out / "scorm-package")
    files = sorted(p.name for p in package.iterdir())
    print(f"   wrote {len(files)} files to {package}")
    print(f"   e.g. {files[0]}, sco_003_stack.html, ...")

    print("\n3) QTI assessment from the accumulated FAQ ...")
    quiz = write_assessment(system.faq, out / "faq-quiz.xml", max_items=8)
    text = quiz.read_text(encoding="utf-8")
    print(f"   wrote {quiz} ({text.count('<item ')} items)")

    print("\n4) archiving + replay-mining the room transcript ...")
    room = system.server.get_room("classroom")
    archive = out / "classroom.jsonl"
    count = save_transcript(room, archive)
    replayed = load_transcript(archive)
    print(f"   archived {count} messages; reloaded {len(replayed)}")
    mined_faq = FAQDatabase()
    added = system.miner.feed_faq(as_mining_lines(replayed), mined_faq)
    print(f"   offline mining recovered {added} QA pairs from the archive")

    print("\n5) teaching-material recommendations for struggling learners ...")
    recommended = 0
    for profile in system.profiles.all():
        recommendation = system.recommend_for(profile.name)
        if recommendation is None:
            continue
        recommended += 1
        print(f"   {recommendation.as_text().splitlines()[0]}")
        for line in recommendation.as_text().splitlines()[1:3]:
            print(f"     {line[:100]}")
    if recommended == 0:
        print("   (no learner crossed the error threshold this session)")

    print(f"\nall artefacts in: {out}")


if __name__ == "__main__":
    main()
