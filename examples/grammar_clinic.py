#!/usr/bin/env python3
"""Grammar clinic: the link-grammar parser up close.

Parses the paper's Figure-2 sentence and draws its linkage as ASCII art
(the paper's diagram style), then walks through learner mistakes showing
how the enhanced parser localises them.

Run:  python examples/grammar_clinic.py
"""

from __future__ import annotations

from repro.linkgrammar import ParseOptions, Parser
from repro.linkgrammar.diagram import render
from repro.linkgrammar.lexicon import default_dictionary, toy_dictionary
from repro.linkgrammar.robust import RobustAnalyzer


def show_figure2() -> None:
    print("=" * 64)
    print("Figure 2: 'The cat chased a mouse' in the Figure-1 dictionary")
    print("=" * 64)
    parser = Parser(toy_dictionary(), ParseOptions(use_wall=False))
    result = parser.parse("The cat chased a mouse")
    print(f"linkages found: {result.total_count}")
    print(render(result.best))
    print(f"\nmeta-rule violations: {result.best.validate() or 'none'}")


def show_full_lexicon_parses() -> None:
    print()
    print("=" * 64)
    print("The full chat-room lexicon on the paper's sentences")
    print("=" * 64)
    parser = Parser(default_dictionary())
    for sentence in [
        "The data is pushed in this heap.",
        "Which data structure has the method push?",
        "The top of the stack holds the last element.",
    ]:
        result = parser.parse(sentence)
        print(f"\n> {sentence}   (cost={result.best.cost}, parses={result.total_count})")
        print(render(result.best))


def show_error_localisation() -> None:
    print()
    print("=" * 64)
    print("Learner-error localisation (Learning_Angel's diagnosis layer)")
    print("=" * 64)
    analyzer = RobustAnalyzer(default_dictionary())
    for sentence in [
        "The stack holds quickly data.",          # extra word
        "The frobnicator holds the data.",        # unknown word
        "The tree doesn't have pop method.",      # style only: missing article
        "stack the full is.",                     # collapse
    ]:
        diagnosis = analyzer.analyze(sentence)
        print(f"\n> {sentence}")
        if diagnosis.is_correct and not diagnosis.issues:
            print("  no problems found")
        for issue in diagnosis.issues:
            where = f" @ token {issue.position}" if issue.position >= 0 else ""
            print(f"  [{issue.kind.value}{where}] {issue.message}")
        best = diagnosis.result.best
        if best is not None and best.links:
            print(render(best))


def main() -> None:
    show_figure2()
    show_full_lexicon_parses()
    show_error_localisation()


if __name__ == "__main__":
    main()
