#!/usr/bin/env python3
"""The sharded supervision runtime: O(1) posting, batched agent work.

Posts the same classroom traffic to 16 rooms under two runtimes:

* the synchronous pipeline (``inline``) — every ``say`` runs the full
  Figure-3 agent flow before returning;
* the sharded runtime — ``say`` just delivers and enqueues; rooms are
  sharded across 4 workers and one ``drain()`` per round batches the
  queued work, analysing each distinct sentence once and fanning the
  result out across rooms.

Run:  python examples/sharded_supervision.py [rounds]
"""

from __future__ import annotations

import sys
import time

from repro.core.system import ELearningSystem, SystemConfig

MESSAGES = [
    "We push an element onto the stack.",
    "What is a queue?",
    "The tree doesn't have pop method.",
    "I push the data into a tree.",
]
ROOMS = 16


def build(config: SystemConfig) -> ELearningSystem:
    system = ELearningSystem.with_defaults(config)
    for index in range(ROOMS):
        room = f"section-{index:02d}"
        system.open_room(room, topic="data structures")
        system.join(room, f"student-{index}")
    # Untimed warmup of every message template so both runtimes measure
    # steady state (the parse caches are process-wide; whoever runs
    # first would otherwise pay the cold parses and the repair search
    # for both).
    for text in MESSAGES:
        for index in range(ROOMS):
            system.say(f"section-{index:02d}", f"student-{index}", text)
    system.drain()
    return system


def run(system: ELearningSystem, rounds: int, drain_per_round: bool) -> float:
    posted = 0
    start = time.perf_counter()
    for i in range(rounds):
        text = MESSAGES[i % len(MESSAGES)]
        for index in range(ROOMS):
            system.say(f"section-{index:02d}", f"student-{index}", text)
            posted += 1
        if drain_per_round:
            system.drain()
    system.drain()
    return posted / (time.perf_counter() - start)


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    sync = build(SystemConfig(runtime_mode="inline"))
    sync_rate = run(sync, rounds, drain_per_round=False)
    print(f"inline  runtime: {sync_rate:8.0f} msg/s  "
          f"(agents run on the posting path)")

    sharded = build(SystemConfig(runtime_mode="sharded", shards=4))
    sharded_rate = run(sharded, rounds, drain_per_round=True)
    print(f"sharded runtime: {sharded_rate:8.0f} msg/s  "
          f"({sharded_rate / sync_rate:.1f}x, workers drain deduped batches)")

    print(f"\nper-worker messages: {sharded.runtime.worker_loads()}")
    print(f"merged stats equal per-worker sum: "
          f"{sharded.stats.messages} messages, "
          f"{sharded.stats.sentences} sentences, "
          f"{sharded.stats.agent_replies} agent replies")
    for worker_index, stats in enumerate(sharded.pipeline.worker_stats()):
        print(f"  worker {worker_index}: {stats.messages} messages, "
              f"{stats.agent_replies} replies")

    # Identical supervision outcomes, radically different scheduling.
    assert sync.stats == sharded.stats
    print("\nsync and sharded runs agree on every supervision counter.")


if __name__ == "__main__":
    main()
