#!/usr/bin/env python3
"""Authoring a new domain ontology (the paper's extensibility claim).

Section 4.1: "the proposed system ... can be extended to other domain."
This example builds a small *Operating Systems* ontology with the builder
API (the Ontology-Definition-GUI equivalent), pushes it through the
paper's DDL/DML translation + interpretation pipeline, round-trips it as
the Fig.-5 XML, and runs the Semantic Agent against the new domain.

Run:  python examples/ontology_authoring.py
"""

from __future__ import annotations

from repro.agents import SemanticAgent
from repro.nlp import KeywordFilter
from repro.ontology import (
    OntologyBuilder,
    from_xml,
    interpret_script,
    render_script,
    to_xml,
    translate,
)


def build_os_ontology():
    b = OntologyBuilder("Operating Systems")
    b.concept("process", item_id=1, category="container",
              description="A process is a program in execution with its own address space.")
    b.concept("thread", item_id=2, category="container",
              description="A thread is a unit of execution inside a process.")
    b.concept("scheduler", item_id=3, category="container",
              description="The scheduler decides which thread runs next.")
    b.concept("semaphore", item_id=4, category="container",
              description="A semaphore is a counter used to control access to a resource.")
    b.concept("page", item_id=5, category="part",
              description="A page is a fixed-size block of virtual memory.")
    b.operation("fork", item_id=30, description="Fork creates a new process.")
    b.operation("schedule", item_id=31, description="Schedule picks the next thread to run.")
    b.operation("wait", item_id=32, description="Wait decrements a semaphore, blocking at zero.")
    b.operation("signal", item_id=33, description="Signal increments a semaphore.")
    b.property("preemptive", item_id=60, description="Running tasks can be interrupted.")
    b.is_a("thread", "process")
    b.supports("process", "fork")
    b.supports("scheduler", "schedule")
    b.supports("semaphore", "wait", "signal")
    b.has_property("scheduler", "preemptive")
    b.part_of("page", "process")
    return b.build()


def main() -> None:
    print("=" * 64)
    print("1. Author the ontology with the builder API")
    print("=" * 64)
    ontology = build_os_ontology()
    print(f"built '{ontology.domain}': {len(ontology)} items, "
          f"{len(ontology.relations())} relations")

    print()
    print("=" * 64)
    print("2. The Figure-3 pipeline: DDL/DML translation + interpretation")
    print("=" * 64)
    script = render_script(translate(ontology))
    print("first statements of the generated script:")
    for line in script.splitlines()[:6]:
        print(f"  {line}")
    reloaded = interpret_script(script, "Operating Systems")
    print(f"interpreter rebuilt {len(reloaded)} items — "
          f"round-trip {'OK' if len(reloaded) == len(ontology) else 'MISMATCH'}")

    print()
    print("=" * 64)
    print("3. XML round-trip (Figure 5 format)")
    print("=" * 64)
    xml = to_xml(ontology)
    print("\n".join(xml.splitlines()[:8]))
    print("  ...")
    assert len(from_xml(xml)) == len(ontology)
    print("XML round-trip OK")

    print()
    print("=" * 64)
    print("4. Semantic supervision in the new domain")
    print("=" * 64)
    agent = SemanticAgent(ontology, keyword_filter=KeywordFilter(ontology))
    for sentence in [
        "The semaphore supports the wait operation.",
        "The scheduler supports the fork operation.",
        "The semaphore doesn't have the schedule operation.",
    ]:
        review = agent.review(sentence)
        print(f"\n> {sentence}")
        print(f"  verdict: {review.verdict.value}")
        for suggestion in review.suggestions:
            print(f"  hint: {suggestion}")


if __name__ == "__main__":
    main()
