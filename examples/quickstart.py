#!/usr/bin/env python3
"""Quickstart: a supervised chat room in a dozen lines.

Opens a room, lets two learners talk, and shows the three supervision
behaviours of the paper: QA answering, semantic correction, and the
negation example that correctly passes.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ELearningSystem


def main() -> None:
    system = ELearningSystem.with_defaults()
    system.open_room("ds-101", topic="stacks and queues")
    system.join("ds-101", "alice")
    system.join("ds-101", "bob")

    conversation = [
        ("alice", "What is Stack?"),
        ("bob", "I push the data into a tree."),
        ("alice", "The tree doesn't have pop method."),
        ("bob", "We push an element onto the stack."),
        ("alice", "Does the queue have a dequeue method?"),
    ]

    for user, text in conversation:
        message = system.say("ds-101", user, text)
        print(f"{user}: {text}")
        for reply in system.agent_replies_to(message):
            print(f"    [{reply.sender}] {reply.text}")
        print()

    stats = system.stats
    print("--- supervision summary ---")
    print(f"messages supervised : {stats.messages}")
    print(f"questions answered  : {stats.questions_answered}/{stats.questions}")
    print(f"semantic violations : {stats.semantic_violations}")
    print(f"agent replies posted: {stats.agent_replies}")


if __name__ == "__main__":
    main()
