#!/usr/bin/env python3
"""A full simulated classroom session with instructor reports.

Runs a seeded class of eight learners with realistic error rates,
then prints the Learning Statistic Analyzer's reports: per-user mistake
profiles, the most common error routes (section 5: "teachers always want
to know the route of mistakes"), the hot topics, and the FAQ built up
during the session.

Run:  python examples/classroom_session.py [rounds]
"""

from __future__ import annotations

import sys

from repro import ELearningSystem
from repro.corpus import StatisticAnalyzer
from repro.simulation import ClassroomSession, LearnerProfile


def main() -> None:
    rounds = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    system = ELearningSystem.with_defaults()
    session = ClassroomSession(
        system,
        learners=8,
        topic="data structures: week 3 (stacks, queues, trees)",
        profile=LearnerProfile(
            question_rate=0.25,
            syntax_error_rate=0.2,
            semantic_error_rate=0.12,
            chitchat_rate=0.05,
        ),
        seed=2026,
    )
    result = session.run(rounds=rounds)

    room = system.server.get_room("classroom")
    print(f"session finished: {len(room.transcript)} messages in the room\n")

    print("--- a sample of the supervised dialogue ---")
    for message in room.transcript[:14]:
        prefix = "  " if message.kind.value == "agent" else ""
        print(f"{prefix}{message.sender}: {message.text[:90]}")
    print("  ...\n")

    stats = system.stats
    print("--- supervision stats ---")
    print(f"sentences supervised : {stats.sentences}")
    print(f"syntax errors        : {stats.syntax_errors}")
    print(f"semantic violations  : {stats.semantic_violations}")
    print(f"misconceptions       : {stats.misconceptions}")
    print(f"questions answered   : {stats.questions_answered}/{stats.questions}"
          f" ({stats.faq_hits} from FAQ)")
    print(f"corrections suggested: {stats.corrections_suggested}\n")

    analyzer = StatisticAnalyzer(system.corpus)
    print("--- most common mistake routes ---")
    for kind, count in analyzer.most_common_mistakes(5):
        print(f"  {kind:20s} {count}")

    print("\n--- learners who may need help (lowest accuracy) ---")
    for report in analyzer.struggling_users(minimum_messages=3)[:3]:
        topics = ", ".join(topic for topic, _ in report.topics[:3]) or "-"
        print(
            f"  {report.user:12s} accuracy={report.accuracy:.2f} "
            f"({report.syntax_errors} syntax, {report.semantic_errors} semantic; "
            f"topics: {topics})"
        )

    print("\n--- the FAQ the class built (top 5) ---")
    for pair in system.faq_top(5):
        print(f"  [{pair.count}x] {pair.question}")
        print(f"        -> {pair.answer[:90]}")

    print("\n--- accuracy against injected ground truth ---")
    from repro.evaluation import score_session

    syntax, semantic, answer_rate = score_session(result)
    print(f"  syntax   : {syntax.row()}")
    print(f"  semantic : {semantic.row()}")
    print(f"  QA answer-rate: {answer_rate:.2f}")


if __name__ == "__main__":
    main()
