#!/usr/bin/env python3
"""The QA subsystem and FAQ database, interactively exercised.

Walks every template family of section 4.4 (including the learner-English
"Is stack has push method?"), demonstrates FAQ caching and frequency
statistics, persists the FAQ to disk, and mines QA pairs from a raw
transcript.

Run:  python examples/qa_session.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.corpus import CorporaGenerator, LearnerCorpus
from repro.nlp import KeywordFilter
from repro.ontology.domains import default_ontology
from repro.qa import FAQDatabase, QAMiner, QASystem, TranscriptLine


def template_walkthrough(qa: QASystem) -> None:
    print("=" * 64)
    print("Template families (section 4.4)")
    print("=" * 64)
    questions = [
        "What is Stack?",
        "The relations of stack?",
        "Does stack have pop method?",
        "Is stack has push method?",
        "Which data structure has the method push?",
        "What operations does the heap support?",
        "Is the stack lifo?",
        "Is a stack a data structure?",
        "Does the tree have a pop method?",
    ]
    for question in questions:
        answer = qa.answer(question)
        print(f"\nQ [{answer.kind.value}]: {question}")
        print(f"A ({answer.source}): {answer.text[:100]}")


def faq_statistics(qa: QASystem) -> None:
    print()
    print("=" * 64)
    print("FAQ accumulation and statistics")
    print("=" * 64)
    for _ in range(4):
        qa.answer("What is Stack?")
    for _ in range(2):
        qa.answer("what is a stack")  # paraphrase hits the same pair
    qa.answer("Which structure has the pop operation?")

    print(f"\ndistinct QA pairs: {len(qa.faq)}")
    print(f"questions served : {qa.faq.total_questions()}")
    print("\nmost frequent pairs:")
    for pair in qa.faq.top(3):
        print(f"  [{pair.count}x, {pair.source}] {pair.question}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "faq.jsonl"
        qa.faq.save(path)
        reloaded = FAQDatabase.load(path)
        print(f"\npersisted and reloaded: {len(reloaded)} pairs from {path.name}")


def mining_demo() -> None:
    print()
    print("=" * 64)
    print("Mining QA pairs from a raw transcript (section 4.4)")
    print("=" * 64)
    transcript = [
        TranscriptLine("mei", "What is a heap?", 1.0),
        TranscriptLine("prof", "A heap is a complete binary tree kept in heap order.", 2.0, role="teacher"),
        TranscriptLine("joe", "Does the queue have a push method?", 3.0),
        TranscriptLine("ana", "No, the queue uses enqueue, not push.", 4.0),
        TranscriptLine("mei", "What is a heap?", 5.0),
        TranscriptLine("prof", "A heap is a complete binary tree kept in heap order.", 6.0, role="teacher"),
    ]
    miner = QAMiner(KeywordFilter(default_ontology()))
    faq = FAQDatabase()
    added = miner.feed_faq(transcript, faq)
    print(f"\nmined {added} QA pairs:")
    for pair in faq.pairs():
        print(f"  [{pair.count}x] {pair.question}")
        print(f"        -> {pair.answer}")


def main() -> None:
    ontology = default_ontology()
    corpus = LearnerCorpus()
    CorporaGenerator(ontology).populate(corpus)
    qa = QASystem(ontology, corpus=corpus)
    template_walkthrough(qa)
    faq_statistics(qa)
    mining_demo()


if __name__ == "__main__":
    main()
