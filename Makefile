# Developer entry points.  PYTHONPATH=src everywhere: the package is laid
# out src/ style and the offline container has no editable install.

PY := PYTHONPATH=src python

.PHONY: test bench bench-pytest simulate

# Tier-1: fast, deterministic, no benchmarks (see pytest.ini).
test:
	$(PY) -m pytest -x -q

# Deterministic perf harness; writes BENCH_parse.json at the repo root.
bench:
	$(PY) -m repro bench

# The statistically careful pytest-benchmark suites (figures + scalability).
bench-pytest:
	$(PY) -m pytest benchmarks -q

simulate:
	$(PY) -m repro simulate
