# Developer entry points.  PYTHONPATH=src everywhere: the package is laid
# out src/ style and the offline container has no editable install.

PY := PYTHONPATH=src python

.PHONY: test test-slow check bench bench-quick bench-pytest simulate docs-check coverage

# Tier-1: fast, deterministic, no benchmarks (see pytest.ini).
test:
	$(PY) -m pytest -x -q

# Just the @slow suites (CI's nightly job): full 200-seed segmented
# parity at aggressive freeze cadence, chaos soak, process-drain
# cadence sweep, full simulate runs.
test-slow:
	$(PY) -m pytest -m slow -q

# CI gate: tier-1 tests, a bench smoke run (scratch output, so the
# committed BENCH_parse.json and its pinned seed baseline stay put),
# and the corpus-subsystem coverage floor.
check: test bench-quick coverage

# Line-coverage floor over src/repro/corpus (stdlib tracer, offline;
# fails on regression below the floor in tools/coverage_gate.py).
coverage:
	$(PY) tools/coverage_gate.py

# Markdown link check over README.md + docs/ (offline, stdlib-only;
# exit status = number of broken links, capped at 100; 0 = clean).
docs-check:
	python tools/docs_check.py

# Deterministic perf harness; writes BENCH_parse.json at the repo root.
bench:
	$(PY) -m repro bench

# Smoke check: 10% iteration counts, written to a scratch path so the
# committed BENCH_parse.json (and its pinned seed baseline) stays put.
# Includes the process_drain workload, so every CI run exercises a
# 2-worker multiprocess drain end to end (spec pickling, child cycles,
# delta merge), and the serving workload, so every CI run boots the
# live HTTP front door under 4 concurrent clients, on top of the unit
# suites.
bench-quick:
	$(PY) -m repro bench --quick --output $${TMPDIR:-/tmp}/BENCH_quick.json

# The statistically careful pytest-benchmark suites (figures + scalability).
bench-pytest:
	$(PY) -m pytest benchmarks -q

simulate:
	$(PY) -m repro simulate
