"""Setup shim: legacy editable installs in offline environments."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'An Intelligent Semantic Agent for Supervising "
        "Chat Rooms in e-Learning System' (ICDCSW'05)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
