"""Seeded runtime-fault injection for the supervision pipeline.

The durability layer proves crash-safety with a :class:`FaultClock`
that kills the k-th on-disk boundary; this module is the same pattern
lifted to *runtime* faults: every guarded pipeline stage (``parser``,
``semantic``, ``qa``, ``stores``) calls :meth:`RuntimeFaultPlan.step`
before it executes, and the plan decides whether that crossing raises
an :class:`InjectedFault` or stalls on the virtual clock.

Arming modes (freely combined):

* ``fail_at=k, fail_times=m`` — crossings ``k .. k+m-1`` raise.  With
  ``m=1`` the fault is transient (one retry heals it); with ``m >=``
  the retry budget the crossing's item is poison and must quarantine.
  An *unarmed* plan counts crossings without firing, so a chaos sweep
  first measures how many injection points a workload has and then
  loops ``fail_at = 1..N`` — exactly the durability sweep's shape.
* ``stage="parser"`` — restrict the armed counter to one stage's
  crossings (per-stage sweeps); ``None`` counts every stage.
* ``permanent={"parser"}`` — the named stages are hard down: every
  crossing raises until :meth:`heal`.  This is what trips breakers.
* ``rate=0.01, seed=s`` — seeded Bernoulli faults: crossing ``n``
  raises iff ``Random(f"{seed}:{n}")`` draws below ``rate``.  Seeding
  with a *string* keeps the draw identical across processes (tuple
  seeds containing strings go through salted ``hash()``).
* ``latency=0.05, latency_rate=r`` — :meth:`stall` returns virtual
  seconds for the controller to account (never a real sleep).

Production passes no plan and gets :data:`NO_RUNTIME_FAULTS` — one
``active`` attribute check per crossing, nothing else.
"""

from __future__ import annotations

import random
import threading


class InjectedFault(Exception):
    """A deliberately injected pipeline-stage failure.

    An ordinary ``Exception`` on purpose — unlike a simulated *crash*,
    an injected *fault* is exactly the kind of error the retry and
    quarantine machinery exists to absorb.
    """


class RuntimeFaultPlan:
    """Decides, per stage crossing, whether to fault, stall or pass."""

    __slots__ = (
        "fail_at",
        "fail_times",
        "stage",
        "permanent",
        "rate",
        "seed",
        "latency",
        "latency_rate",
        "count",
        "fired",
        "_stalls",
        "_lock",
    )

    #: Active plans are consulted on every crossing; the controller
    #: skips all plan work when this is False (see ``_NoRuntimeFaults``).
    active = True

    def __init__(
        self,
        fail_at: int | None = None,
        fail_times: int = 1,
        stage: str | None = None,
        permanent: tuple[str, ...] = (),
        rate: float = 0.0,
        seed: int = 0,
        latency: float = 0.0,
        latency_rate: float = 1.0,
    ) -> None:
        if fail_at is not None and fail_at < 1:
            raise ValueError("fail_at counts crossings from 1")
        if fail_times < 1:
            raise ValueError("fail_times must be >= 1")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be a probability")
        self.fail_at = fail_at
        self.fail_times = fail_times
        self.stage = stage
        self.permanent = set(permanent)
        self.rate = rate
        self.seed = seed
        self.latency = latency
        self.latency_rate = latency_rate
        self.count = 0
        self.fired: list[str] = []
        self._stalls = 0
        self._lock = threading.Lock()

    def step(self, stage: str) -> None:
        """One guarded crossing of ``stage``; raises when armed for it."""
        with self._lock:
            if stage in self.permanent:
                self.fired.append(f"{stage}#permanent")
                raise InjectedFault(f"injected permanent fault in {stage}")
            if self.stage is not None and stage != self.stage:
                return
            self.count += 1
            n = self.count
            if self.fail_at is not None and self.fail_at <= n < self.fail_at + self.fail_times:
                self.fired.append(f"{stage}#{n}")
                raise InjectedFault(f"injected fault in {stage} (crossing {n})")
            if self.rate and random.Random(f"{self.seed}:{n}").random() < self.rate:
                self.fired.append(f"{stage}@{n}")
                raise InjectedFault(f"injected random fault in {stage} (crossing {n})")

    def stall(self, stage: str) -> float:
        """Virtual seconds of injected latency for this crossing."""
        with self._lock:
            if not self.latency:
                return 0.0
            self._stalls += 1
            if self.latency_rate >= 1.0:
                return self.latency
            draw = random.Random(f"{self.seed}:stall:{self._stalls}").random()
            return self.latency if draw < self.latency_rate else 0.0

    def heal(self) -> None:
        """Clear every armed fault (the chaos tests' 'fault healed')."""
        with self._lock:
            self.fail_at = None
            self.permanent = set()
            self.rate = 0.0
            self.latency = 0.0


class _NoRuntimeFaults:
    """Null plan wired in production: crossings cost one attr check."""

    __slots__ = ()
    active = False

    def step(self, stage: str) -> None:
        return None

    def stall(self, stage: str) -> float:
        return 0.0

    def heal(self) -> None:
        return None


#: Shared null instance — the default fault plan everywhere.
NO_RUNTIME_FAULTS = _NoRuntimeFaults()
