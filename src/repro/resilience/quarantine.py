"""The dead-letter quarantine: poison items, journaled and redrivable.

An item whose supervision fails on every retry attempt moves here with
the captured exception instead of raising out of the drain.  The row
captures everything needed to rebuild the :class:`SupervisionItem`
later — the message fields, the sender's role snapshot, the failing
stage and error — so an operator can :meth:`ELearningSystem.redrive`
the store after the fault heals and end up with exactly the state the
fault-free run would have produced.

Durability: every quarantine is journaled as a WAL ``quarantine``
event and the store rides in full-system snapshots, so quarantined
items survive crashes the same way delivered messages do (asserted by
the durability fault-injection suite).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chatroom.messages import ChatMessage, MessageKind, Role
from repro.chatroom.shard import SupervisionItem


@dataclass(slots=True)
class QuarantinedItem:
    """One dead-lettered supervision item plus its failure evidence."""

    seq: int
    room: str
    sender: str
    text: str
    timestamp: float
    reply_to: int | None = None
    sender_role: str | None = None
    stage: str = "dispatch"
    error: str = ""
    attempts: int = 1

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "room": self.room,
            "sender": self.sender,
            "text": self.text,
            "ts": self.timestamp,
            "reply_to": self.reply_to,
            "role": self.sender_role,
            "stage": self.stage,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantinedItem":
        return cls(
            seq=data["seq"],
            room=data["room"],
            sender=data["sender"],
            text=data["text"],
            timestamp=data["ts"],
            reply_to=data.get("reply_to"),
            sender_role=data.get("role"),
            stage=data.get("stage", "dispatch"),
            error=data.get("error", ""),
            attempts=data.get("attempts", 1),
        )

    @classmethod
    def from_item(
        cls,
        item: SupervisionItem,
        stage: str = "dispatch",
        error: str = "",
        attempts: int = 1,
    ) -> "QuarantinedItem":
        message = item.message
        return cls(
            seq=message.seq,
            room=message.room,
            sender=message.sender,
            text=message.text,
            timestamp=message.timestamp,
            reply_to=message.reply_to,
            sender_role=item.sender_role.value if item.sender_role is not None else None,
            stage=stage,
            error=error,
            attempts=attempts,
        )


def rebuild_item(server, row: QuarantinedItem) -> SupervisionItem:
    """Reconstruct the original work item from a quarantine row.

    The message is rebuilt field-exact (seq, timestamp, reply_to), so a
    redriven item commits with the timestamps the fault-free run would
    have used; the room object is resolved live (rooms are never
    deleted) and the role comes from the row's post-time snapshot.
    """
    message = ChatMessage(
        seq=row.seq,
        room=row.room,
        sender=row.sender,
        kind=MessageKind.USER,
        text=row.text,
        timestamp=row.timestamp,
        reply_to=row.reply_to,
    )
    role = Role(row.sender_role) if row.sender_role is not None else None
    return SupervisionItem(message, server.get_room(row.room), role)


class QuarantineStore:
    """All currently dead-lettered items, keyed by message seq."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: dict[int, QuarantinedItem] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, seq: int) -> bool:
        return seq in self._items

    def add(self, row: QuarantinedItem) -> None:
        self._items[row.seq] = row

    def get(self, seq: int) -> QuarantinedItem | None:
        return self._items.get(seq)

    def remove(self, seq: int) -> QuarantinedItem | None:
        """Pop one row (redrive / replayed requeue); None when absent."""
        return self._items.pop(seq, None)

    def rows(self) -> list[QuarantinedItem]:
        """Every quarantined row, in message order."""
        return [self._items[seq] for seq in sorted(self._items)]

    def take_all(self) -> list[QuarantinedItem]:
        """Drain the store (redrive), rows in message order."""
        rows = self.rows()
        self._items = {}
        return rows

    def snapshot(self) -> list[dict]:
        """Serialisable rows for the full-system snapshot."""
        return [row.to_dict() for row in self.rows()]

    def restore(self, rows: list[dict]) -> None:
        """Replace contents from snapshot rows — in place."""
        self._items = {}
        for data in rows:
            row = QuarantinedItem.from_dict(data)
            self._items[row.seq] = row
