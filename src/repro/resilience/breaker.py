"""Failure-rate circuit breakers for the analysis stages.

One :class:`CircuitBreaker` guards one pipeline stage (parser,
semantic agent, QA).  States and transitions:

``closed``
    Normal operation.  Stage outcomes land in a sliding window; when
    the window holds at least ``min_calls`` outcomes and the failure
    fraction reaches ``failure_threshold``, the breaker trips open.

``open``
    The stage is presumed down.  Item admission is refused (the
    runtime *defers* items instead of analysing them — delivery never
    blocks) and each refusal, plus each drain cycle, ticks the
    cooldown down.  The cooldown is **count-based on purpose**: the
    simulated clock only advances when messages are posted, so a
    wall-clock cooldown could deadlock a quiet system forever.

``half_open``
    Cooldown expired; exactly one probe item is admitted at a time.
    A successful stage call closes the breaker (window reset); a
    failure reopens it.  A probe whose item keeps failing is
    *quarantined* by the controller, never re-deferred — otherwise one
    poison item could flap the breaker forever and wedge every
    deferred item behind it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


@dataclass(frozen=True, slots=True)
class BreakerPolicy:
    """Trip/cooldown knobs shared by every stage breaker.

    Attributes:
        window: sliding window of recent stage outcomes.
        min_calls: outcomes required before the breaker may trip (a
            single poison item's retries must not open the breaker).
        failure_threshold: failure fraction that trips it.
        cooldown: refusals/drain-cycles an open breaker waits before
            probing (count-based — see module docstring).
    """

    window: int = 16
    min_calls: int = 4
    failure_threshold: float = 0.5
    cooldown: int = 2

    def __post_init__(self) -> None:
        if self.window < 1 or self.min_calls < 1 or self.cooldown < 1:
            raise ValueError("window, min_calls and cooldown must be >= 1")
        if not 0.0 < self.failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")


class CircuitBreaker:
    """One stage's failure-rate breaker (see module docstring)."""

    __slots__ = ("policy", "state", "probe_inflight", "opened_total", "_window", "_cooldown_left")

    def __init__(self, policy: BreakerPolicy | None = None) -> None:
        self.policy = policy or BreakerPolicy()
        self.state = STATE_CLOSED
        self.probe_inflight = False
        self.opened_total = 0
        self._window: deque[bool] = deque(maxlen=self.policy.window)
        self._cooldown_left = 0

    def record_success(self) -> None:
        """One stage call succeeded; a half-open probe success closes."""
        if self.state == STATE_HALF_OPEN:
            self.force_close()
        elif self.state == STATE_CLOSED:
            self._window.append(True)

    def record_failure(self) -> None:
        """One stage call failed; may trip (closed) or reopen (probe)."""
        if self.state == STATE_HALF_OPEN:
            self._trip()
        elif self.state == STATE_CLOSED:
            self._window.append(False)
            window = self._window
            if len(window) >= self.policy.min_calls:
                failures = sum(1 for ok in window if not ok)
                if failures / len(window) >= self.policy.failure_threshold:
                    self._trip()

    def tick(self) -> None:
        """One cooldown unit (a refused admission or a drain cycle)."""
        if self.state == STATE_OPEN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.state = STATE_HALF_OPEN
                self.probe_inflight = False

    def force_close(self) -> None:
        """Close unconditionally (probe success, or operator redrive)."""
        self.state = STATE_CLOSED
        self.probe_inflight = False
        self._window.clear()

    def _trip(self) -> None:
        self.state = STATE_OPEN
        self.probe_inflight = False
        self.opened_total += 1
        self._cooldown_left = self.policy.cooldown
        self._window.clear()

    @property
    def window_failures(self) -> int:
        return sum(1 for ok in self._window if not ok)

    def describe(self) -> dict:
        """Health-registry row for this breaker."""
        return {
            "state": self.state,
            "opened_total": self.opened_total,
            "window_failures": self.window_failures,
            "window_calls": len(self._window),
        }
