"""Runtime fault tolerance for the supervision pipeline.

PR 6 made *state* crash-safe; this package makes the *runtime* survive
the faults that happen while the process stays up: a flaky parser, an
agent that starts throwing, one poison message that reliably kills its
own analysis.  The pieces (see docs/resilience.md for the contracts):

* :mod:`retry` — a deterministic, seeded :class:`RetryPolicy` whose
  backoff accumulates on a virtual clock (tests never sleep);
* :mod:`breaker` — failure-rate :class:`CircuitBreaker` per analysis
  stage, with count-based cooldown and half-open probes;
* :mod:`quarantine` — the durable dead-letter store for items whose
  supervision kept failing (journaled to the WAL, survives recovery);
* :mod:`controller` — :class:`ResilienceController`, the object the
  runtime and pipeline actually talk to: per-stage guards, per-item
  admission, the deferred ledger for degraded mode, redrive planning;
* :mod:`health` — the component health registry behind
  ``system.health()`` and ``python -m repro health``;
* :mod:`faults` — seeded exception/latency injection into the pipeline
  stages (the chaos-harness counterpart of durability's FaultClock).
"""

from .breaker import BreakerPolicy, CircuitBreaker
from .controller import ResilienceController, StageFailure
from .faults import NO_RUNTIME_FAULTS, InjectedFault, RuntimeFaultPlan
from .health import HealthReport, build_health
from .quarantine import QuarantinedItem, QuarantineStore
from .retry import BackoffClock, RetryPolicy

__all__ = [
    "BackoffClock",
    "BreakerPolicy",
    "CircuitBreaker",
    "HealthReport",
    "InjectedFault",
    "NO_RUNTIME_FAULTS",
    "QuarantineStore",
    "QuarantinedItem",
    "ResilienceController",
    "RetryPolicy",
    "RuntimeFaultPlan",
    "StageFailure",
    "build_health",
]
