"""The health registry: one question — "is supervision healthy?".

:func:`build_health` assembles a :class:`HealthReport` from the live
system: per-stage breaker states (labelled with the agent that backs
the stage), the runtime's queue/deferred/shed picture including the
structured shed events, the quarantine store, durability status and
the controller's counters.  ``system.health()`` and ``python -m repro
health DIR`` both return it; the overall status is ``degraded`` the
moment any breaker is not closed, any item sits in quarantine or the
deferred ledger, or backpressure has shed analysis work.
"""

from __future__ import annotations

from dataclasses import dataclass

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"


@dataclass(slots=True)
class HealthReport:
    """Per-component states plus the resilience counters."""

    status: str
    components: dict
    counters: dict

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "components": self.components,
            "counters": self.counters,
        }

    def summary(self) -> str:
        """The human-readable report ``cli.py health`` prints."""
        lines = [f"status: {self.status}"]
        for name in sorted(self.components):
            detail = self.components[name]
            rendered = " ".join(f"{key}={detail[key]}" for key in sorted(detail))
            lines.append(f"{name}: {rendered}")
        counters = " ".join(
            f"{key}={value}" for key, value in sorted(self.counters.items()) if value
        )
        lines.append(f"counters: {counters or '(all zero)'}")
        return "\n".join(lines)


def _stage_labels(system) -> dict:
    """Map breaker stages to the agent/component each one guards."""
    labels = {"parser": "parser", "semantic": "semantic", "qa": "qa"}
    for agent in (getattr(system, "learning_angel", None), getattr(system, "semantic_agent", None)):
        stage = getattr(agent, "stage", None)
        if stage in labels:
            labels[stage] = agent.name
    qa = getattr(system, "qa", None)
    if qa is not None:
        labels["qa"] = "QA_System"
    return labels


def build_health(system) -> HealthReport:
    """Assemble the component health registry for one live system."""
    resilience = system.resilience
    runtime = system.runtime
    labels = _stage_labels(system)

    degraded = False
    components: dict[str, dict] = {}
    for stage, breaker in sorted(resilience.breakers.items()):
        row = breaker.describe()
        row["guards"] = labels.get(stage, stage)
        components[f"breaker:{stage}"] = row
        if row["state"] != "closed":
            degraded = True

    shed_events = runtime.shed_events()
    components["runtime"] = {
        "mode": runtime.mode,
        "pending": runtime.pending,
        "deferred": len(resilience.deferred),
        "shed": runtime.shed,
        "shed_events": [event.to_dict() for event in shed_events],
    }
    if runtime.shed or resilience.deferred:
        degraded = True

    components["quarantine"] = {"items": len(resilience.quarantine)}
    if len(resilience.quarantine):
        degraded = True

    durability = getattr(system, "durability", None)
    if durability is not None:
        components["durability"] = {
            "events": durability.total,
            "since_snapshot": durability.since_snapshot,
            "closed": durability.closed,
        }

    return HealthReport(
        status=STATUS_DEGRADED if degraded else STATUS_OK,
        components=components,
        counters=resilience.counters.to_dict(),
    )
