"""Deterministic retry with simulated-clock backoff.

A transient pipeline fault (flaky parser, racy agent dependency) should
cost one retry, not one raised drain.  :class:`RetryPolicy` decides how
many attempts a stage call gets and how long each backoff pause is —
and both are pure functions, so a retried run is replayable:

* the jitter for ``(key, attempt)`` comes from
  ``random.Random(f"{seed}:{key}:{attempt}")`` — seeded with a
  *string*, because string seeding is stable across processes while
  tuple seeds containing strings go through salted ``hash()``;
* the pause is never slept.  :class:`BackoffClock` accumulates the
  virtual seconds so the counters can report how long a real
  deployment would have waited, without the simulated system (whose
  clock only advances on posts) ever blocking or drifting.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How often and how patiently a guarded stage call is retried.

    Attributes:
        attempts: total tries per stage call (1 = no retry).
        base_delay: virtual seconds before the first retry.
        multiplier: exponential backoff factor per further retry.
        jitter: fraction of the delay added as seeded noise (0..1).
        seed: jitter seed (deterministic across runs and processes).
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.multiplier < 1 or not 0 <= self.jitter <= 1:
            raise ValueError("backoff parameters out of range")

    def delay(self, attempt: int, key: str) -> float:
        """Virtual backoff before retry ``attempt`` (1-based) of ``key``."""
        base = self.base_delay * self.multiplier ** (attempt - 1)
        if not self.jitter:
            return base
        noise = random.Random(f"{self.seed}:{key}:{attempt}").random()
        return base * (1.0 + self.jitter * noise)


class BackoffClock:
    """Accumulates virtual backoff seconds; never sleeps.

    Deliberately independent of the chat server's simulated clock: a
    retry pause must not move message timestamps (that would make a
    retried run's state diverge from the fault-free run's).
    """

    __slots__ = ("elapsed",)

    def __init__(self) -> None:
        self.elapsed = 0.0

    def wait(self, seconds: float) -> None:
        self.elapsed += seconds
