"""The resilience controller: guards, admission, quarantine, backfill.

One :class:`ResilienceController` is shared by a runtime and every
pipeline clone/shard-fork it dispatches to.  It owns four concerns:

**Stage guards** (:meth:`guard`): each *pure* pipeline stage call —
parser analysis, semantic review, QA resolution — runs under seeded
fault injection, the stage's circuit breaker and the retry policy.
Transient faults cost virtual backoff and a retry; exhausted retries
raise :class:`StageFailure`, which the worker turns into a quarantine.
The pipeline plans an item's every sentence through the guards *before
committing anything* (see ``SupervisionPipeline.on_item``), and the
single :meth:`guard_commit` crossing sits between plan and commit, so
an injected fault provably strikes before any store write and a
retried or redriven item commits exactly once.

**Admission** (:meth:`admit`): while any breaker is open the item is
*deferred* — delivery already happened, analysis is parked on the
deferred ledger and backfilled when the breaker closes.  Half-open
breakers admit one probe item at a time.

**Quarantine** (:meth:`on_item_failure`): items that fail their guard
budget (or a non-pipeline supervisor that raises) dead-letter into the
:class:`QuarantineStore` with the captured error, journaled to the WAL
when the system is durable.  Parallel-mode workers buffer the journal
rows (the event log is caller-thread-only) and the runtime flushes
them at the barrier.

**Replay planning**: recovery pre-scans the WAL tail and plans each
logged ``quarantine`` event per seq; when replayed supervision reaches
that item, :meth:`consume_replay` short-circuits it straight into the
store — no re-analysis, no double journaling — and logged ``requeue``
events re-submit rows at exactly the drain position the original
redrive used.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, fields
from typing import Callable

from .breaker import STATE_HALF_OPEN, STATE_OPEN, BreakerPolicy, CircuitBreaker
from .faults import NO_RUNTIME_FAULTS
from .quarantine import QuarantinedItem, QuarantineStore
from .retry import BackoffClock, RetryPolicy

#: The breaker-guarded analysis stages, in pipeline order.  ``stores``
#: (the plan→commit crossing) is guarded and retried but never breaks:
#: the stores are in-process — only the *analysis* dependencies are
#: the kind of collaborator that goes down and comes back.
BREAKER_STAGES = ("parser", "semantic", "qa")


class StageFailure(Exception):
    """A guarded stage call failed on every retry attempt."""

    def __init__(self, stage: str, attempts: int, cause: BaseException) -> None:
        super().__init__(f"{stage} failed after {attempts} attempt(s): {cause!r}")
        self.stage = stage
        self.attempts = attempts
        self.cause = cause


@dataclass(slots=True)
class ResilienceCounters:
    """Operator-facing running totals (health registry, CLI reports).

    Deliberately *not* part of :class:`SupervisionStats` or snapshots:
    a healed run must end bit-identical to the fault-free run, and
    these counters are exactly the part that is allowed to differ.
    """

    retries: int = 0
    retry_successes: int = 0
    stage_failures: int = 0
    quarantined: int = 0
    requeued: int = 0
    deferred_total: int = 0
    released: int = 0
    backoff_virtual: float = 0.0
    stall_virtual: float = 0.0

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(ResilienceCounters)}

    def absorb(self, other: "ResilienceCounters") -> None:
        """Fold another counter set into this one, field-wise.

        Process-mode workers run their own controller and ship per-cycle
        counter *deltas* back at the barrier; every field here is
        additive (the child resets its backoff clock per cycle so even
        the virtual-time floats arrive as increments)."""
        for f in fields(ResilienceCounters):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


class ResilienceController:
    """Shared fault-tolerance state for one supervision runtime."""

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
        faults=None,
    ) -> None:
        self.retry = retry or RetryPolicy()
        policy = breaker or BreakerPolicy()
        self.breakers = {stage: CircuitBreaker(policy) for stage in BREAKER_STAGES}
        self.faults = faults if faults is not None else NO_RUNTIME_FAULTS
        self.quarantine = QuarantineStore()
        self.counters = ResilienceCounters()
        self.backoff = BackoffClock()
        #: Deferred ledger: seq -> SupervisionItem, insertion-ordered.
        #: Items parked here were delivered but not analysed (degraded
        #: mode); the runtime releases them back into the queues.
        self.deferred: dict[int, object] = {}
        #: Duck-typed WAL journal (a DurabilityManager) or None.
        self.journal = None
        self._journal_buffer: list[QuarantinedItem] = []
        self._replay_plan: dict[int, deque] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------- guards

    def guard(self, stage: str, key: str, call: Callable):
        """Run one pure stage call under faults, breaker and retries."""
        faults = self.faults
        breaker = self.breakers.get(stage)
        attempts = self.retry.attempts
        attempt = 0
        while True:
            attempt += 1
            try:
                if faults.active:
                    stalled = faults.stall(stage)
                    if stalled:
                        with self._lock:
                            self.counters.stall_virtual += stalled
                    faults.step(stage)
                result = call()
            except Exception as exc:
                with self._lock:
                    self.counters.stage_failures += 1
                    if breaker is not None:
                        breaker.record_failure()
                    if attempt >= attempts:
                        raise StageFailure(stage, attempt, exc) from exc
                    self.counters.retries += 1
                    self.backoff.wait(self.retry.delay(attempt, key))
                    self.counters.backoff_virtual = self.backoff.elapsed
            else:
                with self._lock:
                    if attempt > 1:
                        self.counters.retry_successes += 1
                    if breaker is not None:
                        breaker.record_success()
                return result

    def guard_commit(self, key: str) -> None:
        """The single plan→commit crossing of one item (``stores``).

        Retried like any stage but breaker-free; it runs *before* the
        first store write, so a fault here leaves the item side-effect
        free and safe to retry or redrive.
        """
        self.guard("stores", key, _nothing)

    # ---------------------------------------------------------- admission

    def admit(self, item) -> bool:
        """Decide one item's fate before analysis; False = deferred."""
        with self._lock:
            open_breakers = [b for b in self.breakers.values() if b.state == STATE_OPEN]
            if open_breakers:
                # Each refused admission ticks the cooldown: traffic is
                # what heals a count-based breaker.
                for breaker in open_breakers:
                    breaker.tick()
                self._defer(item)
                return False
            half_open = [b for b in self.breakers.values() if b.state == STATE_HALF_OPEN]
            if half_open:
                if any(b.probe_inflight for b in half_open):
                    self._defer(item)
                    return False
                for breaker in half_open:
                    breaker.probe_inflight = True
            return True

    def on_item_success(self, item) -> None:
        with self._lock:
            for breaker in self.breakers.values():
                breaker.probe_inflight = False

    def on_item_failure(self, item, error: BaseException, defer_journal: bool = False) -> None:
        """Dead-letter one item whose supervision raised.

        A failed half-open probe lands here too (the guard already
        reopened its breaker): quarantining the probe instead of
        re-deferring it is what stops one poison item from flapping
        the breaker and wedging the deferred ledger behind it.
        """
        if isinstance(error, StageFailure):
            stage, attempts, cause = error.stage, error.attempts, error.cause
        else:
            stage, attempts, cause = "dispatch", 1, error
        row = QuarantinedItem.from_item(item, stage=stage, error=repr(cause), attempts=attempts)
        with self._lock:
            for breaker in self.breakers.values():
                breaker.probe_inflight = False
            self.deferred.pop(row.seq, None)
            self.quarantine.add(row)
            self.counters.quarantined += 1
            if self.journal is None:
                return
            if defer_journal:
                # Pool thread: the event log is caller-thread-only, the
                # runtime flushes this buffer at the drain barrier.
                self._journal_buffer.append(row)
                return
        self.journal.item_quarantined(row.to_dict())

    def absorb_worker_results(self, rows, counters=None) -> None:
        """Fold one child-process cycle's failure results into this
        controller (barrier, caller's thread).

        A ``process``-mode worker dead-letters raising items into its
        *own* child-side controller; the rows cross the process boundary
        in the cycle result and land here.  The shipped ``counters``
        delta already accounts for them (``quarantined`` was bumped
        child-side), so rows are added without re-counting; journal rows
        buffer for the next :meth:`flush_journal`, exactly like the
        thread-pool ``defer_journal`` path.
        """
        with self._lock:
            for row in rows:
                self.deferred.pop(row.seq, None)
                self.quarantine.add(row)
            if counters is not None:
                self.counters.absorb(counters)
            else:
                self.counters.quarantined += len(rows)
            if self.journal is not None:
                self._journal_buffer.extend(rows)

    def flush_journal(self) -> None:
        """Journal parallel-mode quarantines (barrier, caller thread)."""
        with self._lock:
            rows, self._journal_buffer = self._journal_buffer, []
        if self.journal is None:
            return
        for row in sorted(rows, key=lambda r: r.seq):
            self.journal.item_quarantined(row.to_dict())

    # ----------------------------------------------------- degraded mode

    def _defer(self, item) -> None:
        seq = item.message.seq
        if seq not in self.deferred:
            self.deferred[seq] = item
            self.counters.deferred_total += 1

    def deferred_seqs(self) -> frozenset:
        with self._lock:
            return frozenset(self.deferred)

    def deferred_rows(self) -> list[dict]:
        """Snapshot rows for the deferred ledger (zero loss across a
        durable shutdown while degraded: restore re-queues them)."""
        with self._lock:
            items = [self.deferred[seq] for seq in sorted(self.deferred)]
        return [QuarantinedItem.from_item(item, stage="deferred").to_dict() for item in items]

    def take_releasable(self) -> list:
        """Deferred items the breakers allow back into the queues.

        Open: none.  Half-open: the single lowest-seq item (the probe).
        Closed: everything, in seq order — the backfill that makes the
        healed state converge to the fault-free run's.
        """
        with self._lock:
            if not self.deferred:
                return []
            states = [b.state for b in self.breakers.values()]
            if STATE_OPEN in states:
                return []
            if STATE_HALF_OPEN in states:
                if any(b.probe_inflight for b in self.breakers.values()):
                    return []
                seqs = [min(self.deferred)]
            else:
                seqs = sorted(self.deferred)
            released = [self.deferred.pop(seq) for seq in seqs]
            self.counters.released += len(released)
            return released

    def on_drain(self) -> None:
        """One drain cycle = one cooldown tick for open breakers."""
        with self._lock:
            for breaker in self.breakers.values():
                breaker.tick()

    @property
    def has_backlog(self) -> bool:
        """Deferred analyses outstanding (blocks snapshot quiescence)."""
        return bool(self.deferred)

    def reset_breakers(self) -> None:
        """Force every breaker closed (operator redrive after healing)."""
        with self._lock:
            for breaker in self.breakers.values():
                breaker.force_close()

    # ------------------------------------------------------------ redrive

    def take_redrive_rows(self) -> list[QuarantinedItem]:
        """Drain the quarantine for an operator redrive (seq order)."""
        with self._lock:
            rows = self.quarantine.take_all()
            self.counters.requeued += len(rows)
            return rows

    # ------------------------------------------------------------- replay

    def plan_replay(self, row: dict) -> None:
        """Pre-scan hook: one logged ``quarantine`` event for a seq."""
        with self._lock:
            self._replay_plan.setdefault(row["seq"], deque()).append(row)

    def consume_replay(self, seq: int) -> dict | None:
        """The planned disposition of this supervision attempt, if any."""
        if not self._replay_plan:
            return None
        with self._lock:
            plan = self._replay_plan.get(seq)
            if not plan:
                return None
            row = plan.popleft()
            if not plan:
                del self._replay_plan[seq]
            return row

    def quarantine_replayed(self, row: dict) -> None:
        """Apply one planned quarantine verbatim (original stage/error
        preserved; the WAL already holds the event, so no re-journal)."""
        with self._lock:
            self.quarantine.add(QuarantinedItem.from_dict(row))
            self.counters.quarantined += 1


def _nothing() -> None:
    return None
