"""Questions & Answers subsystem: templates, engine, FAQ, mining."""

from .engine import Answer, QASystem
from .faq import FAQDatabase, QAPair, normalise_key
from .mining import MinedPair, QAMiner, TranscriptLine
from .templates import QuestionKind, TemplateMatch, TemplateMatcher

__all__ = [
    "Answer",
    "FAQDatabase",
    "MinedPair",
    "QAMiner",
    "QAPair",
    "QASystem",
    "QuestionKind",
    "TemplateMatch",
    "TemplateMatcher",
    "TranscriptLine",
    "normalise_key",
]
