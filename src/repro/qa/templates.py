"""Interrogative templates (paper section 4.4).

"There are some interrogative templates of the Question and Answer system
such as: 'What is', 'The relations of', 'Is … has …' and 'Which … has'."
Note the learner-English "Is … has …": the templates must tolerate
non-native phrasings, so matching is lexical-cue plus ontology-keyword
based rather than strict-grammar based.

Each template classifies a question into a :class:`QuestionKind` and binds
the ontology items it mentions; the engine then computes the answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.linkgrammar.tokenizer import TokenizedSentence, tokenize
from repro.nlp.keywords import KeywordFilter, KeywordMatch
from repro.ontology.model import ItemKind


class QuestionKind(Enum):
    """The template families the QA system understands."""

    DEFINITION = "definition"          # What is X?
    RELATIONS = "relations"            # The relations of X
    HAS_OPERATION = "has-operation"    # Does X have Y? / Is X has Y?
    WHICH_HAS = "which-has"            # Which data structure has Y?
    OPERATIONS_OF = "operations-of"    # What operations does X support?
    PROPERTY = "property"              # Is X LIFO?
    IS_A = "is-a"                      # Is a stack a data structure?
    UNKNOWN = "unknown"


@dataclass(frozen=True, slots=True)
class TemplateMatch:
    """A recognised question.

    Attributes:
        kind: the matched template family.
        concepts: concept keywords bound by the template.
        operations: operation keywords bound by the template.
        properties: property/algorithm keywords bound by the template.
    """

    kind: QuestionKind
    concepts: tuple[KeywordMatch, ...] = ()
    operations: tuple[KeywordMatch, ...] = ()
    properties: tuple[KeywordMatch, ...] = ()

    @property
    def all_keywords(self) -> tuple[KeywordMatch, ...]:
        return self.concepts + self.operations + self.properties


class TemplateMatcher:
    """Matches learner questions against the template families."""

    def __init__(self, keyword_filter: KeywordFilter) -> None:
        self.keyword_filter = keyword_filter

    def match(self, text: str | TokenizedSentence) -> TemplateMatch:
        """Classify one question and bind its ontology items."""
        sentence = tokenize(text) if isinstance(text, str) else text
        words = sentence.words
        keywords = self.keyword_filter.extract(sentence)
        concepts = tuple(k for k in keywords if k.item.kind == ItemKind.CONCEPT)
        operations = tuple(k for k in keywords if k.item.kind == ItemKind.OPERATION)
        properties = tuple(
            k for k in keywords if k.item.kind in (ItemKind.PROPERTY, ItemKind.ALGORITHM)
        )
        kind = self._classify(words, concepts, operations, properties)
        return TemplateMatch(kind, concepts, operations, properties)

    def _classify(
        self,
        words: tuple[str, ...],
        concepts: tuple[KeywordMatch, ...],
        operations: tuple[KeywordMatch, ...],
        properties: tuple[KeywordMatch, ...],
    ) -> QuestionKind:
        if not words:
            return QuestionKind.UNKNOWN
        joined = " ".join(words)
        has_cue = any(cue in words for cue in ("have", "has", "support", "supports"))

        # "Which ... has ..." — reverse lookup by operation.
        if words[0] == "which" and has_cue and operations:
            return QuestionKind.WHICH_HAS

        # "The relations of X" / "What are the relations of X?"
        if "relation" in words or "relations" in words:
            if concepts or operations or properties:
                return QuestionKind.RELATIONS

        # "What operations does X support?" / "What are the operations of X?"
        if ("operation" in words or "operations" in words or "method" in words
                or "methods" in words) and words[0] in ("what", "which") and concepts:
            return QuestionKind.OPERATIONS_OF

        # "Does X have Y?" / the learner form "Is X has Y?"
        if has_cue and concepts and operations:
            return QuestionKind.HAS_OPERATION

        # "Is a stack a data structure?" — two concepts under a copula.
        if words[0] in ("is", "are") and len(concepts) >= 2:
            return QuestionKind.IS_A

        # "Is the stack LIFO?" — property checks.
        if words[0] in ("is", "are") and concepts and properties:
            return QuestionKind.PROPERTY

        # "What is X?" — definitions (also "what is stack for"-ish forms).
        if joined.startswith("what is") or joined.startswith("what are"):
            if concepts or operations or properties:
                return QuestionKind.DEFINITION
        if words[0] in ("define", "describe") and (concepts or operations or properties):
            return QuestionKind.DEFINITION

        # WH fallback with a single bound item: treat as definition query.
        if words[0] in ("what", "who") and len(concepts) + len(operations) + len(properties) == 1:
            return QuestionKind.DEFINITION

        return QuestionKind.UNKNOWN
