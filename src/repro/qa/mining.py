"""QA-pair mining from chat dialogue (paper section 4.4).

"Moreover, FAQ database can also use the technologies of data mining to
collect the question and answer pairs from the learner when they discuss
in this system."  The miner scans a transcript for question messages
followed (within a window) by replies from *other* participants that share
ontology keywords with the question; the best-overlapping reply becomes a
mined QA pair, with teacher replies preferred.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nlp.keywords import KeywordFilter
from repro.nlp.patterns import classify

from .faq import FAQDatabase
from .templates import TemplateMatcher, QuestionKind


@dataclass(frozen=True, slots=True)
class TranscriptLine:
    """One chat message, as the miner sees it."""

    user: str
    text: str
    timestamp: float
    role: str = "student"


@dataclass(frozen=True, slots=True)
class MinedPair:
    """A question/answer pair recovered from dialogue."""

    question: TranscriptLine
    answer: TranscriptLine
    overlap: int
    teacher_answer: bool


class QAMiner:
    """Mines question/answer pairs out of chat transcripts."""

    def __init__(
        self,
        keyword_filter: KeywordFilter,
        window: int = 4,
        min_overlap: int = 1,
    ) -> None:
        self.keyword_filter = keyword_filter
        self.matcher = TemplateMatcher(keyword_filter)
        self.window = window
        self.min_overlap = min_overlap

    def mine(self, transcript: list[TranscriptLine]) -> list[MinedPair]:
        """All mined pairs, transcript order."""
        pairs: list[MinedPair] = []
        for index, line in enumerate(transcript):
            if not classify(line.text).is_question:
                continue
            question_keywords = {k.item_id for k in self.keyword_filter.extract(line.text)}
            if not question_keywords:
                continue
            best: MinedPair | None = None
            for candidate in transcript[index + 1 : index + 1 + self.window]:
                if candidate.user == line.user:
                    continue
                if classify(candidate.text).is_question:
                    continue
                candidate_keywords = {
                    k.item_id for k in self.keyword_filter.extract(candidate.text)
                }
                overlap = len(question_keywords & candidate_keywords)
                if overlap < self.min_overlap:
                    continue
                mined = MinedPair(
                    question=line,
                    answer=candidate,
                    overlap=overlap,
                    teacher_answer=(candidate.role == "teacher"),
                )
                if best is None or _better(mined, best):
                    best = mined
            if best is not None:
                pairs.append(best)
        return pairs

    def feed_faq(self, transcript: list[TranscriptLine], faq: FAQDatabase) -> int:
        """Mine a transcript straight into a FAQ database; returns count."""
        added = 0
        for pair in self.mine(transcript):
            match = self.matcher.match(pair.question.text)
            if match.kind == QuestionKind.UNKNOWN and not match.all_keywords:
                continue
            faq.record(
                match,
                pair.question.text,
                pair.answer.text,
                now=pair.answer.timestamp,
                source="mined",
            )
            added += 1
        return added


def _better(challenger: MinedPair, incumbent: MinedPair) -> bool:
    """Prefer teacher answers, then higher keyword overlap, then earlier."""
    if challenger.teacher_answer != incumbent.teacher_answer:
        return challenger.teacher_answer
    if challenger.overlap != incumbent.overlap:
        return challenger.overlap > incumbent.overlap
    return False
