"""The Questions and Answers system (paper section 4.4, Figure 6).

Flow, as the paper describes for "What is Stack?": extract the keyword,
match the question template, locate the item in the knowledge ontology,
serve its definition/description — "Thus, the system will collect this
question and answer into the FAQ database."  The FAQ cache is consulted
first; unanswerable-by-ontology questions fall back to the learner corpus
("the system will attempt to find the answer from the knowledge ontology
or learner corpus").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.corpus.store import LearnerCorpus
from repro.nlp.keywords import KeywordFilter
from repro.ontology.distance import SemanticDistanceEvaluator
from repro.ontology.model import Item, ItemKind, Ontology, RelationKind

from .faq import FAQDatabase
from .templates import QuestionKind, TemplateMatch, TemplateMatcher


@dataclass(frozen=True, slots=True)
class Answer:
    """The QA system's response to one question.

    Attributes:
        question: the question as asked.
        kind: the matched template family.
        text: the answer text ("" when unanswered).
        answered: whether an answer was produced.
        source: "faq", "ontology", "corpus" or "none".
        item_ids: ontology items involved.
    """

    question: str
    kind: QuestionKind
    text: str
    answered: bool
    source: str
    item_ids: tuple[int, ...] = ()

    @property
    def is_faq_hit(self) -> bool:
        return self.source == "faq"


@dataclass(slots=True)
class QAResolution:
    """The pure, store-independent part of answering one question.

    Template matching and the ontology answer depend only on static
    state (keyword filter, templates, ontology), so a drain batch
    resolves each *distinct* question once and shares the resolution
    across every room that asked it; :meth:`QASystem.apply_resolution`
    then performs the per-item side effects (FAQ lookup and bump,
    corpus fallback).  The ontology answer is computed lazily — a
    question that hits the FAQ cache on every apply never pays for it —
    and cached on the resolution, so it is computed at most once per
    batch.  The lazy fill is value-deterministic (a pure function of the
    match), making shared resolutions safe across worker threads.
    """

    question: str
    match: TemplateMatch
    item_ids: tuple[int, ...]
    _computed: str | None = None


class QASystem:
    """Template-driven QA over the ontology, corpus and FAQ database."""

    def __init__(
        self,
        ontology: Ontology,
        faq: FAQDatabase | None = None,
        corpus: LearnerCorpus | None = None,
        keyword_filter: KeywordFilter | None = None,
    ) -> None:
        self.ontology = ontology
        self.faq = faq if faq is not None else FAQDatabase()
        self.corpus = corpus
        self.keyword_filter = keyword_filter or KeywordFilter(ontology)
        self.matcher = TemplateMatcher(self.keyword_filter)
        self.evaluator = SemanticDistanceEvaluator(ontology)

    # ----------------------------------------------------------------- API

    def answer(self, question: str, now: float = 0.0) -> Answer:
        """Answer one question, updating the FAQ statistics.

        Equivalent to ``apply_resolution(resolve(question), now)`` — the
        split exists so drain batches resolve each distinct question
        once while still bumping the FAQ per asking.
        """
        return self.apply_resolution(self.resolve(question), now=now)

    def resolve(self, question: str) -> QAResolution:
        """Classify one question — pure, memoisable, no side effects."""
        match = self.matcher.match(question)
        item_ids = tuple(sorted({k.item_id for k in match.all_keywords}))
        return QAResolution(question, match, item_ids)

    def apply_resolution(
        self,
        resolution: QAResolution,
        now: float = 0.0,
        origin: tuple[int, int] | None = None,
    ) -> Answer:
        """Serve one asking of a resolved question (FAQ bump included).

        This is the per-item half: it consults the FAQ cache, falls back
        to the resolution's (lazily computed) ontology answer and then
        the learner corpus, and records the asking into the FAQ
        statistics — exactly the side effects the sequential pipeline
        performs per question.  ``origin`` (message seq, sentence index)
        is forwarded to the FAQ so out-of-order commits — deferred
        backfill, quarantine redrive — converge on the in-order pair.
        """
        match = resolution.match
        question = resolution.question
        item_ids = resolution.item_ids

        if match.kind != QuestionKind.UNKNOWN:
            cached = self.faq.lookup(match)
            if cached is not None:
                self.faq.record(
                    match, question, cached.answer, now, source=cached.source, origin=origin
                )
                return Answer(question, match.kind, cached.answer, True, "faq", item_ids)
            text = self._resolved_text(resolution)
            if text:
                self.faq.record(match, question, text, now, origin=origin)
                return Answer(question, match.kind, text, True, "ontology", item_ids)

        corpus_text = self._corpus_answer(match)
        if corpus_text:
            if match.kind != QuestionKind.UNKNOWN:
                self.faq.record(
                    match, question, corpus_text, now, source="corpus", origin=origin
                )
            return Answer(question, match.kind, corpus_text, True, "corpus", item_ids)
        return Answer(question, match.kind, "", False, "none", item_ids)

    def _resolved_text(self, resolution: QAResolution) -> str:
        """The resolution's ontology answer, computed at most once."""
        if resolution._computed is None:
            resolution._computed = (
                self._compute(resolution.match)
                if resolution.match.kind != QuestionKind.UNKNOWN
                else ""
            )
        return resolution._computed

    def fork(
        self,
        faq: FAQDatabase | None = None,
        corpus: LearnerCorpus | None = None,
    ) -> "QASystem":
        """A twin bound to shard-local stores but sharing every static
        collaborator (ontology, keyword filter, matcher, evaluator) —
        shared matchers are what let worker threads share one
        resolution memo per drain batch."""
        twin = QASystem.__new__(QASystem)
        twin.ontology = self.ontology
        twin.faq = faq if faq is not None else self.faq
        twin.corpus = corpus if corpus is not None else self.corpus
        twin.keyword_filter = self.keyword_filter
        twin.matcher = self.matcher
        twin.evaluator = self.evaluator
        return twin

    # ------------------------------------------------------------ answers

    def _compute(self, match: TemplateMatch) -> str:
        handlers = {
            QuestionKind.DEFINITION: self._answer_definition,
            QuestionKind.RELATIONS: self._answer_relations,
            QuestionKind.HAS_OPERATION: self._answer_has_operation,
            QuestionKind.WHICH_HAS: self._answer_which_has,
            QuestionKind.OPERATIONS_OF: self._answer_operations_of,
            QuestionKind.PROPERTY: self._answer_property,
            QuestionKind.IS_A: self._answer_is_a,
        }
        handler = handlers.get(match.kind)
        return handler(match) if handler else ""

    def _answer_definition(self, match: TemplateMatch) -> str:
        for keyword in match.all_keywords:
            item = keyword.item
            if item.definition.description:
                return item.definition.description
        return ""

    def _answer_relations(self, match: TemplateMatch) -> str:
        if not match.all_keywords:
            return ""
        item = match.all_keywords[0].item
        fragments: list[str] = []
        for relation in self.ontology.relations_from(item.item_id):
            target = self.ontology.get(relation.target)
            fragments.append(f"{item.name} {relation.kind.value} {target.name}")
        for relation in self.ontology.relations_to(item.item_id):
            if relation.kind == RelationKind.HAS_OPERATION:
                source = self.ontology.get(relation.source)
                fragments.append(f"{source.name} {relation.kind.value} {item.name}")
        if not fragments:
            return f"The ontology records no relations for {item.name}."
        return f"Relations of {item.name}: " + "; ".join(sorted(fragments)) + "."

    def _answer_has_operation(self, match: TemplateMatch) -> str:
        if not match.concepts or not match.operations:
            return ""
        concept = match.concepts[0].item
        operation = match.operations[0].item
        if self.ontology.has_operation(concept.item_id, operation.item_id):
            return (
                f"Yes, the {concept.name} has the {operation.name} operation. "
                f"{operation.definition.description}".strip()
            )
        supporters = self.evaluator.concepts_supporting(operation.item_id, near=concept.item_id)
        hint = ""
        if supporters:
            hint = f" The {operation.name} operation belongs to: " + ", ".join(
                item.name for item in supporters[:3]
            ) + "."
        return f"No, the {concept.name} does not have the {operation.name} operation.{hint}"

    def _answer_which_has(self, match: TemplateMatch) -> str:
        if not match.operations:
            return ""
        operation = match.operations[0].item
        supporters = self.ontology.concepts_with_operation(operation.item_id)
        if not supporters:
            return f"No data structure in the ontology has the {operation.name} operation."
        names = ", ".join(sorted(item.name for item in supporters))
        return f"These data structures have the {operation.name} operation: {names}."

    def _answer_operations_of(self, match: TemplateMatch) -> str:
        if not match.concepts:
            return ""
        concept = match.concepts[0].item
        operations = self.ontology.operations_of(concept.item_id)
        if not operations:
            return f"The ontology records no operations for {concept.name}."
        names = ", ".join(sorted(item.name for item in operations))
        return f"The {concept.name} supports: {names}."

    def _answer_property(self, match: TemplateMatch) -> str:
        if not match.concepts or not match.properties:
            return ""
        concept = match.concepts[0].item
        prop = match.properties[0].item
        properties = self.ontology.properties_of(concept.item_id)
        if any(item.item_id == prop.item_id for item in properties):
            return f"Yes, the {concept.name} is {prop.name}. {prop.definition.description}".strip()
        return f"No, the {concept.name} is not {prop.name} in this course."

    def _answer_is_a(self, match: TemplateMatch) -> str:
        if len(match.concepts) < 2:
            return ""
        child = match.concepts[0].item
        parent = match.concepts[1].item
        ancestors = {item.item_id for item in self.ontology.ancestors(child.item_id)}
        if parent.item_id in ancestors:
            return f"Yes, a {child.name} is a kind of {parent.name}."
        reverse = {item.item_id for item in self.ontology.ancestors(parent.item_id)}
        if child.item_id in reverse:
            return f"Not exactly: a {parent.name} is a kind of {child.name}."
        return f"No, a {child.name} is not a {parent.name} in this course."

    # ------------------------------------------------------------- corpus

    def _corpus_answer(self, match: TemplateMatch) -> str:
        """Fall back to a correct learner-corpus sentence on topic.

        Retrieval is index-backed and streaming: each wanted keyword's
        posting run is accumulated straight off its delta-encoded gaps,
        intersected on the fly against the verdict-code column (O(1)
        CORRECT test per posting, no decoded tuples), so the fallback
        touches only on-topic correct records instead of walking every
        correct record.  The winner is unchanged: highest keyword
        overlap, earliest record on ties (ontology item names are
        canonical lower-case, matching the store's lower-cased keyword
        postings).
        """
        corpus = self.corpus
        if corpus is None or not match.all_keywords:
            return ""
        overlaps: dict[int, int] = {}
        accumulate = corpus.index.accumulate_correct_keyword_positions
        for name in sorted({keyword.name for keyword in match.all_keywords}):
            accumulate(name, overlaps)
        best = min(
            ((-overlap, position) for position, overlap in overlaps.items()),
            default=None,
        )
        return corpus.text_at(best[1]) if best else ""


def _item_names(items: list[Item]) -> str:
    return ", ".join(sorted(item.name for item in items))
