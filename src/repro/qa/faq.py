"""The FAQ database (paper sections 1, 3, 4.4).

Answered questions accumulate as QA pairs; the database keeps frequency
statistics so that "if sufficient number of QA pairs has been accumulated,
the FAQ system will make the statistic of the questions and answers and
then gets the most frequency Question and Answer pairs" — a learning tool
surfaced back to learners, and a cache consulted before recomputing
answers.

Questions are normalised (template kind + sorted ontology ids) so
paraphrases of the same question share one FAQ entry: "What is a stack?"
and "what is Stack" hit the same pair.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .templates import QuestionKind, TemplateMatch


def normalise_key(kind: QuestionKind, item_ids: tuple[int, ...]) -> str:
    """Canonical FAQ key for a classified question."""
    ids = ",".join(str(i) for i in sorted(set(item_ids)))
    return f"{kind.value}:{ids}"


@dataclass(slots=True)
class QAPair:
    """One accumulated question/answer pair.

    Attributes:
        key: normalised question key (kind + ontology ids).
        question: a representative surface form (first seen).
        answer: the answer text served.
        kind: template family.
        item_ids: ontology items the question binds.
        count: how many times the question has been asked.
        source: "ontology", "corpus", or "mined".
        first_asked / last_asked: simulated timestamps.
    """

    key: str
    question: str
    answer: str
    kind: QuestionKind
    item_ids: tuple[int, ...] = ()
    count: int = 0
    source: str = "ontology"
    first_asked: float = 0.0
    last_asked: float = 0.0

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "question": self.question,
            "answer": self.answer,
            "kind": self.kind.value,
            "item_ids": list(self.item_ids),
            "count": self.count,
            "source": self.source,
            "first_asked": self.first_asked,
            "last_asked": self.last_asked,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QAPair":
        return cls(
            key=data["key"],
            question=data["question"],
            answer=data["answer"],
            kind=QuestionKind(data["kind"]),
            item_ids=tuple(data.get("item_ids", ())),
            count=data.get("count", 0),
            source=data.get("source", "ontology"),
            first_asked=data.get("first_asked", 0.0),
            last_asked=data.get("last_asked", 0.0),
        )


class FAQDatabase:
    """Frequency-counted store of QA pairs."""

    def __init__(self) -> None:
        self._pairs: dict[str, QAPair] = {}

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, key: str) -> bool:
        return key in self._pairs

    # ------------------------------------------------------------- writing

    def record(
        self,
        match: TemplateMatch,
        question: str,
        answer: str,
        now: float = 0.0,
        source: str = "ontology",
    ) -> QAPair:
        """Fold one answered question into the database."""
        key = normalise_key(match.kind, tuple(k.item_id for k in match.all_keywords))
        pair = self._pairs.get(key)
        if pair is None:
            pair = QAPair(
                key=key,
                question=question,
                answer=answer,
                kind=match.kind,
                item_ids=tuple(sorted({k.item_id for k in match.all_keywords})),
                count=0,
                source=source,
                first_asked=now,
            )
            self._pairs[key] = pair
        pair.count += 1
        pair.last_asked = now
        return pair

    # ------------------------------------------------------------- queries

    def lookup(self, match: TemplateMatch) -> QAPair | None:
        """The cached pair for a classified question, if any."""
        key = normalise_key(match.kind, tuple(k.item_id for k in match.all_keywords))
        return self._pairs.get(key)

    def pairs(self) -> list[QAPair]:
        return sorted(self._pairs.values(), key=lambda p: (-p.count, p.key))

    def top(self, limit: int = 10) -> list[QAPair]:
        """The most frequent QA pairs — the paper's learner-facing FAQ."""
        return self.pairs()[:limit]

    def total_questions(self) -> int:
        return sum(pair.count for pair in self._pairs.values())

    # --------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for pair in self.pairs():
                handle.write(json.dumps(pair.to_dict(), ensure_ascii=False) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "FAQDatabase":
        database = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    pair = QAPair.from_dict(json.loads(line))
                    database._pairs[pair.key] = pair
        return database
