"""The FAQ database (paper sections 1, 3, 4.4).

Answered questions accumulate as QA pairs; the database keeps frequency
statistics so that "if sufficient number of QA pairs has been accumulated,
the FAQ system will make the statistic of the questions and answers and
then gets the most frequency Question and Answer pairs" — a learning tool
surfaced back to learners, and a cache consulted before recomputing
answers.

Questions are normalised (template kind + sorted ontology ids) so
paraphrases of the same question share one FAQ entry: "What is a stack?"
and "what is Stack" hit the same pair.

The database is a :class:`~repro.state.mergeable.MergeableStore`: a
drain worker's :class:`FAQReplica` buffers its question *bumps* locally
(overlaying its own shard's new pairs for lookups) and
:meth:`FAQDatabase.merge` folds them back at the barrier.  Counts and
``last_asked`` commute; the representative surface form / answer /
``first_asked`` of a pair born inside a barrier belong to the bump with
the smallest origin (global message seq), so merging replicas in any
order reproduces what a single database fed the questions in post order
would hold.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .templates import QuestionKind, TemplateMatch


def normalise_key(kind: QuestionKind, item_ids: tuple[int, ...]) -> str:
    """Canonical FAQ key for a classified question."""
    ids = ",".join(str(i) for i in sorted(set(item_ids)))
    return f"{kind.value}:{ids}"


@dataclass(slots=True)
class QAPair:
    """One accumulated question/answer pair.

    Attributes:
        key: normalised question key (kind + ontology ids).
        question: a representative surface form (first seen).
        answer: the answer text served.
        kind: template family.
        item_ids: ontology items the question binds.
        count: how many times the question has been asked.
        source: "ontology", "corpus", or "mined".
        first_asked / last_asked: simulated timestamps.
    """

    key: str
    question: str
    answer: str
    kind: QuestionKind
    item_ids: tuple[int, ...] = ()
    count: int = 0
    source: str = "ontology"
    first_asked: float = 0.0
    last_asked: float = 0.0

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "question": self.question,
            "answer": self.answer,
            "kind": self.kind.value,
            "item_ids": list(self.item_ids),
            "count": self.count,
            "source": self.source,
            "first_asked": self.first_asked,
            "last_asked": self.last_asked,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QAPair":
        return cls(
            key=data["key"],
            question=data["question"],
            answer=data["answer"],
            kind=QuestionKind(data["kind"]),
            item_ids=tuple(data.get("item_ids", ())),
            count=data.get("count", 0),
            source=data.get("source", "ontology"),
            first_asked=data.get("first_asked", 0.0),
            last_asked=data.get("last_asked", 0.0),
        )


class FAQDatabase:
    """Frequency-counted store of QA pairs."""

    def __init__(self) -> None:
        self._pairs: dict[str, QAPair] = {}
        # Origin (message seq) that created each merge-born pair; lets
        # later-merging replicas win the representative surface form when
        # they saw the question earlier in post order.  Never cleared:
        # seqs are globally monotonic, so stale entries can't win.
        self._merge_origins: dict[str, tuple[int, int]] = {}
        # Keys born in the current merge barrier (reset when replicas of
        # a new fork watermark start merging): the basis of the
        # cross-shard FAQ-hit correction merge() reports.
        self._merge_floor: int | None = None
        self._barrier_born: set[str] = set()

    def __len__(self) -> int:
        return len(self._pairs)

    def __contains__(self, key: str) -> bool:
        return key in self._pairs

    # ------------------------------------------------------------- writing

    def record(
        self,
        match: TemplateMatch,
        question: str,
        answer: str,
        now: float = 0.0,
        source: str = "ontology",
        origin: tuple[int, int] | None = None,
    ) -> QAPair:
        """Fold one answered question into the database.

        ``origin`` — ``(message seq, sentence index)`` — orders askings
        that commit out of post order (deferred backfill, quarantine
        redrive): the smallest origin defines the representative surface
        form/answer/source, and ``first_asked``/``last_asked`` fold with
        min/max, so a late commit of an early asking converges on the
        pair an in-order run would hold.  Omitted (None) for in-order
        callers — every update below is then the plain sequential fold.
        """
        key = normalise_key(match.kind, tuple(k.item_id for k in match.all_keywords))
        pair = self._pairs.get(key)
        if pair is None:
            pair = QAPair(
                key=key,
                question=question,
                answer=answer,
                kind=match.kind,
                item_ids=tuple(sorted({k.item_id for k in match.all_keywords})),
                count=0,
                source=source,
                first_asked=now,
            )
            self._pairs[key] = pair
            if origin is not None:
                self._merge_origins[key] = origin
        else:
            prior = self._merge_origins.get(key)
            if origin is not None and prior is not None and origin < prior:
                pair.question = question
                pair.answer = answer
                pair.source = source
                self._merge_origins[key] = origin
            pair.first_asked = min(pair.first_asked, now)
        pair.count += 1
        pair.last_asked = max(pair.last_asked, now)
        return pair

    # ------------------------------------------------------------- queries

    def lookup(self, match: TemplateMatch) -> QAPair | None:
        """The cached pair for a classified question, if any."""
        key = normalise_key(match.kind, tuple(k.item_id for k in match.all_keywords))
        return self._pairs.get(key)

    def pairs(self) -> list[QAPair]:
        return sorted(self._pairs.values(), key=lambda p: (-p.count, p.key))

    def top(self, limit: int = 10) -> list[QAPair]:
        """The most frequent QA pairs — the paper's learner-facing FAQ."""
        return self.pairs()[:limit]

    def total_questions(self) -> int:
        return sum(pair.count for pair in self._pairs.values())

    # -------------------------------------------------- partition and merge

    def fork(self) -> "FAQReplica":
        """A shard replica: bumps recorded on it stay local until merge."""
        return FAQReplica(self)

    def merge(self, replica: "FAQReplica") -> int:
        """Fold one replica's buffered question bumps into the database.

        Returns the **FAQ-hit correction**: the number of askings this
        replica served as cache *misses* that are cache hits in global
        post order.  A question born inside a barrier is missed once per
        shard that asked it, but a sequential run misses it exactly once
        — so every merge after the first of a barrier-born key owes one
        hit.  The caller folds the correction into its ``faq_hits``
        counter, making the merged statistics identical to the
        sequential pipeline's on any drain schedule.
        """
        if self._merge_floor != replica.base_len:
            self._merge_floor = replica.base_len
            self._barrier_born = set()
        corrections = 0
        for key, bump in replica.pending.items():
            pair = self._pairs.get(key)
            if pair is not None and key in self._barrier_born:
                corrections += 1
            if pair is None:
                self._barrier_born.add(key)
                self._pairs[key] = QAPair(
                    key=key,
                    question=bump.question,
                    answer=bump.answer,
                    kind=bump.kind,
                    item_ids=bump.item_ids,
                    count=bump.count,
                    source=bump.source,
                    first_asked=bump.first_asked,
                    last_asked=bump.last_asked,
                )
                self._merge_origins[key] = bump.first_origin
            else:
                origin = self._merge_origins.get(key)
                if origin is not None and bump.first_origin < origin:
                    # This replica saw the (barrier-born) question first
                    # in post order: it defines the representative pair.
                    pair.question = bump.question
                    pair.answer = bump.answer
                    pair.source = bump.source
                    pair.first_asked = min(pair.first_asked, bump.first_asked)
                    self._merge_origins[key] = bump.first_origin
                pair.count += bump.count
                pair.last_asked = max(pair.last_asked, bump.last_asked)
        return corrections

    def snapshot(self) -> tuple[dict, ...]:
        """Canonical comparable value: every pair, frequency-ranked."""
        return tuple(pair.to_dict() for pair in self.pairs())

    def restore(self, pairs: list[dict]) -> None:
        """Replace the database's contents from ``to_dict`` rows
        (snapshot recovery) — in place, resetting merge bookkeeping
        (recovery happens at a barrier: no replicas are outstanding)."""
        self._pairs = {}
        self._merge_origins = {}
        self._merge_floor = None
        self._barrier_born = set()
        for data in pairs:
            pair = QAPair.from_dict(data)
            self._pairs[pair.key] = pair

    # --------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for pair in self.pairs():
                handle.write(json.dumps(pair.to_dict(), ensure_ascii=False) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "FAQDatabase":
        database = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    pair = QAPair.from_dict(json.loads(line))
                    database._pairs[pair.key] = pair
        return database


@dataclass(slots=True)
class _FAQBump:
    """Aggregated question bumps for one FAQ key inside one replica."""

    first_origin: tuple[int, int]
    question: str
    answer: str
    kind: QuestionKind
    item_ids: tuple[int, ...]
    source: str
    first_asked: float
    last_asked: float
    count: int = 0


class FAQReplica:
    """One worker's shard-local view of a :class:`FAQDatabase`.

    Lookups see the fork-point snapshot *plus* this shard's own new
    pairs (a question asked twice in one shard's batch hits the cache
    the second time, like the sequential pipeline); records accumulate
    per-key :class:`_FAQBump` aggregates tagged with their origin.
    Single-owner: one worker writes, the barrier merges.
    """

    __slots__ = ("_base", "base_len", "_pending", "_local", "_origin_seq", "_origin_n")

    def __init__(self, base: FAQDatabase) -> None:
        self._base = base
        self.base_len = len(base)
        self._pending: dict[str, _FAQBump] = {}
        self._local: dict[str, QAPair] = {}
        self._origin_seq = 0
        self._origin_n = 0

    @property
    def base(self) -> FAQDatabase:
        return self._base

    @property
    def pending(self) -> dict[str, _FAQBump]:
        """Buffered per-key bump aggregates."""
        return self._pending

    def begin_origin(self, seq: int) -> None:
        self._origin_seq = seq
        self._origin_n = 0

    def rebase(self) -> None:
        self._pending = {}
        self._local = {}
        self.base_len = len(self._base)

    def __len__(self) -> int:
        return self.base_len + len(self._local)

    def __contains__(self, key: str) -> bool:
        return key in self._local or key in self._base

    def lookup(self, match: TemplateMatch) -> QAPair | None:
        key = normalise_key(match.kind, tuple(k.item_id for k in match.all_keywords))
        local = self._local.get(key)
        if local is not None:
            return local
        return self._base.lookup(match)

    def record(
        self,
        match: TemplateMatch,
        question: str,
        answer: str,
        now: float = 0.0,
        source: str = "ontology",
        origin: tuple[int, int] | None = None,
    ) -> QAPair:
        # ``origin`` is accepted for interface parity with the base
        # database and ignored: replica ordering is owned by
        # ``begin_origin`` (the runtime tags each item's writes), and
        # out-of-order commits never run against a replica — degraded
        # mode defers whole items before they reach a shard pipeline.
        key = normalise_key(match.kind, tuple(k.item_id for k in match.all_keywords))
        bump = self._pending.get(key)
        if bump is None:
            bump = _FAQBump(
                first_origin=(self._origin_seq, self._origin_n),
                question=question,
                answer=answer,
                kind=match.kind,
                item_ids=tuple(sorted({k.item_id for k in match.all_keywords})),
                source=source,
                first_asked=now,
                last_asked=now,
            )
            self._pending[key] = bump
        bump.count += 1
        bump.last_asked = now
        self._origin_n += 1
        pair = self._local.get(key)
        if pair is None:
            if key in self._base:
                # Base pairs are frozen during the cycle; the merged
                # count lands at the barrier.
                return self._base._pairs[key]
            pair = QAPair(
                key=key,
                question=question,
                answer=answer,
                kind=match.kind,
                item_ids=bump.item_ids,
                count=0,
                source=source,
                first_asked=now,
            )
            self._local[key] = pair
        pair.count += 1
        pair.last_asked = now
        return pair

    def __getattr__(self, name: str):
        # Reads (pairs, top, total_questions, ...) see the snapshot.
        # The explicit lookup keeps unpickling (which probes special
        # methods before _base is restored) from recursing.
        try:
            base = object.__getattribute__(self, "_base")
        except AttributeError:
            raise AttributeError(name) from None
        return getattr(base, name)

    def __getstate__(self) -> dict:
        """Explicit pickle surface: the slots, nothing implicit."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
