"""The Corpora Generator (Figure 3).

The DDL/DML Interpreter "can interpret ontology and then send the data to
Corpora Generator, which records the data to Distance Learning Ontology
and Learner Corpus databases" — i.e. the knowledge body seeds the corpus
with known-correct model sentences before any learner speaks.  These seed
sentences are what the suggestion search offers to early learners, and
they double as grammar regression data (every generated sentence must
parse cleanly).
"""

from __future__ import annotations

from repro.ontology.model import ItemKind, Ontology, RelationKind

from .records import Correctness, CorpusRecord
from .store import LearnerCorpus

GENERATOR_USER = "<corpora-generator>"


def _article(noun: str) -> str:
    return "an" if noun[0] in "aeiou" else "a"


class CorporaGenerator:
    """Generates model sentences about an ontology into a corpus."""

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology

    def seed_sentences(self) -> list[tuple[str, list[str]]]:
        """(sentence, keywords) pairs derived from the knowledge body."""
        sentences: list[tuple[str, list[str]]] = []
        for item in self.ontology.items_of_kind(ItemKind.CONCEPT):
            if item.definition.description:
                sentences.append((item.definition.description, [item.name]))
            for relation in self.ontology.relations_from(item.item_id, RelationKind.HAS_OPERATION):
                operation = self.ontology.get(relation.target)
                sentences.append(
                    (
                        f"The {item.name} supports the {operation.name} operation.",
                        [item.name, operation.name],
                    )
                )
            for parent in self.ontology.parents(item.item_id):
                sentences.append(
                    (
                        f"{_article(item.name).capitalize()} {item.name} is "
                        f"{_article(parent.name)} {parent.name}.",
                        [item.name, parent.name],
                    )
                )
            for relation in self.ontology.relations_from(item.item_id, RelationKind.HAS_PROPERTY):
                prop = self.ontology.get(relation.target)
                sentences.append(
                    (
                        f"The {item.name} is {prop.name}.",
                        [item.name, prop.name],
                    )
                )
        return sentences

    def populate(self, corpus: LearnerCorpus, room: str = "seed") -> int:
        """Write all seed sentences into ``corpus``; returns the count."""
        added = 0
        for sentence, keywords in self.seed_sentences():
            corpus.add(
                CorpusRecord(
                    record_id=corpus.next_id(),
                    user=GENERATOR_USER,
                    room=room,
                    text=sentence,
                    timestamp=0.0,
                    pattern="simple",
                    verdict=Correctness.CORRECT,
                    keywords=list(keywords),
                )
            )
            added += 1
        return added
