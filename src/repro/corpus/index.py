"""The corpus inverted-index subsystem: compacted postings, DF tiers.

Extracted from :class:`~repro.corpus.store.LearnerCorpus`, which used to
inline its verdict/keyword/token indexes as plain ``dict[str, list[int]]``
maps.  At the 10^5–10^6 record scale the ROADMAP targets those lists have
two problems:

* **memory** — a Python ``list`` of boxed ints costs ~8 bytes of pointer
  plus a 28-byte ``int`` object per posting; high-document-frequency
  terms ("the" appears in nearly every record) dominate the footprint.
* **retrieval time** — an unconstrained suggestion-search union walks
  the postings of *every* query token, so one "the" in the query drags
  the whole corpus through the union and retrieval degrades back toward
  a full scan however clever the later top-k cut is.

:class:`CorpusIndex` fixes both with classic IR machinery:

* Postings are **delta-encoded** ``array('I')`` runs
  (:class:`PostingList`): positions are strictly increasing add-order
  ints, so each entry stores the gap to its predecessor in 4 flat bytes.
  Append and tail-pop (the shard-merge eviction path) stay O(1), so
  :meth:`LearnerCorpus._evict_tail`'s O(tail) contract is preserved.
* Every term tracks its **document frequency** (``len`` of its posting
  list — terms are indexed at most once per record).
* Terms whose DF exceeds ``IndexConfig.stopword_df_cap`` are demoted to
  a **stopword tier** (WAND-style frequency pruning, coarse-grained):
  :meth:`CorpusIndex.split_tokens` partitions a query's tokens into
  rare and capped tiers, rarest first, and retrieval processes the rare
  tier fully while skipping the capped tier whenever the rare terms
  already produced candidates — falling back to a budgeted walk of the
  capped postings only when they did not.  See
  :meth:`~repro.corpus.search.SuggestionSearch._candidates` and
  ``docs/corpus.md`` for the exact-vs-bounded contract.

The index also keeps a flat per-record verdict code array so consumers
(suggestion search's CORRECT filter, the QA corpus fallback) can test a
candidate's verdict in O(1) without touching the record objects.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterable, Iterator

from .records import Correctness

#: Stable verdict <-> byte-code mapping for the per-record verdict array.
_VERDICT_FOR_CODE: tuple[Correctness, ...] = tuple(Correctness)
_CODE_FOR_VERDICT: dict[Correctness, int] = {
    verdict: code for code, verdict in enumerate(_VERDICT_FOR_CODE)
}
_CORRECT_CODE: int = _CODE_FOR_VERDICT[Correctness.CORRECT]


@dataclass(frozen=True, slots=True)
class IndexConfig:
    """Construction knobs for :class:`CorpusIndex`.

    Attributes:
        stopword_df_cap: document-frequency cap above which a token is
            demoted to the stopword tier that unconstrained retrieval
            skips (``None`` disables tiering).  The default keeps every
            realistic test corpus exact while capping "the"-style terms
            long before the 10^5-record scale where they start to
            dominate retrieval unions.
    """

    stopword_df_cap: int | None = 1024


class PostingList:
    """A compacted, append/tail-pop-only list of ascending positions.

    Positions are record add-order indexes, strictly increasing within
    one term's postings, so the list stores first the initial position
    and then the gap to each predecessor — 4 flat bytes per posting in
    an ``array('I')`` instead of a pointer to a boxed int.  Only the two
    mutations the corpus needs are supported: ``append`` (ingestion) and
    ``pop`` (shard-merge tail eviction), both O(1).
    """

    __slots__ = ("_gaps", "_last")

    def __init__(self) -> None:
        self._gaps = array("I")
        self._last = -1  # last absolute position; -1 when empty

    def __len__(self) -> int:
        """Document frequency: each record indexes a term at most once."""
        return len(self._gaps)

    def __bool__(self) -> bool:
        return bool(self._gaps)

    def __iter__(self) -> Iterator[int]:
        """Decode positions in ascending (add) order."""
        position = 0
        first = True
        for gap in self._gaps:
            position = gap if first else position + gap
            first = False
            yield position

    @property
    def last(self) -> int:
        """The largest (most recently appended) position; -1 when empty."""
        return self._last

    def append(self, position: int) -> None:
        """Append ``position``; must exceed every stored position."""
        if position <= self._last:
            raise ValueError(
                f"posting positions must be strictly increasing: {position} after {self._last}"
            )
        self._gaps.append(position - self._last if self._last >= 0 else position)
        self._last = position

    def pop(self) -> int:
        """Remove and return the largest position (tail eviction)."""
        gap = self._gaps.pop()
        popped = self._last
        self._last = self._last - gap if self._gaps else -1
        return popped

    def positions(self) -> tuple[int, ...]:
        """All positions, decoded, ascending."""
        return tuple(self)

    def nbytes(self) -> int:
        """Approximate payload size of the compacted run."""
        return len(self._gaps) * self._gaps.itemsize


class CorpusIndex:
    """Owns every inverted index of a :class:`LearnerCorpus`.

    One index instance is bound to one store; the store mirrors every
    mutation through :meth:`append_record` / :meth:`pop_record` so the
    postings always describe exactly the records currently held.  All
    terms (keywords, tokens, users) must arrive already normalised —
    the store lower-cases keywords before indexing.
    """

    __slots__ = ("config", "_verdict_codes", "_by_verdict", "_keywords", "_tokens", "_users")

    def __init__(self, config: IndexConfig | None = None) -> None:
        self.config = config if config is not None else IndexConfig()
        self._verdict_codes = array("B")
        self._by_verdict: dict[Correctness, PostingList] = {}
        self._keywords: dict[str, PostingList] = {}
        self._tokens: dict[str, PostingList] = {}
        self._users: dict[str, PostingList] = {}

    def __len__(self) -> int:
        """Number of indexed records."""
        return len(self._verdict_codes)

    # ------------------------------------------------------------ mutation

    def append_record(
        self,
        verdict: Correctness,
        keywords: Iterable[str],
        tokens: Iterable[str],
        user: str,
    ) -> int:
        """Index the next record; returns its position."""
        position = len(self._verdict_codes)
        self._verdict_codes.append(_CODE_FOR_VERDICT[verdict])
        self._postings(self._by_verdict, verdict).append(position)
        for keyword in keywords:
            self._postings(self._keywords, keyword).append(position)
        for token in tokens:
            self._postings(self._tokens, token).append(position)
        self._postings(self._users, user).append(position)
        return position

    def pop_record(
        self,
        verdict: Correctness,
        keywords: Iterable[str],
        tokens: Iterable[str],
        user: str,
    ) -> None:
        """Un-index the last record (shard-merge tail eviction, O(terms)).

        The caller passes the same term sets it indexed the record with;
        each term's posting tail must be this record's position — add
        order guarantees it — so eviction never scans a posting list.
        """
        position = len(self._verdict_codes) - 1
        self._verdict_codes.pop()
        self._pop_tail(self._by_verdict, verdict, position)
        for keyword in keywords:
            self._pop_tail(self._keywords, keyword, position)
        for token in tokens:
            self._pop_tail(self._tokens, token, position)
        self._pop_tail(self._users, user, position)

    @staticmethod
    def _postings(index: dict, term) -> PostingList:
        postings = index.get(term)
        if postings is None:
            postings = index[term] = PostingList()
        return postings

    @staticmethod
    def _pop_tail(index: dict, term, position: int) -> None:
        postings = index[term]
        popped = postings.pop()
        if popped != position:
            raise AssertionError(
                f"posting tail for {term!r} was {popped}, expected {position}"
            )
        if not postings:
            del index[term]  # keep DF queries exact after eviction

    # ------------------------------------------------------------- queries

    def verdict_at(self, position: int) -> Correctness:
        """The verdict of the record at ``position`` — O(1), no record read."""
        return _VERDICT_FOR_CODE[self._verdict_codes[position]]

    def is_correct(self, position: int) -> bool:
        """True when the record at ``position`` is verdict-CORRECT."""
        return self._verdict_codes[position] == _CORRECT_CODE

    def verdict_positions(self, verdict: Correctness) -> tuple[int, ...]:
        postings = self._by_verdict.get(verdict)
        return postings.positions() if postings is not None else ()

    def iter_verdict_positions(self, verdict: Correctness) -> Iterator[int]:
        postings = self._by_verdict.get(verdict)
        return iter(postings) if postings is not None else iter(())

    def verdict_counts(self) -> dict[Correctness, int]:
        """Document frequency of every verdict currently present."""
        return {verdict: len(postings) for verdict, postings in self._by_verdict.items()}

    def keyword_positions(self, keyword: str) -> tuple[int, ...]:
        postings = self._keywords.get(keyword)
        return postings.positions() if postings is not None else ()

    def iter_keyword_positions(self, keyword: str) -> Iterator[int]:
        postings = self._keywords.get(keyword)
        return iter(postings) if postings is not None else iter(())

    def token_positions(self, token: str) -> tuple[int, ...]:
        postings = self._tokens.get(token)
        return postings.positions() if postings is not None else ()

    def iter_token_positions(self, token: str) -> Iterator[int]:
        postings = self._tokens.get(token)
        return iter(postings) if postings is not None else iter(())

    def user_positions(self, user: str) -> tuple[int, ...]:
        postings = self._users.get(user)
        return postings.positions() if postings is not None else ()

    def keyword_df(self, keyword: str) -> int:
        """Document frequency of ``keyword`` (0 when unseen)."""
        postings = self._keywords.get(keyword)
        return len(postings) if postings is not None else 0

    def token_df(self, token: str) -> int:
        """Document frequency of ``token`` (0 when unseen)."""
        postings = self._tokens.get(token)
        return len(postings) if postings is not None else 0

    # -------------------------------------------------------------- tiers

    def is_capped_token(self, token: str) -> bool:
        """True when ``token`` sits in the stopword (capped-DF) tier."""
        cap = self.config.stopword_df_cap
        return cap is not None and self.token_df(token) > cap

    def split_tokens(self, tokens: Iterable[str]) -> tuple[list[str], list[str]]:
        """Partition query tokens into (rare, capped) tiers, rarest first.

        Tokens absent from the index are dropped — their postings are
        empty, they cannot contribute candidates.  Both halves are
        ordered by ascending document frequency (ties broken
        lexicographically) so retrieval is deterministic and
        rare-term-first: the cheapest, highest-signal postings are
        walked before any early cut can trigger.
        """
        cap = self.config.stopword_df_cap
        rare: list[tuple[int, str]] = []
        capped: list[tuple[int, str]] = []
        for token in set(tokens):
            df = self.token_df(token)
            if df == 0:
                continue
            (capped if cap is not None and df > cap else rare).append((df, token))
        rare.sort()
        capped.sort()
        return [token for _, token in rare], [token for _, token in capped]

    # ---------------------------------------------------------- diagnostics

    def stats(self) -> dict[str, int]:
        """Index-size diagnostics (terms, postings, compacted payload bytes)."""
        families = (self._by_verdict, self._keywords, self._tokens, self._users)
        return {
            "records": len(self._verdict_codes),
            "terms": sum(len(index) for index in families),
            "postings": sum(
                len(postings) for index in families for postings in index.values()
            ),
            "payload_bytes": len(self._verdict_codes)
            + sum(postings.nbytes() for index in families for postings in index.values()),
            "capped_tokens": sum(
                1
                for postings in self._tokens.values()
                if self.config.stopword_df_cap is not None
                and len(postings) > self.config.stopword_df_cap
            ),
        }
