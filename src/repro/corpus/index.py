"""The corpus inverted-index subsystem: compacted postings, DF tiers,
streaming intersection.

Extracted from :class:`~repro.corpus.store.LearnerCorpus`, which used to
inline its verdict/keyword/token indexes as plain ``dict[str, list[int]]``
maps.  At the 10^5–10^6 record scale the ROADMAP targets those lists have
two problems:

* **memory** — a Python ``list`` of boxed ints costs ~8 bytes of pointer
  plus a 28-byte ``int`` object per posting; high-document-frequency
  terms ("the" appears in nearly every record) dominate the footprint.
* **retrieval time** — an unconstrained suggestion-search union walks
  the postings of *every* query token, so one "the" in the query drags
  the whole corpus through the union and retrieval degrades back toward
  a full scan however clever the later top-k cut is.

:class:`CorpusIndex` fixes both with classic IR machinery:

* Postings are **delta-encoded** ``array('I')`` runs
  (:class:`PostingList`): positions are strictly increasing add-order
  ints, so each entry stores the gap to its predecessor in 4 flat bytes.
  Every ``_SKIP``-th entry also lands in a side **skip table** of
  absolute positions, which is what lets readers *gallop* over a run —
  :func:`intersect_iter` seeks through the larger of two posting lists
  block-by-block instead of decoding every gap.  Append and tail-pop
  (the shard-merge eviction path) stay O(1), so
  :meth:`LearnerCorpus._evict_tail`'s O(tail) contract is preserved.
* Posting families are keyed by **interned term ids** from the
  :class:`~repro.corpus.records.CorpusVocabularies` shared with the
  columnar record store — postings, columns and queries all speak the
  same 4-byte ids; the string-keyed query API interns/looks up at the
  boundary.
* Every term tracks its **document frequency** (``len`` of its posting
  list — terms are indexed at most once per record).
* Terms whose DF exceeds ``IndexConfig.stopword_df_cap`` are demoted to
  a **stopword tier** (WAND-style frequency pruning, coarse-grained):
  :meth:`CorpusIndex.split_tokens` partitions a query's tokens into
  rare and capped tiers, rarest first, and retrieval processes the rare
  tier fully while skipping the capped tier whenever the rare terms
  already produced candidates — falling back to a budgeted walk of the
  capped postings only when they did not.  See
  :meth:`~repro.corpus.search.SuggestionSearch._candidates` and
  ``docs/corpus.md`` for the exact-vs-bounded contract.

The index also keeps a flat per-record verdict code array: a dense O(1)
membership oracle that consumers stream posting runs against (suggestion
search's CORRECT filter, the QA corpus fallback) without materialising a
single tuple.  Where *both* sides of an intersection are posting lists —
no dense oracle, e.g. the per-user verdict tallies in the statistic
analyzer — :func:`intersect_iter`'s galloping walk is the tool.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator

from .records import (
    CODE_FOR_VERDICT,
    CORRECT_CODE,
    VERDICT_FOR_CODE,
    Correctness,
    CorpusVocabularies,
)

# Backwards-compatible aliases (pre-columnar, module-private names).
_VERDICT_FOR_CODE = VERDICT_FOR_CODE
_CODE_FOR_VERDICT = CODE_FOR_VERDICT
_CORRECT_CODE = CORRECT_CODE

#: Entries between skip-table checkpoints: galloping seeks decode at
#: most this many gaps after a checkpoint jump.
_SKIP = 32


@dataclass(frozen=True, slots=True)
class IndexConfig:
    """Construction knobs for :class:`CorpusIndex`.

    Attributes:
        stopword_df_cap: document-frequency cap above which a token is
            demoted to the stopword tier that unconstrained retrieval
            skips (``None`` disables tiering).  The default keeps every
            realistic test corpus exact while capping "the"-style terms
            long before the 10^5-record scale where they start to
            dominate retrieval unions.
    """

    stopword_df_cap: int | None = 1024


class PostingList:
    """A compacted, append/tail-pop-only list of ascending positions.

    Positions are record add-order indexes, strictly increasing within
    one term's postings, so the list stores first the initial position
    and then the gap to each predecessor — 4 flat bytes per posting in
    an ``array('I')`` instead of a pointer to a boxed int.  Every
    ``_SKIP``-th entry's absolute position is mirrored into a skip
    table so readers can seek without decoding the whole run.  Only the
    two mutations the corpus needs are supported: ``append`` (ingestion)
    and ``pop`` (shard-merge tail eviction), both O(1).
    """

    __slots__ = ("_gaps", "_last", "_skips")

    def __init__(self) -> None:
        self._gaps = array("I")
        self._skips = array("I")  # absolute position of every _SKIP-th entry
        self._last = -1  # last absolute position; -1 when empty

    def __len__(self) -> int:
        """Document frequency: each record indexes a term at most once."""
        return len(self._gaps)

    def __bool__(self) -> bool:
        return bool(self._gaps)

    def __iter__(self) -> Iterator[int]:
        """Decode positions in ascending (add) order — a running sum
        (the first stored gap is the absolute first position)."""
        position = 0
        for gap in self._gaps:
            position += gap
            yield position

    @property
    def last(self) -> int:
        """The largest (most recently appended) position; -1 when empty."""
        return self._last

    @property
    def gaps(self):
        """The raw delta run (read-only by convention) — for streaming
        readers that fold their own logic into the running-sum decode
        (e.g. the budgeted capped walk's early cut)."""
        return self._gaps

    def append(self, position: int) -> None:
        """Append ``position``; must exceed every stored position."""
        if position <= self._last:
            raise ValueError(
                f"posting positions must be strictly increasing: {position} after {self._last}"
            )
        if len(self._gaps) % _SKIP == 0:
            self._skips.append(position)
        self._gaps.append(position - self._last if self._last >= 0 else position)
        self._last = position

    def pop(self) -> int:
        """Remove and return the largest position (tail eviction)."""
        gap = self._gaps.pop()
        if len(self._gaps) % _SKIP == 0:
            self._skips.pop()
        popped = self._last
        self._last = self._last - gap if self._gaps else -1
        return popped

    def positions(self) -> tuple[int, ...]:
        """All positions, decoded, ascending (test/diagnostic helper —
        runtime readers stream the gaps instead)."""
        return tuple(self)

    def prefix_length(self, upto: int) -> int:
        """How many leading entries hold positions ``< upto``.

        The segment writer freezes the store prefix ``[0, upto)`` to
        disk and needs each posting run split at the same boundary; the
        skip table answers it without decoding the whole run — jump to
        the last checkpoint below ``upto``, then linear-decode at most
        ``_SKIP`` gaps.
        """
        if upto <= 0 or not self._gaps:
            return 0
        if self._last < upto:
            return len(self._gaps)
        gaps = self._gaps
        skips = self._skips
        block = bisect_right(skips, upto - 1)  # checkpoints strictly < upto
        if block == 0:
            count, position = 0, 0
        else:
            count = (block - 1) * _SKIP + 1
            position = skips[block - 1]
        while count < len(gaps):
            step = gaps[count]
            nxt = step if count == 0 else position + step
            if nxt >= upto:
                break
            position = nxt
            count += 1
        return count

    def accumulate_into(self, counts: dict[int, int]) -> None:
        """Bump ``counts[position]`` for every posting — the tight union
        loop of candidate retrieval, straight off the gap run."""
        position = 0
        get = counts.get
        for gap in self._gaps:
            position += gap
            counts[position] = get(position, 0) + 1

    def nbytes(self) -> int:
        """Approximate payload size of the compacted run, skip table
        included."""
        return len(self._gaps) * self._gaps.itemsize + len(self._skips) * self._skips.itemsize


def intersect_iter(a: PostingList, b: PostingList) -> Iterator[int]:
    """Stream the ascending intersection of two posting lists.

    Classic galloping intersection over the delta runs: the shorter
    list drives, and for each of its positions the longer list is
    advanced by jumping its skip table (``bisect`` over absolute
    checkpoint positions) and linear-decoding at most ``_SKIP`` gaps —
    no decoded tuples, no set materialisation.  Both runs ascend, so
    the larger side's cursor only ever moves forward.
    """
    if len(a) > len(b):
        a, b = b, a
    if not a or not b:
        return
    gaps = b._gaps
    skips = b._skips
    total = len(gaps)
    consumed = 0  # entries of b decoded so far
    value = 0  # value of entry consumed-1; only meaningful when consumed > 0
    target = 0
    for gap in a._gaps:
        target += gap
        if consumed == 0 or value < target:
            # Gallop: land on the last checkpoint at or before target.
            block = bisect_right(skips, target) - 1
            if block >= 0 and block * _SKIP >= consumed:
                consumed = block * _SKIP + 1
                value = skips[block]
            while value < target or consumed == 0:
                if consumed >= total:
                    return
                value += gaps[consumed]
                consumed += 1
        if value == target:
            yield target


def intersect_count(a: PostingList, b: PostingList) -> int:
    """Size of the intersection of two posting lists (galloping walk)."""
    count = 0
    for _ in intersect_iter(a, b):
        count += 1
    return count


class CorpusIndex:
    """Owns every inverted index of a :class:`LearnerCorpus`.

    One index instance is bound to one store; the store mirrors every
    mutation through :meth:`append_ids` / :meth:`pop_ids` (id-run fast
    path) or :meth:`append_record` / :meth:`pop_record` (string terms,
    interned at the boundary) so the postings always describe exactly
    the records currently held.  String terms must arrive already
    normalised — the store lower-cases keywords before interning.
    """

    __slots__ = (
        "config",
        "vocabularies",
        "_verdict_codes",
        "_by_verdict",
        "_keywords",
        "_tokens",
        "_users",
    )

    def __init__(
        self,
        config: IndexConfig | None = None,
        vocabularies: CorpusVocabularies | None = None,
    ) -> None:
        self.config = config if config is not None else IndexConfig()
        self.vocabularies = (
            vocabularies if vocabularies is not None else CorpusVocabularies()
        )
        self._verdict_codes = array("B")
        self._by_verdict: dict[Correctness, PostingList] = {}
        self._keywords: dict[int, PostingList] = {}
        self._tokens: dict[int, PostingList] = {}
        self._users: dict[int, PostingList] = {}

    def __len__(self) -> int:
        """Number of indexed records."""
        return len(self._verdict_codes)

    # ------------------------------------------------------------ mutation

    def append_ids(
        self,
        verdict: Correctness,
        keyword_ids: Iterable[int],
        token_ids: Iterable[int],
        user_id: int,
    ) -> int:
        """Index the next record from pre-interned id runs; returns its
        position.  This is the store's ingestion fast path — the ids come
        from the shared vocabularies, no string hashing here."""
        position = len(self._verdict_codes)
        self._verdict_codes.append(CODE_FOR_VERDICT[verdict])
        self._postings(self._by_verdict, verdict).append(position)
        for keyword_id in keyword_ids:
            self._postings(self._keywords, keyword_id).append(position)
        for token_id in token_ids:
            self._postings(self._tokens, token_id).append(position)
        self._postings(self._users, user_id).append(position)
        return position

    def pop_ids(
        self,
        verdict: Correctness,
        keyword_ids: Iterable[int],
        token_ids: Iterable[int],
        user_id: int,
    ) -> None:
        """Un-index the last record (shard-merge tail eviction, O(terms)).

        The caller passes the same id runs it indexed the record with;
        each term's posting tail must be this record's position — add
        order guarantees it — so eviction never scans a posting list.
        """
        position = len(self._verdict_codes) - 1
        self._verdict_codes.pop()
        self._pop_tail(self._by_verdict, verdict, position)
        for keyword_id in keyword_ids:
            self._pop_tail(self._keywords, keyword_id, position)
        for token_id in token_ids:
            self._pop_tail(self._tokens, token_id, position)
        self._pop_tail(self._users, user_id, position)

    def append_record(
        self,
        verdict: Correctness,
        keywords: Iterable[str],
        tokens: Iterable[str],
        user: str,
    ) -> int:
        """Index the next record from string terms (interned here)."""
        vocabs = self.vocabularies
        return self.append_ids(
            verdict,
            [vocabs.keywords.intern(keyword) for keyword in keywords],
            [vocabs.tokens.intern(token) for token in tokens],
            vocabs.users.intern(user),
        )

    def pop_record(
        self,
        verdict: Correctness,
        keywords: Iterable[str],
        tokens: Iterable[str],
        user: str,
    ) -> None:
        """Un-index the last record from string terms.  Unknown terms
        raise ``KeyError`` — the caller must pass exactly the terms the
        record was indexed with."""
        vocabs = self.vocabularies

        def known(vocab, term):
            term_id = vocab.id_of(term)
            if term_id is None:
                raise KeyError(term)
            return term_id

        self.pop_ids(
            verdict,
            [known(vocabs.keywords, keyword) for keyword in keywords],
            [known(vocabs.tokens, token) for token in tokens],
            known(vocabs.users, user),
        )

    @staticmethod
    def _postings(index: dict, term) -> PostingList:
        postings = index.get(term)
        if postings is None:
            postings = index[term] = PostingList()
        return postings

    @staticmethod
    def _pop_tail(index: dict, term, position: int) -> None:
        postings = index[term]
        popped = postings.pop()
        if popped != position:
            raise AssertionError(
                f"posting tail for {term!r} was {popped}, expected {position}"
            )
        if not postings:
            del index[term]  # keep DF queries exact after eviction

    # ------------------------------------------------------------- queries

    def verdict_at(self, position: int) -> Correctness:
        """The verdict of the record at ``position`` — O(1), no record read."""
        return VERDICT_FOR_CODE[self._verdict_codes[position]]

    def is_correct(self, position: int) -> bool:
        """True when the record at ``position`` is verdict-CORRECT."""
        return self._verdict_codes[position] == CORRECT_CODE

    def verdict_postings(self, verdict: Correctness) -> PostingList | None:
        return self._by_verdict.get(verdict)

    def verdict_positions(self, verdict: Correctness) -> tuple[int, ...]:
        postings = self._by_verdict.get(verdict)
        return postings.positions() if postings is not None else ()

    def iter_verdict_positions(self, verdict: Correctness) -> Iterator[int]:
        postings = self._by_verdict.get(verdict)
        return iter(postings) if postings is not None else iter(())

    def verdict_counts(self) -> dict[Correctness, int]:
        """Document frequency of every verdict currently present."""
        return {verdict: len(postings) for verdict, postings in self._by_verdict.items()}

    def keyword_postings(self, keyword: str) -> PostingList | None:
        keyword_id = self.vocabularies.keywords.id_of(keyword)
        return self._keywords.get(keyword_id) if keyword_id is not None else None

    def token_postings(self, token: str) -> PostingList | None:
        token_id = self.vocabularies.tokens.id_of(token)
        return self._tokens.get(token_id) if token_id is not None else None

    def user_postings(self, user: str) -> PostingList | None:
        user_id = self.vocabularies.users.id_of(user)
        return self._users.get(user_id) if user_id is not None else None

    def keyword_positions(self, keyword: str) -> tuple[int, ...]:
        postings = self.keyword_postings(keyword)
        return postings.positions() if postings is not None else ()

    def iter_keyword_positions(self, keyword: str) -> Iterator[int]:
        postings = self.keyword_postings(keyword)
        return iter(postings) if postings is not None else iter(())

    def token_positions(self, token: str) -> tuple[int, ...]:
        postings = self.token_postings(token)
        return postings.positions() if postings is not None else ()

    def iter_token_positions(self, token: str) -> Iterator[int]:
        postings = self.token_postings(token)
        return iter(postings) if postings is not None else iter(())

    def user_positions(self, user: str) -> tuple[int, ...]:
        postings = self.user_postings(user)
        return postings.positions() if postings is not None else ()

    def iter_user_positions(self, user: str) -> Iterator[int]:
        postings = self.user_postings(user)
        return iter(postings) if postings is not None else iter(())

    def user_df(self, user: str) -> int:
        """Number of records by ``user`` currently held (0 when none)."""
        postings = self.user_postings(user)
        return len(postings) if postings is not None else 0

    def users(self) -> list[str]:
        """Names of every user with at least one record, unsorted."""
        terms = self.vocabularies.users.terms
        return [terms[user_id] for user_id in self._users]

    def user_verdict_count(self, user: str, verdict: Correctness) -> int:
        """Records by ``user`` carrying ``verdict`` — a streaming
        galloping intersection of the two posting runs (both sides are
        posting lists here, so there is no dense oracle to test
        against; the user run drives, the verdict run is skipped)."""
        user_postings = self.user_postings(user)
        verdict_postings = self._by_verdict.get(verdict)
        if user_postings is None or verdict_postings is None:
            return 0
        return intersect_count(user_postings, verdict_postings)

    def accumulate_correct_keyword_positions(
        self, keyword: str, counts: dict[int, int]
    ) -> None:
        """Bump ``counts`` for every verdict-CORRECT posting of
        ``keyword`` — the keyword run streams off its gaps and the
        verdict-code column acts as the dense CORRECT-side of the
        intersection (O(1) per posting, no tuples)."""
        postings = self.keyword_postings(keyword)
        if postings is None:
            return
        codes = self._verdict_codes
        position = 0
        get = counts.get
        for gap in postings._gaps:
            position += gap
            if codes[position] == CORRECT_CODE:
                counts[position] = get(position, 0) + 1

    def keyword_df(self, keyword: str) -> int:
        """Document frequency of ``keyword`` (0 when unseen)."""
        postings = self.keyword_postings(keyword)
        return len(postings) if postings is not None else 0

    def token_df(self, token: str) -> int:
        """Document frequency of ``token`` (0 when unseen)."""
        postings = self.token_postings(token)
        return len(postings) if postings is not None else 0

    # -------------------------------------------------------------- tiers

    def is_capped_token(self, token: str) -> bool:
        """True when ``token`` sits in the stopword (capped-DF) tier."""
        cap = self.config.stopword_df_cap
        return cap is not None and self.token_df(token) > cap

    def split_tokens(self, tokens: Iterable[str]) -> tuple[list[str], list[str]]:
        """Partition query tokens into (rare, capped) tiers, rarest first.

        Tokens absent from the index are dropped — their postings are
        empty, they cannot contribute candidates.  Both halves are
        ordered by ascending document frequency (ties broken
        lexicographically) so retrieval is deterministic and
        rare-term-first: the cheapest, highest-signal postings are
        walked before any early cut can trigger.
        """
        cap = self.config.stopword_df_cap
        rare: list[tuple[int, str]] = []
        capped: list[tuple[int, str]] = []
        for token in set(tokens):
            df = self.token_df(token)
            if df == 0:
                continue
            (capped if cap is not None and df > cap else rare).append((df, token))
        rare.sort()
        capped.sort()
        return [token for _, token in rare], [token for _, token in capped]

    # ---------------------------------------------------------- diagnostics

    def stats(self) -> dict[str, int]:
        """Index-size diagnostics (terms, postings, compacted payload bytes)."""
        families = (self._by_verdict, self._keywords, self._tokens, self._users)
        return {
            "records": len(self._verdict_codes),
            "terms": sum(len(index) for index in families),
            "postings": sum(
                len(postings) for index in families for postings in index.values()
            ),
            "payload_bytes": len(self._verdict_codes)
            + sum(postings.nbytes() for index in families for postings in index.values()),
            "capped_tokens": sum(
                1
                for postings in self._tokens.values()
                if self.config.stopword_df_cap is not None
                and len(postings) > self.config.stopword_df_cap
            ),
        }
