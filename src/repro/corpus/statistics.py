"""The Learning Statistic Analyzer (Figure 3).

"The statistical analyzer then records, classifies, analyzes the learners'
dialogue" — so instructors can see the route of mistakes students make
(section 5) and "revise or enhance their content of teaching materials".
Aggregations are per user, per error class, and per ontology topic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .records import Correctness, CorpusRecord
from .store import LearnerCorpus


@dataclass(frozen=True, slots=True)
class UserReport:
    """Per-learner activity and mistake profile."""

    user: str
    messages: int
    correct: int
    syntax_errors: int
    semantic_errors: int
    questions: int
    common_mistakes: tuple[tuple[str, int], ...]
    topics: tuple[tuple[str, int], ...]

    @property
    def accuracy(self) -> float:
        """Share of non-question messages that were fully correct."""
        statements = self.messages - self.questions
        return self.correct / statements if statements else 1.0


@dataclass(frozen=True, slots=True)
class CorpusReport:
    """Whole-corpus aggregation for the instructor."""

    messages: int
    verdict_counts: tuple[tuple[str, int], ...]
    error_kind_counts: tuple[tuple[str, int], ...]
    topic_counts: tuple[tuple[str, int], ...]
    pattern_counts: tuple[tuple[str, int], ...]
    users: tuple[UserReport, ...] = field(default_factory=tuple)


class StatisticAnalyzer:
    """Aggregates a :class:`LearnerCorpus` into instructor reports."""

    def __init__(self, corpus: LearnerCorpus) -> None:
        self.corpus = corpus

    def user_report(self, user: str) -> UserReport:
        records = self.corpus.by_user(user)
        return _build_user_report(user, records)

    def report(self) -> CorpusReport:
        records = self.corpus.records()
        # Verdict tallies come straight off the index's per-verdict
        # document frequencies; the detail counters below still need the
        # one full pass over the records.
        verdicts = Counter(
            {
                verdict.value: count
                for verdict, count in self.corpus.verdict_counts().items()
            }
        )
        error_kinds: Counter[str] = Counter()
        topics: Counter[str] = Counter()
        patterns = Counter(record.pattern for record in records)
        for record in records:
            for kind, _word in record.syntax_issues:
                error_kinds[kind] += 1
            if record.semantic_issues:
                error_kinds["semantic-violation"] += len(record.semantic_issues)
            for keyword in record.keywords:
                topics[keyword] += 1
        users = sorted({record.user for record in records})
        return CorpusReport(
            messages=len(records),
            verdict_counts=tuple(sorted(verdicts.items())),
            error_kind_counts=tuple(error_kinds.most_common()),
            topic_counts=tuple(topics.most_common()),
            pattern_counts=tuple(sorted(patterns.items())),
            users=tuple(
                _build_user_report(user, self.corpus.by_user(user)) for user in users
            ),
        )

    def most_common_mistakes(self, limit: int = 5) -> list[tuple[str, int]]:
        """The most frequent (error kind, count) pairs across the corpus."""
        counts: Counter[str] = Counter()
        for record in self.corpus.records():
            for kind, _word in record.syntax_issues:
                counts[kind] += 1
            for _note in record.semantic_issues:
                counts["semantic-violation"] += 1
        return counts.most_common(limit)

    def struggling_users(self, minimum_messages: int = 3) -> list[UserReport]:
        """Learners sorted by ascending accuracy (worst first)."""
        reports = [
            report
            for report in self.report().users
            if report.messages >= minimum_messages
        ]
        reports.sort(key=lambda r: (r.accuracy, r.user))
        return reports


def _build_user_report(user: str, records: list[CorpusRecord]) -> UserReport:
    mistakes: Counter[str] = Counter()
    topics: Counter[str] = Counter()
    for record in records:
        for kind, _word in record.syntax_issues:
            mistakes[kind] += 1
        for _note in record.semantic_issues:
            mistakes["semantic-violation"] += 1
        for keyword in record.keywords:
            topics[keyword] += 1
    return UserReport(
        user=user,
        messages=len(records),
        correct=sum(1 for r in records if r.verdict == Correctness.CORRECT),
        syntax_errors=sum(1 for r in records if r.verdict == Correctness.SYNTAX_ERROR),
        semantic_errors=sum(1 for r in records if r.verdict == Correctness.SEMANTIC_ERROR),
        questions=sum(1 for r in records if r.verdict == Correctness.QUESTION),
        common_mistakes=tuple(mistakes.most_common(5)),
        topics=tuple(topics.most_common(5)),
    )
