"""The Learning Statistic Analyzer (Figure 3).

"The statistical analyzer then records, classifies, analyzes the learners'
dialogue" — so instructors can see the route of mistakes students make
(section 5) and "revise or enhance their content of teaching materials".
Aggregations are per user, per error class, and per ontology topic.

The analyzer reads the corpus **columnar**: error kinds, topics and
patterns tally straight off the record store's interned id runs (one
flat scan, no record objects), per-verdict totals come off the index's
document frequencies, and the per-user verdict tallies are streaming
galloping intersections of the user postings against the verdict
postings (:func:`~repro.corpus.index.intersect_count`) — both sides are
posting lists there, so skip-table seeks replace per-record reads.
Counter insertion order follows record order exactly as the old
record-object scan did, so ``most_common`` tie-breaking is unchanged.

The same calls are tier-transparent over a
:class:`~repro.corpus.segments.SegmentedCorpus`: the flat id-run scans
iterate each frozen segment's mmapped columns in place and then the
in-RAM tail, and the galloping intersections run over spliced cross-tier
posting iterators — statistics over a million-record corpus never pull a
frozen segment onto the heap (the 3-way parity sweep in
``tests/corpus/test_columnar_parity.py`` pins the outputs identical).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .records import Correctness
from .store import LearnerCorpus


@dataclass(frozen=True, slots=True)
class UserReport:
    """Per-learner activity and mistake profile."""

    user: str
    messages: int
    correct: int
    syntax_errors: int
    semantic_errors: int
    questions: int
    common_mistakes: tuple[tuple[str, int], ...]
    topics: tuple[tuple[str, int], ...]

    @property
    def accuracy(self) -> float:
        """Share of non-question messages that were fully correct."""
        statements = self.messages - self.questions
        return self.correct / statements if statements else 1.0


@dataclass(frozen=True, slots=True)
class CorpusReport:
    """Whole-corpus aggregation for the instructor."""

    messages: int
    verdict_counts: tuple[tuple[str, int], ...]
    error_kind_counts: tuple[tuple[str, int], ...]
    topic_counts: tuple[tuple[str, int], ...]
    pattern_counts: tuple[tuple[str, int], ...]
    users: tuple[UserReport, ...] = field(default_factory=tuple)


class StatisticAnalyzer:
    """Aggregates a :class:`LearnerCorpus` into instructor reports."""

    def __init__(self, corpus: LearnerCorpus) -> None:
        self.corpus = corpus

    def user_report(self, user: str) -> UserReport:
        return _build_user_report(self.corpus, user)

    def report(self) -> CorpusReport:
        corpus = self.corpus
        columns = corpus.columns
        # Verdict tallies come straight off the index's per-verdict
        # document frequencies; the detail counters below are one flat
        # pass over the interned id runs — decoded per occurrence, so
        # Counter insertion order (and therefore most_common tie order)
        # matches the record-order scan it replaces.
        verdicts = Counter(
            {
                verdict.value: count
                for verdict, count in corpus.verdict_counts().items()
            }
        )
        error_kinds: Counter[str] = Counter()
        topics: Counter[str] = Counter()
        kind_terms = columns.vocabs.issue_kinds.terms
        topic_terms = columns.vocabs.raw_keywords.terms
        pattern_terms = columns.vocabs.patterns.terms
        patterns = Counter(
            pattern_terms[columns.pattern_id_at(position)]
            for position in range(len(corpus))
        )
        for position in range(len(corpus)):
            for kind_id in columns.issue_kind_id_run(position):
                error_kinds[kind_terms[kind_id]] += 1
            note_count = columns.note_count(position)
            if note_count:
                error_kinds["semantic-violation"] += note_count
            for topic_id in columns.raw_keyword_id_run(position):
                topics[topic_terms[topic_id]] += 1
        users = sorted(corpus.index.users())
        return CorpusReport(
            messages=len(corpus),
            verdict_counts=tuple(sorted(verdicts.items())),
            error_kind_counts=tuple(error_kinds.most_common()),
            topic_counts=tuple(topics.most_common()),
            pattern_counts=tuple(sorted(patterns.items())),
            users=tuple(_build_user_report(corpus, user) for user in users),
        )

    def most_common_mistakes(self, limit: int = 5) -> list[tuple[str, int]]:
        """The most frequent (error kind, count) pairs across the corpus."""
        corpus = self.corpus
        columns = corpus.columns
        kind_terms = columns.vocabs.issue_kinds.terms
        counts: Counter[str] = Counter()
        for position in range(len(corpus)):
            for kind_id in columns.issue_kind_id_run(position):
                counts[kind_terms[kind_id]] += 1
            note_count = columns.note_count(position)
            if note_count:
                # Guarded bump: Counter insertion order is what breaks
                # most_common ties, and the old record scan only created
                # this key on the first record that carried notes.
                counts["semantic-violation"] += note_count
        return counts.most_common(limit)

    def struggling_users(self, minimum_messages: int = 3) -> list[UserReport]:
        """Learners sorted by ascending accuracy (worst first)."""
        reports = [
            report
            for report in self.report().users
            if report.messages >= minimum_messages
        ]
        reports.sort(key=lambda r: (r.accuracy, r.user))
        return reports


def _build_user_report(corpus: LearnerCorpus, user: str) -> UserReport:
    index = corpus.index
    columns = corpus.columns
    kind_terms = columns.vocabs.issue_kinds.terms
    topic_terms = columns.vocabs.raw_keywords.terms
    mistakes: Counter[str] = Counter()
    topics: Counter[str] = Counter()
    for position in index.iter_user_positions(user):
        for kind_id in columns.issue_kind_id_run(position):
            mistakes[kind_terms[kind_id]] += 1
        note_count = columns.note_count(position)
        if note_count:
            # Guarded bump: keeps Counter insertion order (most_common
            # tie-breaking) identical to the old record-object scan.
            mistakes["semantic-violation"] += note_count
        for topic_id in columns.raw_keyword_id_run(position):
            topics[topic_terms[topic_id]] += 1
    return UserReport(
        user=user,
        messages=index.user_df(user),
        correct=index.user_verdict_count(user, Correctness.CORRECT),
        syntax_errors=index.user_verdict_count(user, Correctness.SYNTAX_ERROR),
        semantic_errors=index.user_verdict_count(user, Correctness.SEMANTIC_ERROR),
        questions=index.user_verdict_count(user, Correctness.QUESTION),
        common_mistakes=tuple(mistakes.most_common(5)),
        topics=tuple(topics.most_common(5)),
    )
