"""Learner Corpus database: columnar record store, interned
vocabularies, index subsystem, suggestion search, statistics,
generation, and the pre-columnar differential reference."""

from .generator import GENERATOR_USER, CorporaGenerator
from .index import CorpusIndex, IndexConfig, PostingList, intersect_count, intersect_iter
from .records import (
    Correctness,
    CorpusRecord,
    CorpusVocabularies,
    RecordStore,
    RecordView,
    Vocabulary,
)
from .search import SuggestionHit, SuggestionSearch
from .statistics import CorpusReport, StatisticAnalyzer, UserReport
from .store import LearnerCorpus

__all__ = [
    "GENERATOR_USER",
    "CorporaGenerator",
    "Correctness",
    "CorpusIndex",
    "CorpusRecord",
    "CorpusReport",
    "CorpusVocabularies",
    "IndexConfig",
    "LearnerCorpus",
    "PostingList",
    "RecordStore",
    "RecordView",
    "StatisticAnalyzer",
    "SuggestionHit",
    "SuggestionSearch",
    "UserReport",
    "Vocabulary",
    "intersect_count",
    "intersect_iter",
]
