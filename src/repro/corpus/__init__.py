"""Learner Corpus database, suggestion search, statistics, generation."""

from .generator import GENERATOR_USER, CorporaGenerator
from .records import Correctness, CorpusRecord
from .search import SuggestionHit, SuggestionSearch
from .statistics import CorpusReport, StatisticAnalyzer, UserReport
from .store import LearnerCorpus

__all__ = [
    "GENERATOR_USER",
    "CorporaGenerator",
    "Correctness",
    "CorpusRecord",
    "CorpusReport",
    "LearnerCorpus",
    "StatisticAnalyzer",
    "SuggestionHit",
    "SuggestionSearch",
    "UserReport",
]
