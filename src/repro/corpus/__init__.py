"""Learner Corpus database, index subsystem, suggestion search,
statistics, generation."""

from .generator import GENERATOR_USER, CorporaGenerator
from .index import CorpusIndex, IndexConfig, PostingList
from .records import Correctness, CorpusRecord
from .search import SuggestionHit, SuggestionSearch
from .statistics import CorpusReport, StatisticAnalyzer, UserReport
from .store import LearnerCorpus

__all__ = [
    "GENERATOR_USER",
    "CorporaGenerator",
    "Correctness",
    "CorpusIndex",
    "CorpusRecord",
    "CorpusReport",
    "IndexConfig",
    "LearnerCorpus",
    "PostingList",
    "StatisticAnalyzer",
    "SuggestionHit",
    "SuggestionSearch",
    "UserReport",
]
