"""Learner Corpus database: columnar record store, interned
vocabularies, index subsystem, suggestion search, statistics,
generation, and the pre-columnar differential reference."""

from .generator import GENERATOR_USER, CorporaGenerator
from .index import CorpusIndex, IndexConfig, PostingList, intersect_count, intersect_iter
from .records import (
    Correctness,
    CorpusRecord,
    CorpusVocabularies,
    RecordStore,
    RecordView,
    Vocabulary,
)
from .search import SuggestionHit, SuggestionSearch
from .segments import (
    FrozenSegment,
    FrozenTailError,
    SegmentLoadError,
    SegmentWriter,
    SegmentedCorpus,
    TieredPostings,
    intersect_tiered_count,
    intersect_tiered_iter,
    union_tiered_iter,
    validate_segment_file,
)
from .statistics import CorpusReport, StatisticAnalyzer, UserReport
from .store import LearnerCorpus

__all__ = [
    "GENERATOR_USER",
    "CorporaGenerator",
    "Correctness",
    "CorpusIndex",
    "CorpusRecord",
    "CorpusReport",
    "CorpusVocabularies",
    "FrozenSegment",
    "FrozenTailError",
    "IndexConfig",
    "LearnerCorpus",
    "PostingList",
    "RecordStore",
    "RecordView",
    "SegmentLoadError",
    "SegmentWriter",
    "SegmentedCorpus",
    "StatisticAnalyzer",
    "SuggestionHit",
    "SuggestionSearch",
    "TieredPostings",
    "UserReport",
    "Vocabulary",
    "intersect_count",
    "intersect_iter",
    "intersect_tiered_count",
    "intersect_tiered_iter",
    "union_tiered_iter",
    "validate_segment_file",
]
