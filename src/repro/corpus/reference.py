"""Pre-columnar reference corpus: the differential-testing baseline.

This module preserves, in its simplest possible form, the **object-record
storage model** the columnar :class:`~repro.corpus.store.LearnerCorpus`
replaced: one :class:`CorpusRecord` Python object per utterance, per-record
``frozenset`` token/keyword caches, and plain ``dict[str, list[int]]``
posting maps whose reads decode to tuples.  It exists for three reasons:

* **Executable specification** — ``tests/corpus/test_columnar_parity.py``
  drives randomized ingest/evict/fork/merge/query workloads through this
  store and the columnar store side by side and asserts identical
  records, postings, DFs, tier assignments, suggestion results and
  statistics.  Behavioural intent lives here in ~300 obvious lines; the
  columnar code is "fast mode" of the same semantics.
* **Memory baseline** — the ``corpus_memory`` bench workload prices
  bytes/record of this layout against the columnar layout.
* **Latency baseline** — :class:`ReferenceSuggestionSearch` is the
  tuple-decoding retrieval path; the bench gates the streaming
  implementation's latency against it.

Semantics match the current contract, including the suggestion-search
rule that the query's own previously-ingested sentence never consumes
candidate budget on either tier.  Do not optimise this module: its value
is being obviously equivalent to the documented contract.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from repro.linkgrammar.tokenizer import tokenize

from .index import IndexConfig
from .records import Correctness, CorpusRecord
from .statistics import CorpusReport, UserReport


class ReferenceCorpus:
    """Object-record learner corpus with list-of-int posting maps."""

    def __init__(self, index_config: IndexConfig | None = None) -> None:
        self.config = index_config if index_config is not None else IndexConfig()
        self._records: list[CorpusRecord] = []
        self._token_sets: list[frozenset[str]] = []
        self._keyword_sets: list[frozenset[str]] = []
        self._tokens: dict[str, list[int]] = {}
        self._keywords: dict[str, list[int]] = {}
        self._users: dict[str, list[int]] = {}
        self._by_verdict: dict[Correctness, list[int]] = {}
        self._merge_floor: int | None = None
        self._merge_keys: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CorpusRecord]:
        return iter(self._records)

    # ------------------------------------------------------------- writing

    def next_id(self) -> int:
        return len(self._records)

    def add(
        self, record: CorpusRecord, tokens: tuple[str, ...] | None = None
    ) -> CorpusRecord:
        token_set = (
            frozenset(tokens) if tokens is not None else frozenset(tokenize(record.text).words)
        )
        return self._ingest(record, token_set)

    def _ingest(self, record: CorpusRecord, token_set: frozenset[str]) -> CorpusRecord:
        position = len(self._records)
        self._records.append(record)
        self._token_sets.append(token_set)
        keywords = frozenset(k.lower() for k in record.keywords)
        self._keyword_sets.append(keywords)
        for token in token_set:
            self._tokens.setdefault(token, []).append(position)
        for keyword in keywords:
            self._keywords.setdefault(keyword, []).append(position)
        self._users.setdefault(record.user, []).append(position)
        self._by_verdict.setdefault(record.verdict, []).append(position)
        return record

    def _evict_tail(self, floor: int) -> None:
        while len(self._records) > floor:
            position = len(self._records) - 1
            record = self._records.pop()
            token_set = self._token_sets.pop()
            keywords = self._keyword_sets.pop()
            for index, terms in (
                (self._tokens, token_set),
                (self._keywords, keywords),
                (self._users, (record.user,)),
                (self._by_verdict, (record.verdict,)),
            ):
                for term in terms:
                    postings = index[term]
                    assert postings.pop() == position
                    if not postings:
                        del index[term]

    # ------------------------------------------------------------- queries

    def records(self) -> list[CorpusRecord]:
        return list(self._records)

    def filter(self, predicate) -> list[CorpusRecord]:
        return [record for record in self._records if predicate(record)]

    def by_user(self, user: str) -> list[CorpusRecord]:
        return [self._records[i] for i in self._users.get(user, ())]

    def by_verdict(self, verdict: Correctness) -> list[CorpusRecord]:
        return [self._records[i] for i in self._by_verdict.get(verdict, ())]

    def correct_records(self) -> list[CorpusRecord]:
        return self.by_verdict(Correctness.CORRECT)

    def with_keyword(self, keyword: str) -> list[CorpusRecord]:
        return [self._records[i] for i in self._keywords.get(keyword.lower(), ())]

    def verdict_counts(self) -> dict[Correctness, int]:
        return {verdict: len(postings) for verdict, postings in self._by_verdict.items()}

    def record_at(self, position: int) -> CorpusRecord:
        return self._records[position]

    def text_at(self, position: int) -> str:
        return self._records[position].text

    def is_correct(self, position: int) -> bool:
        return self._records[position].verdict is Correctness.CORRECT

    def verdict_at(self, position: int) -> Correctness:
        return self._records[position].verdict

    def keyword_positions(self, keyword: str) -> tuple[int, ...]:
        return tuple(self._keywords.get(keyword.lower(), ()))

    def token_positions(self, token: str) -> tuple[int, ...]:
        return tuple(self._tokens.get(token, ()))

    def user_positions(self, user: str) -> tuple[int, ...]:
        return tuple(self._users.get(user, ()))

    def token_set(self, position: int) -> frozenset[str]:
        return self._token_sets[position]

    def keyword_set(self, position: int) -> frozenset[str]:
        return self._keyword_sets[position]

    def token_df(self, token: str) -> int:
        return len(self._tokens.get(token, ()))

    def keyword_df(self, keyword: str) -> int:
        return len(self._keywords.get(keyword, ()))

    def is_capped_token(self, token: str) -> bool:
        cap = self.config.stopword_df_cap
        return cap is not None and self.token_df(token) > cap

    def split_tokens(self, tokens) -> tuple[list[str], list[str]]:
        cap = self.config.stopword_df_cap
        rare: list[tuple[int, str]] = []
        capped: list[tuple[int, str]] = []
        for token in set(tokens):
            df = self.token_df(token)
            if df == 0:
                continue
            (capped if cap is not None and df > cap else rare).append((df, token))
        rare.sort()
        capped.sort()
        return [token for _, token in rare], [token for _, token in capped]

    # -------------------------------------------------- partition and merge

    def fork(self) -> "ReferenceReplica":
        return ReferenceReplica(self)

    def merge(self, replica: "ReferenceReplica") -> int:
        floor = replica.base_len
        if floor > len(self._records):
            raise ValueError("replica forked past the corpus tail")
        if self._merge_floor != floor:
            self._merge_floor = floor
            self._merge_keys = []
        tail = [
            (key, self._records[floor + offset], self._token_sets[floor + offset])
            for offset, key in enumerate(self._merge_keys)
        ]
        merged = len(replica.pending)
        tail.extend(replica.pending)
        tail.sort(key=lambda entry: entry[0])
        self._evict_tail(floor)
        for _key, record, token_set in tail:
            record.record_id = len(self._records)
            self._ingest(record, token_set)
        self._merge_keys = [entry[0] for entry in tail]
        return merged

    def snapshot(self) -> tuple[dict, ...]:
        return tuple(record.to_dict() for record in self._records)

    # --------------------------------------------------------- diagnostics

    def memory_bytes(self) -> int:
        """Deep heap footprint of the object-record layout (bench
        baseline): records with their field objects, the frozenset
        caches, and the boxed-int posting maps.  Shared objects are
        counted once (id-dedup)."""
        from sys import getsizeof

        seen: set[int] = set()

        def deep(obj) -> int:
            if id(obj) in seen:
                return 0
            seen.add(id(obj))
            total = getsizeof(obj)
            if isinstance(obj, dict):
                total += sum(deep(key) + deep(value) for key, value in obj.items())
            elif isinstance(obj, (list, tuple, set, frozenset)):
                total += sum(deep(item) for item in obj)
            elif isinstance(obj, CorpusRecord):
                total += sum(
                    deep(getattr(obj, name)) for name in (
                        "record_id", "user", "room", "text", "timestamp", "pattern",
                        "syntax_issues", "semantic_issues", "keywords", "links", "cost",
                    )
                )
            return total

        return deep(
            (
                self._records,
                self._token_sets,
                self._keyword_sets,
                self._tokens,
                self._keywords,
                self._users,
                self._by_verdict,
            )
        )


class ReferenceReplica:
    """Shard replica over a :class:`ReferenceCorpus` (buffered appends)."""

    def __init__(self, base: ReferenceCorpus) -> None:
        self._base = base
        self.base_len = len(base)
        self.pending: list[tuple[tuple[int, int], CorpusRecord, frozenset[str]]] = []
        self._origin_seq = 0
        self._origin_n = 0

    def begin_origin(self, seq: int) -> None:
        self._origin_seq = seq
        self._origin_n = 0

    def rebase(self) -> None:
        self.pending = []
        self.base_len = len(self._base)

    def next_id(self) -> int:
        return self.base_len + len(self.pending)

    def add(
        self, record: CorpusRecord, tokens: tuple[str, ...] | None = None
    ) -> CorpusRecord:
        token_set = (
            frozenset(tokens) if tokens is not None else frozenset(tokenize(record.text).words)
        )
        self.pending.append(((self._origin_seq, self._origin_n), record, token_set))
        self._origin_n += 1
        return record

    def __len__(self) -> int:
        return self.base_len + len(self.pending)

    def __getattr__(self, name: str):
        return getattr(self._base, name)


class ReferenceSuggestionSearch:
    """Tuple-decoding suggestion search over a :class:`ReferenceCorpus`.

    Same retrieval contract as the streaming
    :class:`~repro.corpus.search.SuggestionSearch` — keyword floor,
    rare-first union, capped-tier skip, budgeted fallback with the
    self-match exclusion — expressed over decoded posting tuples and
    per-record frozensets.
    """

    def __init__(self, corpus: ReferenceCorpus, max_candidates: int = 512) -> None:
        self.corpus = corpus
        self.max_candidates = max_candidates

    def find(self, text, keywords=None, limit: int = 3, min_keyword_overlap: float = 0.0):
        sentence = tokenize(text) if isinstance(text, str) else text
        query_tokens = frozenset(sentence.words)
        query_raw = sentence.raw.strip().lower()
        query_keywords = frozenset(k.lower() for k in (keywords or []))
        corpus = self.corpus
        hits = []
        for position in self._candidates(
            query_tokens, query_keywords, min_keyword_overlap, query_raw
        ):
            record = corpus.record_at(position)
            if record.text.strip().lower() == query_raw:
                continue
            keyword_overlap = _jaccard(query_keywords, corpus.keyword_set(position))
            if query_keywords and keyword_overlap < min_keyword_overlap:
                continue
            token_overlap = _jaccard(query_tokens, corpus.token_set(position))
            if keyword_overlap == 0.0 and token_overlap == 0.0:
                continue
            hits.append((record, keyword_overlap, token_overlap))
        hits.sort(key=lambda hit: (-hit[1], -hit[2], hit[0].record_id))
        return hits[:limit]

    def _candidates(self, query_tokens, query_keywords, min_keyword_overlap, query_raw=""):
        corpus = self.corpus
        is_correct = corpus.is_correct
        shared_counts: dict[int, int] = {}

        def accumulate(positions) -> None:
            for position in positions:
                shared_counts[position] = shared_counts.get(position, 0) + 1

        if query_keywords and min_keyword_overlap > 0.0:
            for keyword in sorted(query_keywords):
                accumulate(corpus.keyword_positions(keyword))
        else:
            rare_tokens, capped_tokens = corpus.split_tokens(query_tokens)
            for token in rare_tokens:
                accumulate(corpus.token_positions(token))
            for keyword in sorted(query_keywords):
                accumulate(corpus.keyword_positions(keyword))
            if capped_tokens and not any(
                is_correct(position)
                and corpus.text_at(position).strip().lower() != query_raw
                for position in shared_counts
            ):
                budget = self.max_candidates
                for token in capped_tokens:
                    for position in corpus.token_positions(token):
                        seen = shared_counts.get(position, 0)
                        shared_counts[position] = seen + 1
                        if not seen and is_correct(position):
                            if (
                                query_raw
                                and corpus.text_at(position).strip().lower() == query_raw
                            ):
                                continue
                            budget -= 1
                            if budget == 0:
                                break
                    else:
                        continue
                    break
        candidates = [position for position in shared_counts if is_correct(position)]
        if len(candidates) > self.max_candidates and query_raw:
            candidates = [
                position
                for position in candidates
                if corpus.text_at(position).strip().lower() != query_raw
            ]
        if len(candidates) > self.max_candidates:
            candidates.sort(key=lambda position: (-shared_counts[position], position))
            candidates = candidates[: self.max_candidates]
        candidates.sort()
        return candidates


def _jaccard(a, b) -> float:
    if not a and not b:
        return 0.0
    union = a | b
    return len(a & b) / len(union) if union else 0.0


def reference_report(corpus: ReferenceCorpus) -> CorpusReport:
    """The statistic analyzer's whole-corpus report, computed the
    pre-columnar way (record-object scans) — the oracle the columnar
    :class:`~repro.corpus.statistics.StatisticAnalyzer` is compared to."""
    records = corpus.records()
    verdicts = Counter(
        {verdict.value: count for verdict, count in corpus.verdict_counts().items()}
    )
    error_kinds: Counter[str] = Counter()
    topics: Counter[str] = Counter()
    patterns = Counter(record.pattern for record in records)
    for record in records:
        for kind, _word in record.syntax_issues:
            error_kinds[kind] += 1
        if record.semantic_issues:
            error_kinds["semantic-violation"] += len(record.semantic_issues)
        for keyword in record.keywords:
            topics[keyword] += 1
    users = sorted({record.user for record in records})
    return CorpusReport(
        messages=len(records),
        verdict_counts=tuple(sorted(verdicts.items())),
        error_kind_counts=tuple(error_kinds.most_common()),
        topic_counts=tuple(topics.most_common()),
        pattern_counts=tuple(sorted(patterns.items())),
        users=tuple(reference_user_report(corpus, user) for user in users),
    )


def reference_user_report(corpus: ReferenceCorpus, user: str) -> UserReport:
    """Per-user report, computed the pre-columnar way."""
    records = corpus.by_user(user)
    mistakes: Counter[str] = Counter()
    topics: Counter[str] = Counter()
    for record in records:
        for kind, _word in record.syntax_issues:
            mistakes[kind] += 1
        for _note in record.semantic_issues:
            mistakes["semantic-violation"] += 1
        for keyword in record.keywords:
            topics[keyword] += 1
    return UserReport(
        user=user,
        messages=len(records),
        correct=sum(1 for r in records if r.verdict == Correctness.CORRECT),
        syntax_errors=sum(1 for r in records if r.verdict == Correctness.SYNTAX_ERROR),
        semantic_errors=sum(1 for r in records if r.verdict == Correctness.SEMANTIC_ERROR),
        questions=sum(1 for r in records if r.verdict == Correctness.QUESTION),
        common_mistakes=tuple(mistakes.most_common(5)),
        topics=tuple(topics.most_common(5)),
    )
