"""Suggestion search over the learner corpus.

Section 4.2: when a grammar error is detected, the Label analysis & filter
"can also detect them and search for the suitable sentences from Learner
Corpus and convey them to the online learners".  We rank known-correct
corpus sentences by ontology-keyword overlap with the faulty sentence,
breaking ties by token overlap, so the learner sees a well-formed sentence
about the same topic.

Performance: the query used to re-tokenise every corpus record on every
search — O(corpus) tokenizer runs per syntax error.  Record token and
keyword sets are now cached at ingestion time by
:class:`~repro.corpus.store.LearnerCorpus`, and when the caller demands a
minimum keyword overlap the candidate scan narrows through the corpus's
inverted keyword index instead of walking every correct record.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linkgrammar.tokenizer import TokenizedSentence, tokenize

from .records import Correctness, CorpusRecord
from .store import LearnerCorpus


@dataclass(frozen=True, slots=True)
class SuggestionHit:
    """A candidate model sentence with its similarity scores."""

    record: CorpusRecord
    keyword_overlap: float
    token_overlap: float

    @property
    def score(self) -> tuple[float, float]:
        return (self.keyword_overlap, self.token_overlap)


def _jaccard(a: frozenset[str] | set[str], b: frozenset[str] | set[str]) -> float:
    if not a and not b:
        return 0.0
    union = a | b
    return len(a & b) / len(union) if union else 0.0


class SuggestionSearch:
    """Finds model sentences similar to a (possibly faulty) input."""

    def __init__(self, corpus: LearnerCorpus) -> None:
        self.corpus = corpus

    def find(
        self,
        text: str | TokenizedSentence,
        keywords: list[str] | None = None,
        limit: int = 3,
        min_keyword_overlap: float = 0.0,
    ) -> list[SuggestionHit]:
        """Rank correct corpus sentences by similarity to ``text``.

        Args:
            text: the learner's sentence, raw or pre-tokenised.
            keywords: ontology terms found in the sentence (optional; when
                omitted only token overlap ranks the results).
            limit: maximum number of hits.
            min_keyword_overlap: drop hits below this keyword similarity.
        """
        sentence = tokenize(text) if isinstance(text, str) else text
        query_tokens = frozenset(sentence.words)
        query_raw = sentence.raw.strip().lower()
        query_keywords = frozenset(k.lower() for k in (keywords or []))
        corpus = self.corpus
        hits: list[SuggestionHit] = []
        for position, record in self._candidates(query_keywords, min_keyword_overlap):
            if record.text.strip().lower() == query_raw:
                continue  # never suggest the sentence back to its author
            keyword_overlap = _jaccard(query_keywords, corpus.keyword_set(position))
            if query_keywords and keyword_overlap < min_keyword_overlap:
                continue
            token_overlap = _jaccard(query_tokens, corpus.token_set(position))
            if keyword_overlap == 0.0 and token_overlap == 0.0:
                continue
            hits.append(SuggestionHit(record, keyword_overlap, token_overlap))
        hits.sort(key=lambda hit: (-hit.keyword_overlap, -hit.token_overlap, hit.record.record_id))
        return hits[:limit]

    def _candidates(self, query_keywords: frozenset[str], min_keyword_overlap: float):
        """(position, record) candidates for the scan, in add order.

        With a positive keyword-overlap floor every surviving hit must
        share at least one keyword with the query, so the inverted index
        bounds the scan; otherwise every correct record is a candidate
        (token overlap alone may rank it).
        """
        corpus = self.corpus
        if query_keywords and min_keyword_overlap > 0.0:
            positions = sorted(
                {
                    position
                    for keyword in query_keywords
                    for position in corpus.keyword_positions(keyword)
                }
            )
            for position in positions:
                record = corpus.record_at(position)
                if record.verdict == Correctness.CORRECT:
                    yield position, record
        else:
            yield from corpus.correct_positions()

    def best_sentence(
        self, text: str | TokenizedSentence, keywords: list[str] | None = None
    ) -> str | None:
        """The single best model sentence, or None."""
        hits = self.find(text, keywords=keywords, limit=1)
        return hits[0].record.text if hits else None
