"""Suggestion search over the learner corpus.

Section 4.2: when a grammar error is detected, the Label analysis & filter
"can also detect them and search for the suitable sentences from Learner
Corpus and convey them to the online learners".  We rank known-correct
corpus sentences by ontology-keyword overlap with the faulty sentence,
breaking ties by token overlap, so the learner sees a well-formed sentence
about the same topic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linkgrammar.tokenizer import tokenize

from .records import CorpusRecord
from .store import LearnerCorpus


@dataclass(frozen=True, slots=True)
class SuggestionHit:
    """A candidate model sentence with its similarity scores."""

    record: CorpusRecord
    keyword_overlap: float
    token_overlap: float

    @property
    def score(self) -> tuple[float, float]:
        return (self.keyword_overlap, self.token_overlap)


def _jaccard(a: set[str], b: set[str]) -> float:
    if not a and not b:
        return 0.0
    union = a | b
    return len(a & b) / len(union) if union else 0.0


class SuggestionSearch:
    """Finds model sentences similar to a (possibly faulty) input."""

    def __init__(self, corpus: LearnerCorpus) -> None:
        self.corpus = corpus

    def find(
        self,
        text: str,
        keywords: list[str] | None = None,
        limit: int = 3,
        min_keyword_overlap: float = 0.0,
    ) -> list[SuggestionHit]:
        """Rank correct corpus sentences by similarity to ``text``.

        Args:
            text: the learner's sentence.
            keywords: ontology terms found in the sentence (optional; when
                omitted only token overlap ranks the results).
            limit: maximum number of hits.
            min_keyword_overlap: drop hits below this keyword similarity.
        """
        query_tokens = set(tokenize(text).words)
        query_keywords = {k.lower() for k in (keywords or [])}
        hits: list[SuggestionHit] = []
        for record in self.corpus.correct_records():
            if record.text.strip().lower() == text.strip().lower():
                continue  # never suggest the sentence back to its author
            record_keywords = {k.lower() for k in record.keywords}
            keyword_overlap = _jaccard(query_keywords, record_keywords)
            token_overlap = _jaccard(query_tokens, set(tokenize(record.text).words))
            if query_keywords and keyword_overlap < min_keyword_overlap:
                continue
            if keyword_overlap == 0.0 and token_overlap == 0.0:
                continue
            hits.append(SuggestionHit(record, keyword_overlap, token_overlap))
        hits.sort(key=lambda hit: (-hit.keyword_overlap, -hit.token_overlap, hit.record.record_id))
        return hits[:limit]

    def best_sentence(self, text: str, keywords: list[str] | None = None) -> str | None:
        """The single best model sentence, or None."""
        hits = self.find(text, keywords=keywords, limit=1)
        return hits[0].record.text if hits else None
