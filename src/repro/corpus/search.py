"""Suggestion search over the learner corpus.

Section 4.2: when a grammar error is detected, the Label analysis & filter
"can also detect them and search for the suitable sentences from Learner
Corpus and convey them to the online learners".  We rank known-correct
corpus sentences by ontology-keyword overlap with the faulty sentence,
breaking ties by token overlap, so the learner sees a well-formed sentence
about the same topic.

Performance: the query used to re-tokenise every corpus record on every
search — O(corpus) tokenizer runs per syntax error.  Today every
candidate scan is index-backed and **streaming**: posting runs
accumulate straight off their delta-encoded gap arrays
(:meth:`~repro.corpus.index.PostingList.accumulate_into` — no decoded
tuples), candidate verdicts are intersected against the index's flat
verdict-code column (a dense O(1) membership oracle), and record token /
keyword sets decode lazily from the columnar store's id runs only for
the candidates that actually get scored.

At the 10^5+ record scale the union itself becomes the cost: one "the"
in the query drags a near-corpus-length posting list through the union.
The :class:`~repro.corpus.index.CorpusIndex` therefore tiers tokens by
document frequency, and :meth:`SuggestionSearch._candidates` walks the
query's postings **rarest term first**, skipping the stopword (capped-DF)
tier entirely whenever the rare terms already produced candidates.  A
query made only of capped terms falls back to a budgeted walk of the
capped postings (early cut at ``max_candidates`` correct candidates —
the query's own previously-ingested sentence never consumes budget: it
can never be suggested, so counting it would starve the learner of the
suggestions the budget was meant to admit).  The retrieval contract —
exactly when results are exact vs bounded — is documented in
``docs/corpus.md``.

Since PR 9 the corpus may keep most of its records in mmap-backed disk
segments (:mod:`repro.corpus.segments`).  Search never notices: the
accumulate/intersect calls above go through posting facades that splice
the frozen segments' delta runs in front of the in-RAM tail, and
candidate token/keyword sets decode from whichever tier holds the row —
no segment is ever materialised into memory to serve a query.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linkgrammar.tokenizer import TokenizedSentence, tokenize

from .records import RecordView
from .store import LearnerCorpus


@dataclass(frozen=True, slots=True)
class SuggestionHit:
    """A candidate model sentence with its similarity scores."""

    record: RecordView
    keyword_overlap: float
    token_overlap: float

    @property
    def score(self) -> tuple[float, float]:
        return (self.keyword_overlap, self.token_overlap)


def _jaccard(a: frozenset[str] | set[str], b: frozenset[str] | set[str]) -> float:
    if not a and not b:
        return 0.0
    union = a | b
    return len(a & b) / len(union) if union else 0.0


class SuggestionSearch:
    """Finds model sentences similar to a (possibly faulty) input.

    Args:
        corpus: the learner corpus to search.
        max_candidates: upper bound on candidates fully scored per query.
            When the index retrieval exceeds it, candidates are ranked by
            how many query tokens/keywords they share (a cheap upper
            bound on the overlap scores) and only the best are scored —
            a bounded, deterministic approximation.  Results are exact
            whenever retrieval stays within the bound.
    """

    def __init__(self, corpus: LearnerCorpus, max_candidates: int = 512) -> None:
        self.corpus = corpus
        self.max_candidates = max_candidates

    def find(
        self,
        text: str | TokenizedSentence,
        keywords: list[str] | None = None,
        limit: int = 3,
        min_keyword_overlap: float = 0.0,
    ) -> list[SuggestionHit]:
        """Rank correct corpus sentences by similarity to ``text``.

        Args:
            text: the learner's sentence, raw or pre-tokenised.
            keywords: ontology terms found in the sentence (optional; when
                omitted only token overlap ranks the results).
            limit: maximum number of hits.
            min_keyword_overlap: drop hits below this keyword similarity.
        """
        sentence = tokenize(text) if isinstance(text, str) else text
        query_tokens = frozenset(sentence.words)
        query_raw = sentence.raw.strip().lower()
        query_keywords = frozenset(k.lower() for k in (keywords or []))
        # Bind the columnar accessors once: the scoring loop touches the
        # store per candidate, and the scored set can be max_candidates
        # long — lazy views are built only for the hits returned.
        store = self.corpus.columns
        text_at = store.text_at
        keyword_set = store.keyword_set
        token_set = store.token_set
        scored: list[tuple[float, float, int, int]] = []
        for position in self._candidates(
            query_tokens, query_keywords, min_keyword_overlap, query_raw
        ):
            if text_at(position).strip().lower() == query_raw:
                continue  # never suggest the sentence back to its author
            keyword_overlap = _jaccard(query_keywords, keyword_set(position))
            if query_keywords and keyword_overlap < min_keyword_overlap:
                continue
            token_overlap = _jaccard(query_tokens, token_set(position))
            if keyword_overlap == 0.0 and token_overlap == 0.0:
                continue
            scored.append(
                (-keyword_overlap, -token_overlap, store.record_id_at(position), position)
            )
        scored.sort()
        return [
            SuggestionHit(store.view(position), -neg_keyword, -neg_token)
            for neg_keyword, neg_token, _record_id, position in scored[:limit]
        ]

    def _candidates(
        self,
        query_tokens: frozenset[str],
        query_keywords: frozenset[str],
        min_keyword_overlap: float,
        query_raw: str = "",
    ) -> list[int]:
        """Candidate record positions for the scoring scan, add order.

        With a positive keyword-overlap floor every surviving hit must
        share at least one keyword with the query, so the keyword
        postings alone retrieve a complete candidate set.  Without the
        floor, a hit still needs non-zero token *or* keyword overlap;
        the union runs **rarest term first** over the rare-tier token
        postings plus every keyword posting (keywords are ontology
        terms — always high-signal, never tiered), each run streaming
        straight off its gap array.  The stopword (capped-DF) tier is
        skipped whenever that rare union already yielded a usable
        correct candidate, and budget-walked otherwise
        (:meth:`_accumulate_capped`), so one "the" in the query no
        longer drags a corpus-length posting through the union.

        Candidates are intersected against the verdict-code column
        (O(1) ``is_correct`` per position — no record reads), and
        retrievals larger than ``max_candidates`` are cut to the
        positions sharing the most postings with the query —
        self-matches (the query's own previously-ingested sentence)
        are dropped before the cut on both tiers, so they never occupy
        a scoring slot that a real suggestion could have used.
        """
        corpus = self.corpus
        index = corpus.index
        is_correct = index.is_correct
        text_at = corpus.columns.text_at
        shared_counts: dict[int, int] = {}

        def accumulate(postings) -> None:
            if postings is not None:
                postings.accumulate_into(shared_counts)

        # Query keywords arrive lower-cased from ``find``, so they can
        # stream straight off the index postings.
        if query_keywords and min_keyword_overlap > 0.0:
            for keyword in sorted(query_keywords):
                accumulate(index.keyword_postings(keyword))
        else:
            rare_tokens, capped_tokens = index.split_tokens(query_tokens)
            for token in rare_tokens:
                accumulate(index.token_postings(token))
            for keyword in sorted(query_keywords):
                accumulate(index.keyword_postings(keyword))
            # Skip the capped tier only when the rare union yielded a
            # correct candidate that ``find`` will actually keep — a
            # candidate that is the query's own sentence gets dropped by
            # the never-suggest-back filter, and treating it as usable
            # would leave the learner with no suggestion at all where
            # the stopword tier still holds some.
            if capped_tokens and not any(
                is_correct(position)
                and text_at(position).strip().lower() != query_raw
                for position in shared_counts
            ):
                self._accumulate_capped(index, capped_tokens, shared_counts, query_raw)
        candidates = [position for position in shared_counts if is_correct(position)]
        if len(candidates) > self.max_candidates:
            # Self-matches can never be suggested; drop them before the
            # cut so they do not displace a scorable candidate.
            if query_raw:
                candidates = [
                    position
                    for position in candidates
                    if text_at(position).strip().lower() != query_raw
                ]
        if len(candidates) > self.max_candidates:
            # Top-k cut: most shared postings first, earliest record on
            # ties — deterministic and biased toward the final ranking.
            candidates.sort(key=lambda position: (-shared_counts[position], position))
            candidates = candidates[: self.max_candidates]
        candidates.sort()
        return candidates

    def _accumulate_capped(
        self,
        index,
        capped_tokens: list[str],
        shared_counts: dict[int, int],
        query_raw: str = "",
    ) -> None:
        """Fallback union over the stopword tier, with an early cut.

        Reached only when the rare tier produced no usable correct
        candidate — typically a query made entirely of capped terms.
        Capped postings are corpus-length, so the walk stops as soon as
        ``max_candidates`` distinct *usable* correct positions have been
        seen: the result is a bounded, deterministic approximation
        (earliest records first — the same bias as the top-k tie-break)
        instead of a full-corpus union.  A correct position whose text
        is the query's own sentence is counted into the union but never
        consumes budget: ``find`` is guaranteed to drop it, so letting
        it fill the last slot would return fewer usable suggestions
        than the budget promises.  ``capped_tokens`` arrive rarest
        first from :meth:`CorpusIndex.split_tokens`.
        """
        text_at = self.corpus.columns.text_at
        is_correct = index.is_correct
        get = shared_counts.get
        budget = self.max_candidates
        for token in capped_tokens:
            postings = index.token_postings(token)
            if postings is None:
                continue
            # A tiered run exposes its (base, local-run) splice; walking
            # the parts directly keeps this hot loop on flat gap arrays
            # instead of resuming the spliced ``gaps`` generator once
            # per posting.  A plain in-RAM run is one part at base 0.
            parts = getattr(postings, "parts", None) or ((0, postings),)
            for base, part in parts:
                position = base
                for gap in part.gaps:  # stream the delta run directly
                    position += gap
                    seen = get(position, 0)
                    shared_counts[position] = seen + 1
                    if not seen and is_correct(position):
                        if (
                            query_raw
                            and text_at(position).strip().lower() == query_raw
                        ):
                            continue  # self-match: unusable, charge no budget
                        budget -= 1
                        if budget == 0:
                            return

    def best_sentence(
        self, text: str | TokenizedSentence, keywords: list[str] | None = None
    ) -> str | None:
        """The single best model sentence, or None."""
        hits = self.find(text, keywords=keywords, limit=1)
        return hits[0].record.text if hits else None
