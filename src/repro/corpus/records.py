"""Learner-corpus records: columnar storage, interned vocabularies.

The Learner Corpus Database (Fig. 3) stores every supervised utterance
with its analysis tags: who said it, the sentence pattern, the syntax and
semantic verdicts, ontology keywords and the linkage summary.  Records are
what the Label analysis & filter files away ("if the input words'
sequences have particular tag from Learning_Angel, the Label analysis &
filter can record it in Learning Corpus") and what the Learning Statistic
Analyzer later aggregates.

Up to PR 4 each record was a slotted Python object holding lists, strings
and per-record ``frozenset`` caches — hundreds of pointer-chasing bytes
per utterance, the wrong shape for the 10^5–10^6 record corpora the
ROADMAP targets.  This module now stores records **columnar**:

* every repeated term (tokens, keywords, users, rooms, patterns, error
  kinds, semantic notes, linkage summaries) is interned once in a
  :class:`Vocabulary` and referenced by a 4-byte id;
* per-record scalars live in parallel machine arrays (``array('I')`` /
  ``array('B')`` / ``array('d')``) inside :class:`RecordStore`;
* variable-length fields (token sets, keyword lists, syntax issues,
  semantic notes) are flat ``array('I')`` id runs with offset tables —
  one shared buffer per column, not one list object per record.

Consumers keep the old record-object API through :class:`RecordView`, a
two-slot lazy view that decodes fields from the columns on attribute
access and compares equal to a materialised :class:`CorpusRecord`.  The
vocabularies are shared with :class:`~repro.corpus.index.CorpusIndex`,
so postings, columns and queries all speak the same term ids.
"""

from __future__ import annotations

from array import array
from dataclasses import asdict, dataclass, field
from enum import Enum
from sys import getsizeof
from typing import Iterator


class Correctness(Enum):
    """Overall verdict tags attached to a corpus record."""

    CORRECT = "correct"
    SYNTAX_ERROR = "syntax-error"
    SEMANTIC_ERROR = "semantic-error"
    QUESTION = "question"


#: Stable verdict <-> byte-code mapping for per-record verdict columns.
VERDICT_FOR_CODE: tuple[Correctness, ...] = tuple(Correctness)
CODE_FOR_VERDICT: dict[Correctness, int] = {
    verdict: code for code, verdict in enumerate(VERDICT_FOR_CODE)
}
CORRECT_CODE: int = CODE_FOR_VERDICT[Correctness.CORRECT]


class Vocabulary:
    """An append-only string interner: term <-> dense 4-byte id.

    Ids are assigned in first-intern order and never change or shrink —
    eviction drops postings and column rows, not vocabulary entries — so
    any id captured in a column or posting list stays valid for the life
    of the store.
    """

    __slots__ = ("_terms", "_ids")

    def __init__(self) -> None:
        self._terms: list[str] = []
        self._ids: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterator[str]:
        return iter(self._terms)

    def __contains__(self, term: str) -> bool:
        return term in self._ids

    @property
    def terms(self) -> list[str]:
        """The id -> term table (read-only by convention); exposed as the
        raw list so tight decode loops can index it without a call."""
        return self._terms

    def intern(self, term: str) -> int:
        """The id of ``term``, assigning the next dense id when new."""
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._ids[term] = term_id
            self._terms.append(term)
        return term_id

    def id_of(self, term: str) -> int | None:
        """The id of ``term``, or None when it was never interned."""
        return self._ids.get(term)

    def term(self, term_id: int) -> str:
        return self._terms[term_id]

    def memory_bytes(self) -> int:
        """Approximate heap footprint of the interner (strings included)."""
        return (
            getsizeof(self._terms)
            + getsizeof(self._ids)
            + sum(getsizeof(term) for term in self._terms)
        )

    # --------------------------------------------------------- persistence

    def dump(self) -> list[str]:
        """The id -> term table, dense (ids are the list indices)."""
        return list(self._terms)

    def restore(self, terms: list[str]) -> None:
        """Replace the interner's contents with a dumped table."""
        self._terms = list(terms)
        self._ids = {term: term_id for term_id, term in enumerate(self._terms)}


class CorpusVocabularies:
    """The interned term tables one corpus shares between its columnar
    :class:`RecordStore` and its :class:`~repro.corpus.index.CorpusIndex`.

    ``tokens``, ``keywords`` (lower-cased) and ``users`` key the index's
    posting families; the rest only back record columns.
    """

    __slots__ = (
        "tokens",
        "keywords",
        "users",
        "rooms",
        "patterns",
        "links",
        "raw_keywords",
        "issue_kinds",
        "notes",
    )

    def __init__(self) -> None:
        self.tokens = Vocabulary()
        self.keywords = Vocabulary()  # lower-cased ontology terms
        self.users = Vocabulary()
        self.rooms = Vocabulary()
        self.patterns = Vocabulary()
        self.links = Vocabulary()
        self.raw_keywords = Vocabulary()  # original-case keyword surface forms
        self.issue_kinds = Vocabulary()
        self.notes = Vocabulary()

    def all(self) -> tuple[Vocabulary, ...]:
        return tuple(getattr(self, name) for name in self.__slots__)

    def memory_bytes(self) -> int:
        return sum(vocab.memory_bytes() for vocab in self.all())

    def dump(self) -> dict[str, list[str]]:
        """Every interner's term table, keyed by vocabulary name."""
        return {name: getattr(self, name).dump() for name in self.__slots__}

    def restore(self, data: dict[str, list[str]]) -> None:
        for name in self.__slots__:
            getattr(self, name).restore(data.get(name, []))


@dataclass(slots=True)
class CorpusRecord:
    """One analysed utterance, in its materialised (row) form.

    This is the *write-side* shape: producers (the Learning Angel, the
    corpora generator, loaders) build one of these and hand it to the
    store, which decomposes it into columns.  Reads come back as
    :class:`RecordView` objects with the same attribute surface; a view
    and a record with equal field values compare equal.

    Attributes:
        record_id: sequential id within the corpus.
        user: learner (or agent) name.
        room: chat room name.
        text: the raw sentence.
        timestamp: simulated-clock time of the utterance.
        pattern: sentence pattern name (one of the paper's five).
        verdict: overall correctness tag.
        syntax_issues: (kind, word) pairs from the grammar diagnosis.
        semantic_issues: human-readable semantic violation notes.
        keywords: ontology term names found in the sentence.
        links: linkage summary of the best parse ("D(the,cat) ...").
        cost: parse cost of the best linkage (missing articles etc.).
    """

    record_id: int
    user: str
    room: str
    text: str
    timestamp: float
    pattern: str
    verdict: Correctness
    syntax_issues: list[tuple[str, str]] = field(default_factory=list)
    semantic_issues: list[str] = field(default_factory=list)
    keywords: list[str] = field(default_factory=list)
    links: str = ""
    cost: int = 0

    @property
    def is_correct(self) -> bool:
        return self.verdict == Correctness.CORRECT

    def to_dict(self) -> dict:
        data = asdict(self)
        data["verdict"] = self.verdict.value
        data["syntax_issues"] = [list(pair) for pair in self.syntax_issues]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusRecord":
        return cls(
            record_id=data["record_id"],
            user=data["user"],
            room=data["room"],
            text=data["text"],
            # Coerce here: the timestamp column is array('d'), so a
            # hand-written integer timestamp would otherwise round-trip
            # to 5.0 only after one load/save cycle instead of always.
            timestamp=float(data["timestamp"]),
            pattern=data["pattern"],
            verdict=Correctness(data["verdict"]),
            syntax_issues=[tuple(pair) for pair in data.get("syntax_issues", [])],
            semantic_issues=list(data.get("semantic_issues", [])),
            keywords=list(data.get("keywords", [])),
            links=data.get("links", ""),
            cost=data.get("cost", 0),
        )


#: Field names a view must agree on to equal a record (== the dataclass).
_RECORD_FIELDS: tuple[str, ...] = (
    "record_id",
    "user",
    "room",
    "text",
    "timestamp",
    "pattern",
    "verdict",
    "syntax_issues",
    "semantic_issues",
    "keywords",
    "links",
    "cost",
)


class RecordView:
    """A lazy, read-only record bound to one :class:`RecordStore` row.

    Two machine words per view; every attribute decodes from the columns
    on access.  Views are positional: they reflect whatever the store
    currently holds at their position, so (like the pre-columnar record
    objects) they must not be held across a shard-merge barrier, which
    may rewrite the tail.  Views compare equal to other views and to
    :class:`CorpusRecord` instances with the same field values, and are
    unhashable, exactly like the mutable dataclass they replace.
    """

    __slots__ = ("_store", "_position")

    __hash__ = None  # parity with the eq=True, frozen=False dataclass

    def __init__(self, store: "RecordStore", position: int) -> None:
        self._store = store
        self._position = position

    # ------------------------------------------------------------- fields

    @property
    def record_id(self) -> int:
        return self._store._record_ids[self._position]

    @property
    def user(self) -> str:
        store = self._store
        return store.vocabs.users.terms[store._user_ids[self._position]]

    @property
    def room(self) -> str:
        store = self._store
        return store.vocabs.rooms.terms[store._room_ids[self._position]]

    @property
    def text(self) -> str:
        return self._store._texts[self._position]

    @property
    def timestamp(self) -> float:
        return self._store._timestamps[self._position]

    @property
    def pattern(self) -> str:
        store = self._store
        return store.vocabs.patterns.terms[store._pattern_ids[self._position]]

    @property
    def verdict(self) -> Correctness:
        return VERDICT_FOR_CODE[self._store._verdicts[self._position]]

    @property
    def syntax_issues(self) -> list[tuple[str, str]]:
        return self._store.syntax_issues_at(self._position)

    @property
    def semantic_issues(self) -> list[str]:
        return self._store.semantic_issues_at(self._position)

    @property
    def keywords(self) -> list[str]:
        return self._store.keywords_at(self._position)

    @property
    def links(self) -> str:
        store = self._store
        return store.vocabs.links.terms[store._link_ids[self._position]]

    @property
    def cost(self) -> int:
        return self._store._costs[self._position]

    @property
    def is_correct(self) -> bool:
        return self._store._verdicts[self._position] == CORRECT_CODE

    # ------------------------------------------------------------ protocol

    def to_dict(self) -> dict:
        return self._store.to_dict(self._position)

    def __eq__(self, other) -> bool:
        if isinstance(other, (RecordView, CorpusRecord)):
            return all(
                getattr(self, name) == getattr(other, name) for name in _RECORD_FIELDS
            )
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecordView(position={self._position}, record_id={self.record_id}, "
            f"user={self.user!r}, verdict={self.verdict.value!r}, text={self.text!r})"
        )


#: Bound on the per-store memo caches (views, token/keyword sets).  The
#: caches exist for query-time locality — suggestion search re-touches
#: the same hot candidates across queries — not for completeness, so
#: overflowing simply clears them.
_CACHE_LIMIT = 8192


class RecordStore:
    """Columnar storage for corpus records.

    Append and tail-pop only (the same mutation surface as the posting
    lists, so shard-merge eviction stays O(tail)).  All variable-length
    fields share flat id-run buffers addressed by per-record offset
    tables; ``offsets[p] : offsets[p + 1]`` is record ``p``'s run.
    """

    __slots__ = (
        "vocabs",
        "_record_ids",
        "_user_ids",
        "_room_ids",
        "_pattern_ids",
        "_link_ids",
        "_timestamps",
        "_verdicts",
        "_costs",
        "_texts",
        "_token_ids",
        "_token_offsets",
        "_kw_ids",
        "_kw_offsets",
        "_raw_kw_ids",
        "_raw_kw_offsets",
        "_issue_kind_ids",
        "_issue_word_ids",
        "_issue_offsets",
        "_note_ids",
        "_note_offsets",
        "_views",
        "_token_set_cache",
        "_keyword_set_cache",
    )

    def __init__(self, vocabs: CorpusVocabularies | None = None) -> None:
        self.vocabs = vocabs if vocabs is not None else CorpusVocabularies()
        self._record_ids = array("I")
        self._user_ids = array("I")
        self._room_ids = array("I")
        self._pattern_ids = array("I")
        self._link_ids = array("I")
        self._timestamps = array("d")
        self._verdicts = array("B")
        self._costs = array("i")
        self._texts: list[str] = []
        self._token_ids = array("I")
        self._token_offsets = array("I", [0])
        self._kw_ids = array("I")
        self._kw_offsets = array("I", [0])
        self._raw_kw_ids = array("I")
        self._raw_kw_offsets = array("I", [0])
        self._issue_kind_ids = array("I")
        self._issue_word_ids = array("I")
        self._issue_offsets = array("I", [0])
        self._note_ids = array("I")
        self._note_offsets = array("I", [0])
        # Bounded memo caches, cleared wholesale on overflow or eviction.
        self._views: dict[int, RecordView] = {}
        self._token_set_cache: dict[int, frozenset[str]] = {}
        self._keyword_set_cache: dict[int, frozenset[str]] = {}

    def __len__(self) -> int:
        return len(self._texts)

    # ------------------------------------------------------------ mutation

    def append(
        self, record: CorpusRecord, token_set: frozenset[str]
    ) -> tuple[int, array, array, int]:
        """Decompose ``record`` into the columns; returns the interned
        ``(position, token_ids, keyword_ids, user_id)`` the caller needs
        to mirror the append into the inverted index."""
        vocabs = self.vocabs
        position = len(self._texts)
        token_ids = array("I", sorted(map(vocabs.tokens.intern, token_set)))
        keyword_ids = array(
            "I", sorted({vocabs.keywords.intern(k.lower()) for k in record.keywords})
        )
        user_id = vocabs.users.intern(record.user)

        self._record_ids.append(record.record_id)
        self._user_ids.append(user_id)
        self._room_ids.append(vocabs.rooms.intern(record.room))
        self._pattern_ids.append(vocabs.patterns.intern(record.pattern))
        self._link_ids.append(vocabs.links.intern(record.links))
        self._timestamps.append(record.timestamp)
        self._verdicts.append(CODE_FOR_VERDICT[record.verdict])
        self._costs.append(record.cost)
        self._texts.append(record.text)

        self._token_ids.extend(token_ids)
        self._token_offsets.append(len(self._token_ids))
        self._kw_ids.extend(keyword_ids)
        self._kw_offsets.append(len(self._kw_ids))
        self._raw_kw_ids.extend(
            vocabs.raw_keywords.intern(keyword) for keyword in record.keywords
        )
        self._raw_kw_offsets.append(len(self._raw_kw_ids))
        for kind, word in record.syntax_issues:
            self._issue_kind_ids.append(vocabs.issue_kinds.intern(kind))
            self._issue_word_ids.append(vocabs.tokens.intern(word))
        self._issue_offsets.append(len(self._issue_kind_ids))
        self._note_ids.extend(vocabs.notes.intern(note) for note in record.semantic_issues)
        self._note_offsets.append(len(self._note_ids))
        return position, token_ids, keyword_ids, user_id

    def pop_last(self) -> tuple[Correctness, array, array, int]:
        """Drop the last record; returns the ``(verdict, token_ids,
        keyword_ids, user_id)`` the caller needs to un-index it.  O(row),
        so tail eviction over a merge barrier stays O(tail)."""
        position = len(self._texts) - 1
        verdict = VERDICT_FOR_CODE[self._verdicts[position]]
        # Copy the runs before truncating: a live memoryview would block
        # the array resizes below (exported-buffer rule).
        token_ids = self._token_ids[self._token_offsets[position] :]
        keyword_ids = self._kw_ids[self._kw_offsets[position] :]
        user_id = self._user_ids[position]

        del self._record_ids[position:]
        del self._user_ids[position:]
        del self._room_ids[position:]
        del self._pattern_ids[position:]
        del self._link_ids[position:]
        del self._timestamps[position:]
        del self._verdicts[position:]
        del self._costs[position:]
        del self._texts[position:]
        del self._token_ids[self._token_offsets[position] :]
        del self._token_offsets[position + 1 :]
        del self._kw_ids[self._kw_offsets[position] :]
        del self._kw_offsets[position + 1 :]
        del self._raw_kw_ids[self._raw_kw_offsets[position] :]
        del self._raw_kw_offsets[position + 1 :]
        del self._issue_kind_ids[self._issue_offsets[position] :]
        del self._issue_word_ids[self._issue_offsets[position] :]
        del self._issue_offsets[position + 1 :]
        del self._note_ids[self._note_offsets[position] :]
        del self._note_offsets[position + 1 :]
        # Positions past the new length are gone and the tail may be
        # rewritten: all positional memos are suspect now.
        self._views.clear()
        self._token_set_cache.clear()
        self._keyword_set_cache.clear()
        return verdict, token_ids, keyword_ids, user_id

    # -------------------------------------------------------------- reads

    def view(self, position: int) -> RecordView:
        """The (memoised) lazy record view at ``position``."""
        view = self._views.get(position)
        if view is None:
            if len(self._views) >= _CACHE_LIMIT:
                self._views.clear()
            view = self._views[position] = RecordView(self, position)
        return view

    def materialize(self, position: int) -> CorpusRecord:
        """A detached, fully decoded :class:`CorpusRecord` copy."""
        vocabs = self.vocabs
        return CorpusRecord(
            record_id=self._record_ids[position],
            user=vocabs.users.terms[self._user_ids[position]],
            room=vocabs.rooms.terms[self._room_ids[position]],
            text=self._texts[position],
            timestamp=self._timestamps[position],
            pattern=vocabs.patterns.terms[self._pattern_ids[position]],
            verdict=VERDICT_FOR_CODE[self._verdicts[position]],
            syntax_issues=self.syntax_issues_at(position),
            semantic_issues=self.semantic_issues_at(position),
            keywords=self.keywords_at(position),
            links=vocabs.links.terms[self._link_ids[position]],
            cost=self._costs[position],
        )

    def to_dict(self, position: int) -> dict:
        """The record's canonical dict, key order matching the dataclass
        (``save`` writes these verbatim, so the JSONL shape is stable)."""
        vocabs = self.vocabs
        return {
            "record_id": self._record_ids[position],
            "user": vocabs.users.terms[self._user_ids[position]],
            "room": vocabs.rooms.terms[self._room_ids[position]],
            "text": self._texts[position],
            "timestamp": self._timestamps[position],
            "pattern": vocabs.patterns.terms[self._pattern_ids[position]],
            "verdict": VERDICT_FOR_CODE[self._verdicts[position]].value,
            "syntax_issues": [list(pair) for pair in self.syntax_issues_at(position)],
            "semantic_issues": self.semantic_issues_at(position),
            "keywords": self.keywords_at(position),
            "links": vocabs.links.terms[self._link_ids[position]],
            "cost": self._costs[position],
        }

    # ------------------------------------------------------- field decodes

    def text_at(self, position: int) -> str:
        return self._texts[position]

    def record_id_at(self, position: int) -> int:
        return self._record_ids[position]

    def verdict_code_at(self, position: int) -> int:
        return self._verdicts[position]

    def pattern_id_at(self, position: int) -> int:
        return self._pattern_ids[position]

    def user_id_at(self, position: int) -> int:
        return self._user_ids[position]

    def token_id_run(self, position: int):
        """Record ``position``'s sorted-unique token ids (zero-copy)."""
        return memoryview(self._token_ids)[
            self._token_offsets[position] : self._token_offsets[position + 1]
        ]

    def keyword_id_run(self, position: int):
        """Sorted-unique lower-cased keyword ids (zero-copy)."""
        return memoryview(self._kw_ids)[
            self._kw_offsets[position] : self._kw_offsets[position + 1]
        ]

    def raw_keyword_id_run(self, position: int):
        """Original-case keyword ids, ingestion order, duplicates kept."""
        return memoryview(self._raw_kw_ids)[
            self._raw_kw_offsets[position] : self._raw_kw_offsets[position + 1]
        ]

    def issue_kind_id_run(self, position: int):
        return memoryview(self._issue_kind_ids)[
            self._issue_offsets[position] : self._issue_offsets[position + 1]
        ]

    def note_count(self, position: int) -> int:
        return self._note_offsets[position + 1] - self._note_offsets[position]

    def token_set(self, position: int) -> frozenset[str]:
        """The record's token set, decoded (bounded memo cache)."""
        cached = self._token_set_cache.get(position)
        if cached is None:
            if len(self._token_set_cache) >= _CACHE_LIMIT:
                self._token_set_cache.clear()
            terms = self.vocabs.tokens.terms
            cached = self._token_set_cache[position] = frozenset(
                terms[token_id] for token_id in self.token_id_run(position)
            )
        return cached

    def keyword_set(self, position: int) -> frozenset[str]:
        """The record's lower-cased keyword set (bounded memo cache)."""
        cached = self._keyword_set_cache.get(position)
        if cached is None:
            if len(self._keyword_set_cache) >= _CACHE_LIMIT:
                self._keyword_set_cache.clear()
            terms = self.vocabs.keywords.terms
            cached = self._keyword_set_cache[position] = frozenset(
                terms[keyword_id] for keyword_id in self.keyword_id_run(position)
            )
        return cached

    def keywords_at(self, position: int) -> list[str]:
        terms = self.vocabs.raw_keywords.terms
        return [terms[keyword_id] for keyword_id in self.raw_keyword_id_run(position)]

    def syntax_issues_at(self, position: int) -> list[tuple[str, str]]:
        kinds = self.vocabs.issue_kinds.terms
        words = self.vocabs.tokens.terms
        start = self._issue_offsets[position]
        end = self._issue_offsets[position + 1]
        kind_ids = self._issue_kind_ids
        word_ids = self._issue_word_ids
        return [
            (kinds[kind_ids[i]], words[word_ids[i]]) for i in range(start, end)
        ]

    def semantic_issues_at(self, position: int) -> list[str]:
        notes = self.vocabs.notes.terms
        return [notes[note_id] for note_id in self._note_ids[
            self._note_offsets[position] : self._note_offsets[position + 1]
        ]]

    # --------------------------------------------------------- persistence

    #: Machine-array columns as ``attr -> typecode`` (texts are a plain
    #: string list and live outside this table).  The dump/load pair and
    #: the alignment check below iterate this single source of truth.
    _ARRAY_COLUMNS: dict[str, str] = {
        "_record_ids": "I",
        "_user_ids": "I",
        "_room_ids": "I",
        "_pattern_ids": "I",
        "_link_ids": "I",
        "_timestamps": "d",
        "_verdicts": "B",
        "_costs": "i",
        "_token_ids": "I",
        "_token_offsets": "I",
        "_kw_ids": "I",
        "_kw_offsets": "I",
        "_raw_kw_ids": "I",
        "_raw_kw_offsets": "I",
        "_issue_kind_ids": "I",
        "_issue_word_ids": "I",
        "_issue_offsets": "I",
        "_note_ids": "I",
        "_note_offsets": "I",
    }

    #: Offset tables (length = records + 1, leading 0) vs. per-record
    #: scalars (length = records); flat id runs are checked against
    #: their offset table's final entry.
    _OFFSET_COLUMNS = (
        ("_token_ids", "_token_offsets"),
        ("_kw_ids", "_kw_offsets"),
        ("_raw_kw_ids", "_raw_kw_offsets"),
        ("_issue_kind_ids", "_issue_offsets"),
        ("_issue_word_ids", "_issue_offsets"),
        ("_note_ids", "_note_offsets"),
    )

    def dump_columns(self) -> dict:
        """Every column as a JSON-ready dict (texts + machine arrays)."""
        data: dict = {"texts": list(self._texts)}
        for attr in self._ARRAY_COLUMNS:
            data[attr.lstrip("_")] = getattr(self, attr).tolist()
        return data

    def load_columns(self, columns: dict) -> None:
        """Replace the store's contents with dumped columns.

        Alignment is validated (row counts, offset-table shapes) so a
        logically inconsistent document fails loudly here instead of as
        an index error deep inside a later query.
        """
        texts = list(columns["texts"])
        loaded = {
            attr: array(typecode, columns[attr.lstrip("_")])
            for attr, typecode in self._ARRAY_COLUMNS.items()
        }
        records = len(texts)
        for attr in ("_record_ids", "_user_ids", "_room_ids", "_pattern_ids",
                     "_link_ids", "_timestamps", "_verdicts", "_costs"):
            if len(loaded[attr]) != records:
                raise ValueError(f"column {attr.lstrip('_')} misaligned with texts")
        for flat_attr, offsets_attr in self._OFFSET_COLUMNS:
            offsets = loaded[offsets_attr]
            if len(offsets) != records + 1 or offsets[0] != 0:
                raise ValueError(f"offset table {offsets_attr.lstrip('_')} malformed")
            if offsets[-1] != len(loaded[flat_attr]):
                raise ValueError(f"column {flat_attr.lstrip('_')} misaligned with its offsets")
        self._texts = texts
        for attr, column in loaded.items():
            setattr(self, attr, column)
        self._views.clear()
        self._token_set_cache.clear()
        self._keyword_set_cache.clear()

    def freeze_prefix(self, count: int) -> dict[str, bytes]:
        """The raw column bytes of the first ``count`` records — the
        disk segment tier's write payload (``repro.corpus.segments``).

        Scalar columns are sliced to ``count`` rows; offset tables keep
        their leading zero and are sliced to ``count + 1`` entries; flat
        id runs are sliced to their offset table's ``count``-th entry
        (prefixes need no rebasing — every offset already counts from
        the start of the store).  Texts are packed into one UTF-8 blob
        with a byte-offset table of the same shape.
        """
        if not 0 <= count <= len(self._texts):
            raise ValueError(f"cannot freeze {count} of {len(self._texts)} records")
        sections: dict[str, bytes] = {}
        for attr in ("_record_ids", "_user_ids", "_room_ids", "_pattern_ids",
                     "_link_ids", "_timestamps", "_verdicts", "_costs"):
            sections[attr.lstrip("_")] = getattr(self, attr)[:count].tobytes()
        for flat_attr, offsets_attr in self._OFFSET_COLUMNS:
            offsets = getattr(self, offsets_attr)
            sections[offsets_attr.lstrip("_")] = offsets[: count + 1].tobytes()
            sections[flat_attr.lstrip("_")] = (
                getattr(self, flat_attr)[: offsets[count]].tobytes()
            )
        blob = bytearray()
        text_offsets = array("I", [0])
        for text in self._texts[:count]:
            blob += text.encode("utf-8")
            text_offsets.append(len(blob))
        sections["text_blob"] = bytes(blob)
        sections["text_offsets"] = text_offsets.tobytes()
        return sections

    # --------------------------------------------------------- diagnostics

    def memory_stats(self) -> dict[str, int]:
        """Heap accounting for the columnar layout (bench workload)."""
        arrays = (
            self._record_ids,
            self._user_ids,
            self._room_ids,
            self._pattern_ids,
            self._link_ids,
            self._timestamps,
            self._verdicts,
            self._costs,
            self._token_ids,
            self._token_offsets,
            self._kw_ids,
            self._kw_offsets,
            self._raw_kw_ids,
            self._raw_kw_offsets,
            self._issue_kind_ids,
            self._issue_word_ids,
            self._issue_offsets,
            self._note_ids,
            self._note_offsets,
        )
        column_bytes = sum(getsizeof(column) for column in arrays)
        text_bytes = getsizeof(self._texts) + sum(getsizeof(text) for text in self._texts)
        cache_bytes = sum(
            getsizeof(cache)
            for cache in (self._views, self._token_set_cache, self._keyword_set_cache)
        )
        vocab_bytes = self.vocabs.memory_bytes()
        return {
            "records": len(self._texts),
            "column_bytes": column_bytes,
            "text_bytes": text_bytes,
            "vocab_bytes": vocab_bytes,
            "cache_bytes": cache_bytes,
            "total_bytes": column_bytes + text_bytes + vocab_bytes + cache_bytes,
        }
