"""Learner-corpus records.

The Learner Corpus Database (Fig. 3) stores every supervised utterance
with its analysis tags: who said it, the sentence pattern, the syntax and
semantic verdicts, ontology keywords and the linkage summary.  Records are
what the Label analysis & filter files away ("if the input words'
sequences have particular tag from Learning_Angel, the Label analysis &
filter can record it in Learning Corpus") and what the Learning Statistic
Analyzer later aggregates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from enum import Enum


class Correctness(Enum):
    """Overall verdict tags attached to a corpus record."""

    CORRECT = "correct"
    SYNTAX_ERROR = "syntax-error"
    SEMANTIC_ERROR = "semantic-error"
    QUESTION = "question"


@dataclass(slots=True)
class CorpusRecord:
    """One analysed utterance in the learner corpus.

    Attributes:
        record_id: sequential id within the corpus.
        user: learner (or agent) name.
        room: chat room name.
        text: the raw sentence.
        timestamp: simulated-clock time of the utterance.
        pattern: sentence pattern name (one of the paper's five).
        verdict: overall correctness tag.
        syntax_issues: (kind, word) pairs from the grammar diagnosis.
        semantic_issues: human-readable semantic violation notes.
        keywords: ontology term names found in the sentence.
        links: linkage summary of the best parse ("D(the,cat) ...").
        cost: parse cost of the best linkage (missing articles etc.).
    """

    record_id: int
    user: str
    room: str
    text: str
    timestamp: float
    pattern: str
    verdict: Correctness
    syntax_issues: list[tuple[str, str]] = field(default_factory=list)
    semantic_issues: list[str] = field(default_factory=list)
    keywords: list[str] = field(default_factory=list)
    links: str = ""
    cost: int = 0

    @property
    def is_correct(self) -> bool:
        return self.verdict == Correctness.CORRECT

    def to_dict(self) -> dict:
        data = asdict(self)
        data["verdict"] = self.verdict.value
        data["syntax_issues"] = [list(pair) for pair in self.syntax_issues]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusRecord":
        return cls(
            record_id=data["record_id"],
            user=data["user"],
            room=data["room"],
            text=data["text"],
            timestamp=data["timestamp"],
            pattern=data["pattern"],
            verdict=Correctness(data["verdict"]),
            syntax_issues=[tuple(pair) for pair in data.get("syntax_issues", [])],
            semantic_issues=list(data.get("semantic_issues", [])),
            keywords=list(data.get("keywords", [])),
            links=data.get("links", ""),
            cost=data.get("cost", 0),
        )
