"""The Learner Corpus store: append, query, persist.

A deliberately simple in-memory store with JSON-lines persistence — the
paper's corpus is a database of analysed utterances, and every consumer
(statistic analyzer, suggestion search, QA mining) works off these query
primitives.

Because suggestion search runs on *every* detected syntax error, the store
maintains ingestion-time indexes so per-query work stays flat as the
corpus grows:

* a **token-set cache** — each record's tokenised word set is computed once
  when the record is added (or loaded), not once per query;
* a :class:`~repro.corpus.index.CorpusIndex` owning the **verdict,
  keyword, token and user postings** — delta-encoded ``array('I')``
  runs with per-term document frequencies and a configurable stopword
  tier (``IndexConfig(stopword_df_cap=...)``), so ``by_verdict``,
  ``with_keyword``, ``by_user`` and every suggestion-search candidate
  scan jump straight to the matching records, and "the"-style terms
  stop dominating unconstrained retrieval unions at the 10^5+ record
  scale (see ``docs/corpus.md``).

Records are snapshotted at :meth:`LearnerCorpus.add` time: the indexes
read ``verdict``/``keywords``/``text`` once, on ingestion.  Treat a
record as immutable after adding it — mutating one afterwards would
desynchronise the index-backed queries from ``filter``-style scans.
(The single exception is ``record_id``, which the shard merge renumbers
to the record's final position; ids are not indexed.)

The corpus is also a :class:`~repro.state.mergeable.MergeableStore`:
:meth:`LearnerCorpus.fork` hands a drain worker a :class:`CorpusReplica`
whose reads see the fork-point snapshot and whose appends are buffered
with their origin (global message seq, per-message sentence index);
:meth:`LearnerCorpus.merge` interleaves replica appends behind the fork
watermark in origin order — whatever order the replicas merge in — and
re-ingests them through the normal path, so the merged store's inverted
token/keyword postings and record ids are identical to those of a single
store fed the same records in origin order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator

from repro.linkgrammar.tokenizer import tokenize

from .index import CorpusIndex, IndexConfig
from .records import Correctness, CorpusRecord


class LearnerCorpus:
    """Append-only collection of :class:`CorpusRecord`.

    Args:
        index_config: knobs for the owned :class:`CorpusIndex`
            (postings layout and stopword-DF tiering); ``None`` uses
            the defaults.
    """

    def __init__(self, index_config: IndexConfig | None = None) -> None:
        self._records: list[CorpusRecord] = []
        # Ingestion-time caches, keyed by record position (== add order).
        self._token_sets: list[frozenset[str]] = []
        self._keyword_sets: list[frozenset[str]] = []
        self._index = CorpusIndex(index_config)
        # Shard-merge bookkeeping: the position every record of the
        # current barrier interleaves behind, and the origin keys of the
        # records merged past it so far (aligned with the tail).
        self._merge_floor: int | None = None
        self._merge_keys: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CorpusRecord]:
        return iter(self._records)

    # ------------------------------------------------------------- writing

    def next_id(self) -> int:
        return len(self._records)

    def add(
        self, record: CorpusRecord, tokens: tuple[str, ...] | None = None
    ) -> CorpusRecord:
        """Append a record (ids must be monotonic; use :meth:`next_id`).

        Tokenisation and keyword normalisation happen here, once, so
        every later similarity query is a cache lookup.  Callers that
        already tokenised ``record.text`` (the supervision pipeline)
        pass ``tokens`` to skip the redundant tokenizer run.
        """
        token_set = (
            frozenset(tokens) if tokens is not None else frozenset(tokenize(record.text).words)
        )
        return self._ingest(record, token_set)

    def _ingest(self, record: CorpusRecord, token_set: frozenset[str]) -> CorpusRecord:
        """Append one record with its precomputed token set and index it."""
        self._records.append(record)
        self._token_sets.append(token_set)
        keywords = frozenset(k.lower() for k in record.keywords)
        self._keyword_sets.append(keywords)
        self._index.append_record(record.verdict, keywords, token_set, record.user)
        return record

    def _evict_tail(self, floor: int) -> None:
        """Drop every record at position >= ``floor`` from store + indexes.

        Positions are appended in add order, so within each postings list
        the evicted positions are exactly the trailing entries — eviction
        is O(tail), not O(index), delta encoding notwithstanding.
        """
        while len(self._records) > floor:
            record = self._records.pop()
            token_set = self._token_sets.pop()
            keywords = self._keyword_sets.pop()
            self._index.pop_record(record.verdict, keywords, token_set, record.user)

    # ------------------------------------------------------------- queries

    def records(self) -> list[CorpusRecord]:
        return list(self._records)

    def filter(self, predicate: Callable[[CorpusRecord], bool]) -> list[CorpusRecord]:
        return [record for record in self._records if predicate(record)]

    def by_user(self, user: str) -> list[CorpusRecord]:
        return [self._records[i] for i in self._index.user_positions(user)]

    def by_verdict(self, verdict: Correctness) -> list[CorpusRecord]:
        return [self._records[i] for i in self._index.iter_verdict_positions(verdict)]

    def correct_records(self) -> list[CorpusRecord]:
        return self.by_verdict(Correctness.CORRECT)

    def with_keyword(self, keyword: str) -> list[CorpusRecord]:
        return [self._records[i] for i in self._index.iter_keyword_positions(keyword.lower())]

    def verdict_counts(self) -> dict[Correctness, int]:
        """Record count per verdict, straight off the index DFs — O(1) in
        corpus size, for the statistic analyzer's aggregate report."""
        return self._index.verdict_counts()

    # ---------------------------------------------------- similarity caches

    @property
    def index(self) -> CorpusIndex:
        """The owned inverted-index subsystem (postings, DFs, tiers)."""
        return self._index

    def record_at(self, position: int) -> CorpusRecord:
        """The record at ``position`` (add order)."""
        return self._records[position]

    def is_correct(self, position: int) -> bool:
        """O(1) verdict test for the record at ``position`` — consumers
        filtering candidate positions use this instead of re-reading
        :meth:`record_at` per candidate."""
        return self._index.is_correct(position)

    def verdict_at(self, position: int) -> Correctness:
        """The verdict of the record at ``position``, off the index."""
        return self._index.verdict_at(position)

    def keyword_positions(self, keyword: str) -> tuple[int, ...]:
        """Positions of records tagged with ``keyword`` (add order)."""
        return self._index.keyword_positions(keyword.lower())

    def token_positions(self, token: str) -> tuple[int, ...]:
        """Positions of records whose text contains ``token`` (add order)."""
        return self._index.token_positions(token)

    def token_set(self, position: int) -> frozenset[str]:
        """The cached token set of the record at ``position`` (add order)."""
        return self._token_sets[position]

    def keyword_set(self, position: int) -> frozenset[str]:
        """The cached lower-cased keyword set of the record at ``position``."""
        return self._keyword_sets[position]

    def correct_positions(self) -> Iterator[tuple[int, CorpusRecord]]:
        """(position, record) pairs for known-correct records, add order.

        Positions index :meth:`token_set`/:meth:`keyword_set`, letting
        suggestion search scan candidates without touching the tokenizer.
        """
        for position in self._index.iter_verdict_positions(Correctness.CORRECT):
            yield position, self._records[position]

    # -------------------------------------------------- partition and merge

    def fork(self) -> "CorpusReplica":
        """A shard replica over the current state (reads = this snapshot,
        writes buffered until :meth:`merge`)."""
        return CorpusReplica(self)

    def merge(self, replica: "CorpusReplica") -> int:
        """Fold one replica's buffered records into the corpus.

        Replica records interleave *behind the fork watermark* in origin
        order — ``(message seq, per-message sentence index)``, captured
        at supervision time — so merging the replicas of one barrier in
        any order produces the same record order, ids, token sets and
        inverted postings as a single store fed the records in global
        post order.  Records already merged this barrier (by sibling
        replicas) are re-sorted together with the new ones; eviction and
        re-ingestion are O(barrier batch), not O(corpus).

        Returns the number of records merged from ``replica``.
        """
        floor = replica.base_len
        if floor > len(self._records):
            raise ValueError(
                f"replica forked at {floor} but corpus holds {len(self._records)} records"
            )
        if self._merge_floor != floor:
            # First replica of a new barrier: the tail (if any) belongs
            # to an older, already-finalised barrier.
            self._merge_floor = floor
            self._merge_keys = []
        tail: list[tuple[tuple[int, int], CorpusRecord, frozenset[str]]] = [
            (key, self._records[floor + offset], self._token_sets[floor + offset])
            for offset, key in enumerate(self._merge_keys)
        ]
        merged = len(replica.pending)
        tail.extend(replica.pending)
        tail.sort(key=lambda entry: entry[0])
        self._evict_tail(floor)
        for _key, record, token_set in tail:
            record.record_id = len(self._records)
            self._ingest(record, token_set)
        self._merge_keys = [entry[0] for entry in tail]
        return merged

    def snapshot(self) -> tuple[dict, ...]:
        """Canonical comparable value: every record, in store order."""
        return tuple(record.to_dict() for record in self._records)

    # --------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        """Write the corpus as JSON lines."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.to_dict(), ensure_ascii=False) + "\n")

    @classmethod
    def load(
        cls, path: str | Path, index_config: IndexConfig | None = None
    ) -> "LearnerCorpus":
        """Read a corpus previously written by :meth:`save`."""
        corpus = cls(index_config)
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    corpus.add(CorpusRecord.from_dict(json.loads(line)))
        return corpus


class CorpusReplica:
    """One worker's shard-local view of a :class:`LearnerCorpus`.

    Reads (suggestion-search queries, QA corpus fallback, statistics)
    delegate to the base store, which the runtime freezes for the length
    of a drain cycle — every worker of a barrier therefore analyses
    against the *same* snapshot, which is what makes batch-wide analysis
    memoisation sound.  Appends are buffered locally, tagged with their
    origin ``(message seq, per-message sentence index)``, and only reach
    the base in :meth:`LearnerCorpus.merge`.  A replica is single-owner:
    exactly one worker writes it, and merge/rebase happen at the barrier
    with no workers running.
    """

    __slots__ = ("_base", "base_len", "_pending", "_origin_seq", "_origin_n")

    def __init__(self, base: LearnerCorpus) -> None:
        self._base = base
        self.base_len = len(base)
        self._pending: list[tuple[tuple[int, int], CorpusRecord, frozenset[str]]] = []
        self._origin_seq = 0
        self._origin_n = 0

    # ----------------------------------------------------- replica protocol

    @property
    def base(self) -> LearnerCorpus:
        return self._base

    @property
    def pending(self) -> list[tuple[tuple[int, int], CorpusRecord, frozenset[str]]]:
        """Buffered (origin, record, token set) appends, in write order."""
        return self._pending

    def begin_origin(self, seq: int) -> None:
        """Tag subsequent appends as originating from message ``seq``."""
        self._origin_seq = seq
        self._origin_n = 0

    def rebase(self) -> None:
        """Drop the local buffer and snapshot the (merged) base anew."""
        self._pending = []
        self.base_len = len(self._base)

    # -------------------------------------------------------------- writing

    def next_id(self) -> int:
        """Provisional id; the merge renumbers to the final position."""
        return self.base_len + len(self._pending)

    def add(
        self, record: CorpusRecord, tokens: tuple[str, ...] | None = None
    ) -> CorpusRecord:
        token_set = (
            frozenset(tokens) if tokens is not None else frozenset(tokenize(record.text).words)
        )
        self._pending.append(((self._origin_seq, self._origin_n), record, token_set))
        self._origin_n += 1
        return record

    # ------------------------------------------------------------- queries
    # All reads see the fork-point snapshot: the base store, which only
    # changes at merge barriers while no worker is draining.

    def __len__(self) -> int:
        return self.base_len + len(self._pending)

    def __iter__(self) -> Iterator[CorpusRecord]:
        return iter(self._base)

    def __getattr__(self, name: str):
        # Query primitives (record_at, token_positions, correct_records,
        # ...) delegate wholesale; writes are overridden above.
        return getattr(self._base, name)
