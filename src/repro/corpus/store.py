"""The Learner Corpus store: append, query, persist.

A deliberately simple in-memory store with JSON-lines persistence — the
paper's corpus is a database of analysed utterances, and every consumer
(statistic analyzer, suggestion search, QA mining) works off these query
primitives.

Since PR 5 the store is **columnar**: records live in a
:class:`~repro.corpus.records.RecordStore` (flat machine arrays plus
interned :class:`~repro.corpus.records.Vocabulary` term tables) instead
of one Python object per record, and reads come back as lazy
:class:`~repro.corpus.records.RecordView` objects with the familiar
record attribute surface.  The vocabularies are shared with the owned
:class:`~repro.corpus.index.CorpusIndex`, so the verdict/keyword/token/
user postings — delta-encoded ``array('I')`` runs with per-term document
frequencies and a configurable stopword tier
(``IndexConfig(stopword_df_cap=...)``) — are keyed by the same 4-byte
term ids the columns store.  ``by_verdict``, ``with_keyword``,
``by_user`` and every suggestion-search candidate scan jump straight to
the matching records, and "the"-style terms stop dominating
unconstrained retrieval unions at the 10^5+ record scale (see
``docs/corpus.md``).

Records are snapshotted at :meth:`LearnerCorpus.add` time: the columns
and indexes read ``verdict``/``keywords``/``text`` once, on ingestion,
and the input :class:`CorpusRecord` is decomposed and discarded.  Views
are positional — like positions themselves, they must not be held
across a shard-merge barrier, which may rewrite the store tail.

The corpus is also a :class:`~repro.state.mergeable.MergeableStore`:
:meth:`LearnerCorpus.fork` hands a drain worker a :class:`CorpusReplica`
whose reads see the fork-point snapshot and whose appends are buffered
with their origin (global message seq, per-message sentence index);
:meth:`LearnerCorpus.merge` interleaves replica appends behind the fork
watermark in origin order — whatever order the replicas merge in — and
re-ingests them through the normal path, so the merged store's columns,
inverted postings and record ids are identical to those of a single
store fed the same records in origin order.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator

from repro.linkgrammar.tokenizer import tokenize

from .index import CorpusIndex, IndexConfig
from .records import (
    VERDICT_FOR_CODE,
    Correctness,
    CorpusRecord,
    CorpusVocabularies,
    RecordStore,
    RecordView,
)

#: Format tag of the columnar corpus document ``save`` writes (one JSON
#: object: vocabularies + columns).  ``load`` also accepts the legacy
#: per-record JSONL shape and re-ingests it row by row.
CORPUS_COLUMNAR_FORMAT = "repro-corpus-columnar/1"


class LearnerCorpus:
    """Append-only columnar collection of corpus records.

    Args:
        index_config: knobs for the owned :class:`CorpusIndex`
            (postings layout and stopword-DF tiering); ``None`` uses
            the defaults.
    """

    def __init__(self, index_config: IndexConfig | None = None) -> None:
        self._vocabs = CorpusVocabularies()
        self._store = RecordStore(self._vocabs)
        self._index = CorpusIndex(index_config, vocabularies=self._vocabs)
        # Shard-merge bookkeeping: the position every record of the
        # current barrier interleaves behind, and the origin keys of the
        # records merged past it so far (aligned with the tail).
        self._merge_floor: int | None = None
        self._merge_keys: list[tuple[int, int]] = []

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[RecordView]:
        columns = self.columns
        return (columns.view(position) for position in range(len(columns)))

    # ------------------------------------------------------------- writing

    def next_id(self) -> int:
        return len(self)

    def add(
        self, record: CorpusRecord, tokens: tuple[str, ...] | None = None
    ) -> CorpusRecord:
        """Append a record (ids must be monotonic; use :meth:`next_id`).

        Tokenisation, keyword normalisation and vocabulary interning
        happen here, once, so every later similarity query is an id-run
        read.  Callers that already tokenised ``record.text`` (the
        supervision pipeline) pass ``tokens`` to skip the redundant
        tokenizer run.  Returns the (now decomposed) input record.
        """
        token_set = (
            frozenset(tokens) if tokens is not None else frozenset(tokenize(record.text).words)
        )
        return self._ingest(record, token_set)

    def _ingest(self, record: CorpusRecord, token_set: frozenset[str]) -> CorpusRecord:
        """Append one record with its precomputed token set and index it."""
        _position, token_ids, keyword_ids, user_id = self._store.append(record, token_set)
        self._index.append_ids(record.verdict, keyword_ids, token_ids, user_id)
        return record

    def _evict_tail(self, floor: int) -> None:
        """Drop every record at position >= ``floor`` from store + indexes.

        Positions are appended in add order, so within each postings list
        the evicted positions are exactly the trailing entries — eviction
        is O(tail), not O(index), delta encoding notwithstanding.
        """
        while len(self._store) > floor:
            verdict, token_ids, keyword_ids, user_id = self._store.pop_last()
            self._index.pop_ids(verdict, keyword_ids, token_ids, user_id)

    # ------------------------------------------------------------- queries

    def records(self) -> list[RecordView]:
        columns = self.columns
        return [columns.view(position) for position in range(len(columns))]

    def filter(self, predicate: Callable[[RecordView], bool]) -> list[RecordView]:
        return [record for record in self if predicate(record)]

    def by_user(self, user: str) -> list[RecordView]:
        view = self.columns.view
        return [view(position) for position in self.index.iter_user_positions(user)]

    def by_verdict(self, verdict: Correctness) -> list[RecordView]:
        view = self.columns.view
        return [view(position) for position in self.index.iter_verdict_positions(verdict)]

    def correct_records(self) -> list[RecordView]:
        return self.by_verdict(Correctness.CORRECT)

    def with_keyword(self, keyword: str) -> list[RecordView]:
        view = self.columns.view
        return [
            view(position)
            for position in self.index.iter_keyword_positions(keyword.lower())
        ]

    def verdict_counts(self) -> dict[Correctness, int]:
        """Record count per verdict, straight off the index DFs — O(1) in
        corpus size, for the statistic analyzer's aggregate report."""
        return self.index.verdict_counts()

    # ----------------------------------------------------- columnar access

    @property
    def index(self) -> CorpusIndex:
        """The owned inverted-index subsystem (postings, DFs, tiers).

        Subclasses with more than one storage tier (the disk-segmented
        corpus in :mod:`repro.corpus.segments`) override this with a
        facade of the same query surface; every read in this class goes
        through the property so tier routing is transparent."""
        return self._index

    @property
    def columns(self) -> RecordStore:
        """The columnar record backing (read-only contract: consumers
        stream id runs and scalars; all writes go through the corpus).
        Overridden by tiered subclasses — see :attr:`index`."""
        return self._store

    def record_at(self, position: int) -> RecordView:
        """The (lazy view of the) record at ``position`` (add order)."""
        return self.columns.view(position)

    def text_at(self, position: int) -> str:
        """The raw sentence at ``position`` — one list read, no view."""
        return self.columns.text_at(position)

    def is_correct(self, position: int) -> bool:
        """O(1) verdict test for the record at ``position`` — consumers
        filtering candidate positions use this instead of re-reading
        :meth:`record_at` per candidate."""
        return self.index.is_correct(position)

    def verdict_at(self, position: int) -> Correctness:
        """The verdict of the record at ``position``, off the index."""
        return self.index.verdict_at(position)

    def keyword_positions(self, keyword: str) -> tuple[int, ...]:
        """Positions of records tagged with ``keyword`` (add order)."""
        return self.index.keyword_positions(keyword.lower())

    def token_positions(self, token: str) -> tuple[int, ...]:
        """Positions of records whose text contains ``token`` (add order)."""
        return self.index.token_positions(token)

    def token_set(self, position: int) -> frozenset[str]:
        """The token set of the record at ``position``, decoded from the
        columnar id run (bounded memo cache for hot candidates)."""
        return self.columns.token_set(position)

    def keyword_set(self, position: int) -> frozenset[str]:
        """The lower-cased keyword set of the record at ``position``."""
        return self.columns.keyword_set(position)

    def correct_positions(self) -> Iterator[tuple[int, RecordView]]:
        """(position, record) pairs for known-correct records, add order.

        Positions index :meth:`token_set`/:meth:`keyword_set`, letting
        suggestion search scan candidates without touching the tokenizer.
        """
        view = self.columns.view
        for position in self.index.iter_verdict_positions(Correctness.CORRECT):
            yield position, view(position)

    # -------------------------------------------------- partition and merge

    def fork(self) -> "CorpusReplica":
        """A shard replica over the current state (reads = this snapshot,
        writes buffered until :meth:`merge`)."""
        return CorpusReplica(self)

    def merge(self, replica: "CorpusReplica") -> int:
        """Fold one replica's buffered records into the corpus.

        Replica records interleave *behind the fork watermark* in origin
        order — ``(message seq, per-message sentence index)``, captured
        at supervision time — so merging the replicas of one barrier in
        any order produces the same record order, ids, columns and
        inverted postings as a single store fed the records in global
        post order.  Records already merged this barrier (by sibling
        replicas) are materialised back out of the columns, re-sorted
        together with the new ones, and re-ingested; eviction and
        re-ingestion are O(barrier batch), not O(corpus).

        Returns the number of records merged from ``replica``.
        """
        floor = replica.base_len
        if floor > len(self):
            raise ValueError(
                f"replica forked at {floor} but corpus holds {len(self)} records"
            )
        if self._merge_floor != floor:
            # First replica of a new barrier: the tail (if any) belongs
            # to an older, already-finalised barrier.
            self._merge_floor = floor
            self._merge_keys = []
        columns = self.columns
        tail: list[tuple[tuple[int, int], CorpusRecord, frozenset[str]]] = [
            (
                key,
                columns.materialize(floor + offset),
                columns.token_set(floor + offset),
            )
            for offset, key in enumerate(self._merge_keys)
        ]
        merged = len(replica.pending)
        tail.extend(replica.pending)
        tail.sort(key=lambda entry: entry[0])
        self._evict_tail(floor)
        for _key, record, token_set in tail:
            record.record_id = len(self)
            self._ingest(record, token_set)
        self._merge_keys = [entry[0] for entry in tail]
        return merged

    def snapshot(self) -> tuple[dict, ...]:
        """Canonical comparable value: every record, in store order."""
        to_dict = self.columns.to_dict
        return tuple(to_dict(position) for position in range(len(self)))

    # --------------------------------------------------------- diagnostics

    def memory_stats(self) -> dict[str, int]:
        """Heap accounting across columns, vocabularies and postings —
        the ``corpus_memory`` bench workload's bytes/record source."""
        stats = self._store.memory_stats()
        stats["index_payload_bytes"] = self._index.stats()["payload_bytes"]
        stats["total_bytes"] += stats["index_payload_bytes"]
        return stats

    # --------------------------------------------------------- persistence

    def to_columnar(self) -> dict:
        """The whole corpus as one JSON-ready columnar document:
        vocabularies + columns, no per-record rows.  Restoring rebuilds
        the inverted index from the interned id runs, so neither the
        tokenizer nor the keyword normaliser runs again."""
        return {
            "format": CORPUS_COLUMNAR_FORMAT,
            "records": len(self._store),
            "vocabularies": self._vocabs.dump(),
            "columns": self._store.dump_columns(),
        }

    def validate_columnar(self, data: dict) -> None:
        """Check ``data`` is a document this corpus can restore, without
        mutating anything.  The segmented subclass extends this to
        open-and-verify every referenced segment file, which is what
        lets recovery quarantine a snapshot whose segments are gone."""
        if data.get("format") != CORPUS_COLUMNAR_FORMAT:
            if data.get("format") == "repro-corpus-segmented/1":
                raise ValueError(
                    "segmented corpus document: restore needs a SegmentedCorpus "
                    "(configure corpus_segment_records / --corpus-segment-records)"
                )
            raise ValueError(f"not a {CORPUS_COLUMNAR_FORMAT} document")

    def restore_columnar(self, data: dict) -> None:
        """Replace this corpus's contents from a columnar document.

        In place — consumers holding the corpus object (agents, the QA
        system, suggestion search) keep their reference.  The index is
        rebuilt positionally from the stored id runs: zero tokenizer
        calls, zero string hashing beyond vocabulary re-interning.
        """
        if data.get("format") != CORPUS_COLUMNAR_FORMAT:
            if data.get("format") == "repro-corpus-segmented/1":
                raise ValueError(
                    "segmented corpus document: restore needs a SegmentedCorpus "
                    "(configure corpus_segment_records / --corpus-segment-records)"
                )
            raise ValueError(f"not a {CORPUS_COLUMNAR_FORMAT} document")
        index_config = self._index.config
        vocabs = CorpusVocabularies()
        vocabs.restore(data["vocabularies"])
        store = RecordStore(vocabs)
        store.load_columns(data["columns"])
        index = CorpusIndex(index_config, vocabularies=vocabs)
        for position in range(len(store)):
            index.append_ids(
                VERDICT_FOR_CODE[store.verdict_code_at(position)],
                store.keyword_id_run(position),
                store.token_id_run(position),
                store.user_id_at(position),
            )
        self._vocabs = vocabs
        self._store = store
        self._index = index
        self._merge_floor = None
        self._merge_keys = []

    def save(self, path: str | Path) -> None:
        """Write the corpus as one columnar JSON document (arrays +
        vocabularies), so :meth:`load` restores without re-tokenising."""
        Path(path).write_text(
            json.dumps(self.to_columnar(), ensure_ascii=False) + "\n", encoding="utf-8"
        )

    @classmethod
    def load(
        cls, path: str | Path, index_config: IndexConfig | None = None
    ) -> "LearnerCorpus":
        """Read a corpus written by :meth:`save` — the columnar document,
        or the legacy per-record JSONL shape (re-ingested row by row)."""
        corpus = cls(index_config)
        text = Path(path).read_text(encoding="utf-8").strip()
        if not text:
            return corpus
        first = json.loads(text.splitlines()[0])
        if isinstance(first, dict) and first.get("format") == CORPUS_COLUMNAR_FORMAT:
            corpus.restore_columnar(first)
            return corpus
        for line in text.splitlines():
            line = line.strip()
            if line:
                corpus.add(CorpusRecord.from_dict(json.loads(line)))
        return corpus


class CorpusReplica:
    """One worker's shard-local view of a :class:`LearnerCorpus`.

    Reads (suggestion-search queries, QA corpus fallback, statistics)
    delegate to the base store, which the runtime freezes for the length
    of a drain cycle — every worker of a barrier therefore analyses
    against the *same* snapshot, which is what makes batch-wide analysis
    memoisation sound.  Appends are buffered locally as plain
    :class:`CorpusRecord` rows, tagged with their origin ``(message seq,
    per-message sentence index)``, and only reach the base columns in
    :meth:`LearnerCorpus.merge`.  A replica is single-owner: exactly one
    worker writes it, and merge/rebase happen at the barrier with no
    workers running.
    """

    __slots__ = ("_base", "base_len", "_pending", "_origin_seq", "_origin_n")

    def __init__(self, base: LearnerCorpus) -> None:
        self._base = base
        self.base_len = len(base)
        self._pending: list[tuple[tuple[int, int], CorpusRecord, frozenset[str]]] = []
        self._origin_seq = 0
        self._origin_n = 0

    # ----------------------------------------------------- replica protocol

    @property
    def base(self) -> LearnerCorpus:
        return self._base

    @property
    def pending(self) -> list[tuple[tuple[int, int], CorpusRecord, frozenset[str]]]:
        """Buffered (origin, record, token set) appends, in write order."""
        return self._pending

    def begin_origin(self, seq: int) -> None:
        """Tag subsequent appends as originating from message ``seq``."""
        self._origin_seq = seq
        self._origin_n = 0

    def rebase(self) -> None:
        """Drop the local buffer and snapshot the (merged) base anew."""
        self._pending = []
        self.base_len = len(self._base)

    # -------------------------------------------------------------- writing

    def next_id(self) -> int:
        """Provisional id; the merge renumbers to the final position."""
        return self.base_len + len(self._pending)

    def add(
        self, record: CorpusRecord, tokens: tuple[str, ...] | None = None
    ) -> CorpusRecord:
        token_set = (
            frozenset(tokens) if tokens is not None else frozenset(tokenize(record.text).words)
        )
        self._pending.append(((self._origin_seq, self._origin_n), record, token_set))
        self._origin_n += 1
        return record

    # ------------------------------------------------------------- queries
    # All reads see the fork-point snapshot: the base store, which only
    # changes at merge barriers while no worker is draining.

    def __len__(self) -> int:
        return self.base_len + len(self._pending)

    def __iter__(self) -> Iterator[RecordView]:
        return iter(self._base)

    def __getattr__(self, name: str):
        # Query primitives (record_at, token_positions, correct_records,
        # columns, ...) delegate wholesale; writes are overridden above.
        # object.__getattribute__ keeps delegation out of the pickle
        # path: while unpickling, special-method probes arrive before
        # _base is restored and must raise, not recurse.
        try:
            base = object.__getattribute__(self, "_base")
        except AttributeError:
            raise AttributeError(name) from None
        return getattr(base, name)

    def __getstate__(self) -> dict:
        """Explicit pickle surface: the slots, nothing implicit.

        The base store travels with the replica — a replica is only
        meaningful against its fork-point snapshot — and everything in
        the slot set is plain data (the corpus holds no locks or caches
        that cannot cross a process).
        """
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
