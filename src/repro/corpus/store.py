"""The Learner Corpus store: append, query, persist.

A deliberately simple in-memory store with JSON-lines persistence — the
paper's corpus is a database of analysed utterances, and every consumer
(statistic analyzer, suggestion search, QA mining) works off these query
primitives.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator

from .records import Correctness, CorpusRecord


class LearnerCorpus:
    """Append-only collection of :class:`CorpusRecord`."""

    def __init__(self) -> None:
        self._records: list[CorpusRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CorpusRecord]:
        return iter(self._records)

    # ------------------------------------------------------------- writing

    def next_id(self) -> int:
        return len(self._records)

    def add(self, record: CorpusRecord) -> CorpusRecord:
        """Append a record (ids must be monotonic; use :meth:`next_id`)."""
        self._records.append(record)
        return record

    # ------------------------------------------------------------- queries

    def records(self) -> list[CorpusRecord]:
        return list(self._records)

    def filter(self, predicate: Callable[[CorpusRecord], bool]) -> list[CorpusRecord]:
        return [record for record in self._records if predicate(record)]

    def by_user(self, user: str) -> list[CorpusRecord]:
        return self.filter(lambda r: r.user == user)

    def by_verdict(self, verdict: Correctness) -> list[CorpusRecord]:
        return self.filter(lambda r: r.verdict == verdict)

    def correct_records(self) -> list[CorpusRecord]:
        return self.by_verdict(Correctness.CORRECT)

    def with_keyword(self, keyword: str) -> list[CorpusRecord]:
        needle = keyword.lower()
        return self.filter(lambda r: needle in (k.lower() for k in r.keywords))

    # --------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        """Write the corpus as JSON lines."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.to_dict(), ensure_ascii=False) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "LearnerCorpus":
        """Read a corpus previously written by :meth:`save`."""
        corpus = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    corpus.add(CorpusRecord.from_dict(json.loads(line)))
        return corpus
