"""The Learner Corpus store: append, query, persist.

A deliberately simple in-memory store with JSON-lines persistence — the
paper's corpus is a database of analysed utterances, and every consumer
(statistic analyzer, suggestion search, QA mining) works off these query
primitives.

Because suggestion search runs on *every* detected syntax error, the store
maintains three ingestion-time indexes so per-query work stays flat as the
corpus grows:

* a **token-set cache** — each record's tokenised word set is computed once
  when the record is added (or loaded), not once per query;
* a **verdict index** — ``by_verdict``/``correct_records`` return without
  scanning the whole corpus;
* an **inverted keyword index** — ``with_keyword`` and keyword-constrained
  candidate scans jump straight to the matching records;
* an **inverted token index** — suggestion search's unconstrained path
  (no keyword floor) retrieves candidates by shared surface tokens
  instead of walking every correct record.

Records are snapshotted at :meth:`LearnerCorpus.add` time: the indexes
read ``verdict``/``keywords``/``text`` once, on ingestion.  Treat a
record as immutable after adding it — mutating one afterwards would
desynchronise the index-backed queries from ``filter``-style scans.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterator

from repro.linkgrammar.tokenizer import tokenize

from .records import Correctness, CorpusRecord


class LearnerCorpus:
    """Append-only collection of :class:`CorpusRecord`."""

    def __init__(self) -> None:
        self._records: list[CorpusRecord] = []
        # Ingestion-time caches, keyed by record position (== add order).
        self._token_sets: list[frozenset[str]] = []
        self._keyword_sets: list[frozenset[str]] = []
        self._by_verdict: dict[Correctness, list[int]] = {}
        self._keyword_index: dict[str, list[int]] = {}
        self._token_index: dict[str, list[int]] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CorpusRecord]:
        return iter(self._records)

    # ------------------------------------------------------------- writing

    def next_id(self) -> int:
        return len(self._records)

    def add(
        self, record: CorpusRecord, tokens: tuple[str, ...] | None = None
    ) -> CorpusRecord:
        """Append a record (ids must be monotonic; use :meth:`next_id`).

        Tokenisation and keyword normalisation happen here, once, so
        every later similarity query is a cache lookup.  Callers that
        already tokenised ``record.text`` (the supervision pipeline)
        pass ``tokens`` to skip the redundant tokenizer run.
        """
        position = len(self._records)
        self._records.append(record)
        token_set = (
            frozenset(tokens) if tokens is not None else frozenset(tokenize(record.text).words)
        )
        self._token_sets.append(token_set)
        keywords = frozenset(k.lower() for k in record.keywords)
        self._keyword_sets.append(keywords)
        self._by_verdict.setdefault(record.verdict, []).append(position)
        for keyword in keywords:
            self._keyword_index.setdefault(keyword, []).append(position)
        for token in token_set:
            self._token_index.setdefault(token, []).append(position)
        return record

    # ------------------------------------------------------------- queries

    def records(self) -> list[CorpusRecord]:
        return list(self._records)

    def filter(self, predicate: Callable[[CorpusRecord], bool]) -> list[CorpusRecord]:
        return [record for record in self._records if predicate(record)]

    def by_user(self, user: str) -> list[CorpusRecord]:
        return self.filter(lambda r: r.user == user)

    def by_verdict(self, verdict: Correctness) -> list[CorpusRecord]:
        return [self._records[i] for i in self._by_verdict.get(verdict, ())]

    def correct_records(self) -> list[CorpusRecord]:
        return self.by_verdict(Correctness.CORRECT)

    def with_keyword(self, keyword: str) -> list[CorpusRecord]:
        positions = self._keyword_index.get(keyword.lower(), ())
        return [self._records[i] for i in positions]

    # ---------------------------------------------------- similarity caches

    def record_at(self, position: int) -> CorpusRecord:
        """The record at ``position`` (add order)."""
        return self._records[position]

    def keyword_positions(self, keyword: str) -> tuple[int, ...]:
        """Positions of records tagged with ``keyword`` (add order)."""
        return tuple(self._keyword_index.get(keyword.lower(), ()))

    def token_positions(self, token: str) -> tuple[int, ...]:
        """Positions of records whose text contains ``token`` (add order)."""
        return tuple(self._token_index.get(token, ()))

    def token_set(self, position: int) -> frozenset[str]:
        """The cached token set of the record at ``position`` (add order)."""
        return self._token_sets[position]

    def keyword_set(self, position: int) -> frozenset[str]:
        """The cached lower-cased keyword set of the record at ``position``."""
        return self._keyword_sets[position]

    def correct_positions(self) -> Iterator[tuple[int, CorpusRecord]]:
        """(position, record) pairs for known-correct records, add order.

        Positions index :meth:`token_set`/:meth:`keyword_set`, letting
        suggestion search scan candidates without touching the tokenizer.
        """
        for position in self._by_verdict.get(Correctness.CORRECT, ()):
            yield position, self._records[position]

    # --------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        """Write the corpus as JSON lines."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(record.to_dict(), ensure_ascii=False) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "LearnerCorpus":
        """Read a corpus previously written by :meth:`save`."""
        corpus = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    corpus.add(CorpusRecord.from_dict(json.loads(line)))
        return corpus
