"""Disk segment tier for the learner corpus: frozen mmap-backed columns.

At the 10^6-record scale the ROADMAAP targets, even the columnar in-RAM
layout of :mod:`repro.corpus.records` eventually outgrows the heap.  The
corpus is append-only apart from bounded shard-merge tail rewrites, so
the classic LSM shape fits exactly:

* :class:`SegmentWriter` **freezes the immutable prefix** of a
  :class:`~repro.corpus.records.RecordStore` (plus the matching posting
  prefixes of its :class:`~repro.corpus.index.CorpusIndex`) into one
  immutable on-disk *segment file* — CRC-framed header + vocabulary
  dump, then the raw column arrays and delta posting runs, each section
  8-aligned and CRC-checked;
* :class:`FrozenSegment` opens a segment ``mmap``-backed and read-only,
  exposing the same decode surface as ``RecordStore`` (so
  :class:`~repro.corpus.records.RecordView` works unchanged against it)
  plus per-family frozen posting runs — nothing is materialised, every
  read is a page-cache hit on a zero-copy ``memoryview`` cast;
* :class:`SegmentedCorpus` is a drop-in
  :class:`~repro.corpus.store.LearnerCorpus` keeping a **hot in-RAM
  tail** and a list of frozen segments, with :class:`TieredColumns` /
  :class:`TieredIndex` facades that route positional reads to the
  owning tier and splice posting runs into :class:`TieredPostings` —
  suggestion search, the QA corpus fallback and the statistic analyzer
  stream across RAM+disk without knowing the boundary exists.

Crash semantics (``docs/corpus.md`` has the full lifecycle): a segment
is written to a ``*.seg.tmp`` sibling, fsynced, then atomically
``os.replace``d into place — a crash mid-write leaves only an ignorable
tmp file (unlinked on the next writer construction), and a torn or
corrupt segment file never loads (:class:`SegmentLoadError` covers every
framing, CRC and alignment failure).  Freeze boundaries are journaled by
the durability layer (``repro.durability.manager``), so recovery either
replays a freeze deterministically — same base, same count, same bytes,
atomically overwriting any orphan from a crash between rename and WAL
append — or skips it idempotently.
"""

from __future__ import annotations

import json
import mmap
import os
import zlib
from array import array
from bisect import bisect_left, bisect_right
from pathlib import Path
from tempfile import TemporaryDirectory
from typing import Iterable, Iterator

from repro.durability.faults import NO_FAULTS
from repro.durability.wal import HEADER_LENGTH, encode_frame

from .index import (
    _SKIP,
    CorpusIndex,
    IndexConfig,
    PostingList,
    intersect_count,
    intersect_iter,
)
from .records import (
    _CACHE_LIMIT,
    CODE_FOR_VERDICT,
    CORRECT_CODE,
    VERDICT_FOR_CODE,
    Correctness,
    CorpusRecord,
    CorpusVocabularies,
    RecordStore,
    RecordView,
)
from .store import CORPUS_COLUMNAR_FORMAT, LearnerCorpus

#: Format tag inside every segment file's header frame.
SEGMENT_FORMAT = "repro-corpus-segment/1"

#: Format tag of the snapshot document a :class:`SegmentedCorpus` emits:
#: segment *references* plus the in-RAM tail's columns.
CORPUS_SEGMENTED_FORMAT = "repro-corpus-segmented/1"

SEGMENT_SUFFIX = ".seg"
TMP_SUFFIX = ".seg.tmp"


class SegmentLoadError(ValueError):
    """A segment file failed to open or verify (torn, corrupt, missing,
    misaligned).  Loaders treat it as "this segment does not exist"."""


class FrozenTailError(ValueError):
    """A mutation tried to rewrite rows already frozen to disk.  The
    frozen prefix is immutable by construction; callers merging into a
    segmented corpus must fork at or above the freeze boundary."""


#: Per-record scalar columns: (section name, array typecode).  Section
#: names are the ``RecordStore`` attribute names without the underscore
#: (see :meth:`RecordStore.freeze_prefix`).
_SCALAR_SECTIONS = (
    ("record_ids", "I"),
    ("user_ids", "I"),
    ("room_ids", "I"),
    ("pattern_ids", "I"),
    ("link_ids", "I"),
    ("timestamps", "d"),
    ("verdicts", "B"),
    ("costs", "i"),
)

#: Variable-length id runs: (flat section, offset-table section).  The
#: issue offsets table is shared by the kind and word runs.
_RUN_SECTIONS = (
    ("token_ids", "token_offsets"),
    ("kw_ids", "kw_offsets"),
    ("raw_kw_ids", "raw_kw_offsets"),
    ("issue_kind_ids", "issue_offsets"),
    ("issue_word_ids", "issue_offsets"),
    ("note_ids", "note_offsets"),
)

#: Posting families persisted per segment.  ``tokens``/``keywords``/
#: ``users`` are keyed by interned term ids, ``verdicts`` by the stable
#: verdict byte codes.
_POSTING_FAMILIES = ("tokens", "keywords", "users", "verdicts")


def _read_frame(buffer, offset: int) -> tuple[bytes, int]:
    """Decode one WAL-style CRC frame at ``offset``; returns
    ``(payload, end_offset)``.  Any framing problem — truncation, bad
    separators, CRC mismatch — raises :class:`SegmentLoadError`, which
    is what guarantees a torn segment file never loads."""
    header = bytes(buffer[offset : offset + HEADER_LENGTH])
    if len(header) < HEADER_LENGTH or header[8:9] != b" " or header[17:18] != b" ":
        raise SegmentLoadError("truncated or malformed frame header")
    try:
        length = int(header[0:8], 16)
        crc = int(header[9:17], 16)
    except ValueError as exc:
        raise SegmentLoadError(f"malformed frame header: {header!r}") from exc
    start = offset + HEADER_LENGTH
    end = start + length
    payload = bytes(buffer[start:end])
    if len(payload) < length or bytes(buffer[end : end + 1]) != b"\n":
        raise SegmentLoadError("torn frame")
    if zlib.crc32(payload) != crc:
        raise SegmentLoadError("frame CRC mismatch")
    return payload, end + 1


class FrozenPostings:
    """One term's posting run inside a frozen segment: zero-copy
    ``memoryview('I')`` slices of the segment's gap and skip arrays,
    with the same read surface as
    :class:`~repro.corpus.index.PostingList` (positions are local to
    the segment; :class:`TieredPostings` rebases them globally).  The
    duck-typed ``_gaps``/``_skips`` attributes make
    :func:`~repro.corpus.index.intersect_iter` gallop over frozen runs
    unchanged."""

    __slots__ = ("_gaps", "_skips")

    def __init__(self, gaps, skips) -> None:
        self._gaps = gaps
        self._skips = skips

    def __len__(self) -> int:
        return len(self._gaps)

    def __bool__(self) -> bool:
        return len(self._gaps) > 0

    def __iter__(self) -> Iterator[int]:
        position = 0
        for gap in self._gaps:
            position += gap
            yield position

    @property
    def last(self) -> int:
        """The largest (segment-local) position; -1 when empty."""
        gaps = self._gaps
        if not len(gaps):
            return -1
        skips = self._skips
        block = len(skips) - 1
        position = skips[block]
        for i in range(block * _SKIP + 1, len(gaps)):
            position += gaps[i]
        return position

    @property
    def gaps(self):
        return self._gaps

    def positions(self) -> tuple[int, ...]:
        return tuple(self)

    def accumulate_into(self, counts: dict[int, int]) -> None:
        position = 0
        get = counts.get
        for gap in self._gaps:
            position += gap
            counts[position] = get(position, 0) + 1

    def nbytes(self) -> int:
        return self._gaps.nbytes + self._skips.nbytes


class _FrozenTexts:
    """The text column of a frozen segment: one UTF-8 blob plus a byte
    offset table, decoded per access — list-indexing compatible with
    ``RecordStore._texts`` so the shared decode helpers work."""

    __slots__ = ("_blob", "_offsets")

    def __init__(self, blob, offsets) -> None:
        self._blob = blob
        self._offsets = offsets

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, position: int) -> str:
        start = self._offsets[position]
        end = self._offsets[position + 1]
        return bytes(self._blob[start:end]).decode("utf-8")


class FrozenSegment:
    """One immutable on-disk segment, ``mmap``-backed and read-only.

    Exposes the :class:`~repro.corpus.records.RecordStore` decode
    surface over segment-*local* positions (``0 <= local < count``) so
    :class:`~repro.corpus.records.RecordView` binds to it unchanged,
    plus per-family posting lookups.  ``vocabs`` is normally the
    corpus's live shared vocabularies (term ids are append-only, so the
    ids a segment froze stay valid forever); opened standalone, the
    vocabulary dump embedded in the file is restored instead.
    """

    def __init__(self, path: str | Path, vocabs: CorpusVocabularies | None = None) -> None:
        self.path = Path(path)
        self._file = None
        self._mm = None
        self._exports: list = []
        self._raw: dict = {}
        self._closed = False
        try:
            self._file = open(self.path, "rb")
            self._mm = mmap.mmap(self._file.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            self.close()
            raise SegmentLoadError(
                f"cannot map segment {self.path.name}: {exc}"
            ) from exc
        try:
            self._load(vocabs)
        except SegmentLoadError:
            self.close()
            raise
        except Exception as exc:
            self.close()
            raise SegmentLoadError(f"segment {self.path.name}: {exc}") from exc

    # -------------------------------------------------------------- loading

    def _load(self, vocabs: CorpusVocabularies | None) -> None:
        mm = self._mm
        header_payload, offset = _read_frame(mm, 0)
        vocab_payload, offset = _read_frame(mm, offset)
        header = json.loads(header_payload)
        if header.get("format") != SEGMENT_FORMAT:
            raise SegmentLoadError(f"not a {SEGMENT_FORMAT} file")
        self.base = int(header["base"])
        self.count = int(header["count"])
        if self.base < 0 or self.count < 0:
            raise SegmentLoadError("negative base or count")
        blob_start = offset + (-offset) % 8
        root = memoryview(mm)
        self._exports.append(root)
        for name, (rel, length, crc) in header["sections"].items():
            start = blob_start + rel
            end = start + length
            if not 0 <= rel or end > len(mm):
                raise SegmentLoadError(f"section {name} out of bounds")
            view = root[start:end]
            # Register the export *before* validating: a raise below
            # keeps this frame alive via the traceback, and close() must
            # still be able to release the view and unmap the file.
            self._exports.append(view)
            if zlib.crc32(view) != crc:
                raise SegmentLoadError(f"section {name} CRC mismatch")
            self._raw[name] = view
        if vocabs is None:
            vocabs = CorpusVocabularies()
            vocabs.restore(json.loads(vocab_payload))
        self.vocabs = vocabs
        count = self.count

        def section(name: str, typecode: str):
            view = self._raw.get(name)
            if view is None:
                raise SegmentLoadError(f"section {name} missing")
            if typecode:
                itemsize = array(typecode).itemsize
                if len(view) % itemsize:
                    raise SegmentLoadError(f"section {name} misaligned")
                view = view.cast(typecode)
                self._exports.append(view)
            return view

        for name, typecode in _SCALAR_SECTIONS:
            view = section(name, typecode)
            if len(view) != count:
                raise SegmentLoadError(f"column {name} misaligned with count")
            setattr(self, "_" + name, view)
        for offsets_name in dict.fromkeys(off for _, off in _RUN_SECTIONS):
            view = section(offsets_name, "I")
            if len(view) != count + 1 or view[0] != 0:
                raise SegmentLoadError(f"offset table {offsets_name} malformed")
            setattr(self, "_" + offsets_name, view)
        for flat_name, offsets_name in _RUN_SECTIONS:
            view = section(flat_name, "I")
            if len(view) != getattr(self, "_" + offsets_name)[-1]:
                raise SegmentLoadError(f"column {flat_name} misaligned with its offsets")
            setattr(self, "_" + flat_name, view)
        text_offsets = section("text_offsets", "I")
        blob = section("text_blob", "")
        if (
            len(text_offsets) != count + 1
            or text_offsets[0] != 0
            or text_offsets[-1] != len(blob)
        ):
            raise SegmentLoadError("text sections misaligned")
        self._texts = _FrozenTexts(blob, text_offsets)
        self._postings_tables: dict[str, tuple] = {}
        for family in _POSTING_FAMILIES:
            terms = section(f"{family}_terms", "I")
            offs = section(f"{family}_offsets", "I")
            skip_offs = section(f"{family}_skip_offsets", "I")
            gaps = section(f"{family}_gaps", "I")
            skips = section(f"{family}_skips", "I")
            if (
                len(offs) != len(terms) + 1
                or len(skip_offs) != len(terms) + 1
                or offs[0] != 0
                or skip_offs[0] != 0
                or offs[-1] != len(gaps)
                or skip_offs[-1] != len(skips)
            ):
                raise SegmentLoadError(f"posting family {family} misaligned")
            self._postings_tables[family] = (terms, offs, skip_offs, gaps, skips)
        # Bounded memo caches, same policy as RecordStore.
        self._views: dict[int, RecordView] = {}
        self._token_set_cache: dict[int, frozenset[str]] = {}
        self._keyword_set_cache: dict[int, frozenset[str]] = {}
        self._text_cache: dict[int, str] = {}
        self.disk_bytes = len(mm)

    def close(self) -> None:
        """Release every exported view, the map and the file handle.
        Idempotent; reads after close raise."""
        if self._closed:
            return
        self._closed = True
        # Casts were exported after their parent views: release in
        # reverse creation order, root view last (exported-buffer rule).
        for view in reversed(self._exports):
            view.release()
        self._exports = []
        self._raw = {}
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __len__(self) -> int:
        return self.count

    def __reduce__(self):
        # A segment pickled standalone reopens from its path with its
        # embedded vocabulary dump; SegmentedCorpus re-shares the live
        # vocabularies itself in __setstate__.
        return (type(self), (str(self.path),))

    # ----------------------------------------- RecordStore decode surface

    def view(self, position: int) -> RecordView:
        view = self._views.get(position)
        if view is None:
            if len(self._views) >= _CACHE_LIMIT:
                self._views.clear()
            view = self._views[position] = RecordView(self, position)
        return view

    def materialize(self, position: int) -> CorpusRecord:
        vocabs = self.vocabs
        return CorpusRecord(
            record_id=self._record_ids[position],
            user=vocabs.users.terms[self._user_ids[position]],
            room=vocabs.rooms.terms[self._room_ids[position]],
            text=self._texts[position],
            timestamp=self._timestamps[position],
            pattern=vocabs.patterns.terms[self._pattern_ids[position]],
            verdict=VERDICT_FOR_CODE[self._verdicts[position]],
            syntax_issues=self.syntax_issues_at(position),
            semantic_issues=self.semantic_issues_at(position),
            keywords=self.keywords_at(position),
            links=vocabs.links.terms[self._link_ids[position]],
            cost=self._costs[position],
        )

    def to_dict(self, position: int) -> dict:
        vocabs = self.vocabs
        return {
            "record_id": self._record_ids[position],
            "user": vocabs.users.terms[self._user_ids[position]],
            "room": vocabs.rooms.terms[self._room_ids[position]],
            "text": self._texts[position],
            "timestamp": self._timestamps[position],
            "pattern": vocabs.patterns.terms[self._pattern_ids[position]],
            "verdict": VERDICT_FOR_CODE[self._verdicts[position]].value,
            "syntax_issues": [list(pair) for pair in self.syntax_issues_at(position)],
            "semantic_issues": self.semantic_issues_at(position),
            "keywords": self.keywords_at(position),
            "links": vocabs.links.terms[self._link_ids[position]],
            "cost": self._costs[position],
        }

    def text_at(self, position: int) -> str:
        # Decoded-text memo, same bounded policy as the set caches: the
        # in-RAM store hands back an already-built str, and the scoring
        # loops re-read the same hot candidates — paying the UTF-8
        # decode once keeps the frozen tier's point reads competitive.
        cached = self._text_cache.get(position)
        if cached is None:
            if len(self._text_cache) >= _CACHE_LIMIT:
                self._text_cache.clear()
            cached = self._text_cache[position] = self._texts[position]
        return cached

    def record_id_at(self, position: int) -> int:
        return self._record_ids[position]

    def verdict_code_at(self, position: int) -> int:
        return self._verdicts[position]

    def pattern_id_at(self, position: int) -> int:
        return self._pattern_ids[position]

    def user_id_at(self, position: int) -> int:
        return self._user_ids[position]

    def token_id_run(self, position: int):
        return self._token_ids[
            self._token_offsets[position] : self._token_offsets[position + 1]
        ]

    def keyword_id_run(self, position: int):
        return self._kw_ids[
            self._kw_offsets[position] : self._kw_offsets[position + 1]
        ]

    def raw_keyword_id_run(self, position: int):
        return self._raw_kw_ids[
            self._raw_kw_offsets[position] : self._raw_kw_offsets[position + 1]
        ]

    def issue_kind_id_run(self, position: int):
        return self._issue_kind_ids[
            self._issue_offsets[position] : self._issue_offsets[position + 1]
        ]

    def note_count(self, position: int) -> int:
        return self._note_offsets[position + 1] - self._note_offsets[position]

    def token_set(self, position: int) -> frozenset[str]:
        cached = self._token_set_cache.get(position)
        if cached is None:
            if len(self._token_set_cache) >= _CACHE_LIMIT:
                self._token_set_cache.clear()
            terms = self.vocabs.tokens.terms
            cached = self._token_set_cache[position] = frozenset(
                terms[token_id] for token_id in self.token_id_run(position)
            )
        return cached

    def keyword_set(self, position: int) -> frozenset[str]:
        cached = self._keyword_set_cache.get(position)
        if cached is None:
            if len(self._keyword_set_cache) >= _CACHE_LIMIT:
                self._keyword_set_cache.clear()
            terms = self.vocabs.keywords.terms
            cached = self._keyword_set_cache[position] = frozenset(
                terms[keyword_id] for keyword_id in self.keyword_id_run(position)
            )
        return cached

    def keywords_at(self, position: int) -> list[str]:
        terms = self.vocabs.raw_keywords.terms
        return [terms[keyword_id] for keyword_id in self.raw_keyword_id_run(position)]

    def syntax_issues_at(self, position: int) -> list[tuple[str, str]]:
        kinds = self.vocabs.issue_kinds.terms
        words = self.vocabs.tokens.terms
        start = self._issue_offsets[position]
        end = self._issue_offsets[position + 1]
        kind_ids = self._issue_kind_ids
        word_ids = self._issue_word_ids
        return [(kinds[kind_ids[i]], words[word_ids[i]]) for i in range(start, end)]

    def semantic_issues_at(self, position: int) -> list[str]:
        notes = self.vocabs.notes.terms
        return [
            notes[note_id]
            for note_id in self._note_ids[
                self._note_offsets[position] : self._note_offsets[position + 1]
            ]
        ]

    # ----------------------------------------------------------- postings

    def postings(self, family: str, key: int) -> FrozenPostings | None:
        """The frozen posting run of ``key`` in ``family`` (local
        positions), or None when the term has no postings here."""
        terms, offs, skip_offs, gaps, skips = self._postings_tables[family]
        i = bisect_left(terms, key)
        if i >= len(terms) or terms[i] != key:
            return None
        return FrozenPostings(
            gaps[offs[i] : offs[i + 1]], skips[skip_offs[i] : skip_offs[i + 1]]
        )

    def df(self, family: str, key: int) -> int:
        """Document frequency of ``key`` within this segment (0 when
        absent) — an offset-table subtraction, no run decode."""
        terms, offs, _skip_offs, _gaps, _skips = self._postings_tables[family]
        i = bisect_left(terms, key)
        if i >= len(terms) or terms[i] != key:
            return 0
        return offs[i + 1] - offs[i]

    def family_terms(self, family: str):
        """The sorted term keys carrying postings in ``family``."""
        return self._postings_tables[family][0]

    def postings_stats(self) -> dict[str, int]:
        """Per-segment counterpart of ``CorpusIndex.stats()``'s size
        accounting (the verdict byte column counts as payload, exactly
        like the in-RAM index's dense code array)."""
        terms = postings = payload = 0
        for _family, (t, _offs, _skip_offs, gaps, skips) in self._postings_tables.items():
            terms += len(t)
            postings += len(gaps)
            payload += gaps.nbytes + skips.nbytes
        return {"terms": terms, "postings": postings, "payload_bytes": payload + self.count}


def validate_segment_file(path: str | Path) -> dict[str, int]:
    """Open-and-verify ``path`` (every frame and section CRC-checked);
    returns ``{"base", "count"}`` or raises :class:`SegmentLoadError`."""
    segment = FrozenSegment(path)
    try:
        return {"base": segment.base, "count": segment.count}
    finally:
        segment.close()


class SegmentWriter:
    """Writes (and compacts) immutable segment files crash-atomically.

    Every write goes to a ``*.seg.tmp`` sibling, is flushed + fsynced,
    then ``os.replace``d to its final ``segment-<base>-<count>.seg``
    name — a reader can never observe a half-written segment under the
    final name, and construction unlinks any stale tmp files a crashed
    writer left behind.  ``faults`` (a durability
    :class:`~repro.durability.faults.FaultClock`) steps the
    ``segment.freeze.*`` / ``segment.compact.*`` boundaries so the
    crash sweep can kill the process at each one.
    """

    def __init__(self, directory: str | Path, faults=None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.faults = faults if faults is not None else NO_FAULTS
        for stale in self.directory.glob("*" + TMP_SUFFIX):
            stale.unlink()

    @staticmethod
    def segment_name(base: int, count: int) -> str:
        return f"segment-{base:012d}-{count:012d}{SEGMENT_SUFFIX}"

    def freeze(
        self,
        base: int,
        count: int,
        store: RecordStore,
        index: CorpusIndex,
        vocabs: CorpusVocabularies,
    ) -> FrozenSegment:
        """Freeze the first ``count`` records of ``store``/``index``
        (tail-local positions) into a segment starting at global
        position ``base``; returns the opened segment."""
        sections = store.freeze_prefix(count)
        tables = {
            "tokens": index._tokens,
            "keywords": index._keywords,
            "users": index._users,
            "verdicts": {
                CODE_FOR_VERDICT[verdict]: postings
                for verdict, postings in index._by_verdict.items()
            },
        }
        for family, table in tables.items():
            self._posting_sections(sections, family, table, count)
        return self._write(base, count, sections, vocabs, "segment.freeze")

    def compact(
        self, segments: list[FrozenSegment], vocabs: CorpusVocabularies
    ) -> FrozenSegment:
        """Merge contiguous frozen segments into one: columns are byte
        concatenations (offset tables rebased), posting runs re-encoded
        over the merged local position space."""
        if len(segments) < 2:
            raise ValueError("compaction needs at least two segments")
        base = segments[0].base
        count = sum(segment.count for segment in segments)
        expected = base
        for segment in segments:
            if segment.base != expected:
                raise ValueError(
                    f"segments are not contiguous at base {segment.base}"
                )
            expected += segment.count
        sections: dict[str, bytes] = {}
        for name, _typecode in _SCALAR_SECTIONS:
            sections[name] = b"".join(bytes(seg._raw[name]) for seg in segments)
        offset_names = tuple(dict.fromkeys(off for _, off in _RUN_SECTIONS))
        for offsets_name in offset_names + ("text_offsets",):
            merged = array("I", [0])
            for seg in segments:
                table = (
                    seg._texts._offsets
                    if offsets_name == "text_offsets"
                    else getattr(seg, "_" + offsets_name)
                )
                shift = merged[-1]
                merged.extend(value + shift for value in table[1:])
            sections[offsets_name] = merged.tobytes()
        for flat_name in tuple(name for name, _ in _RUN_SECTIONS) + ("text_blob",):
            sections[flat_name] = b"".join(bytes(seg._raw[flat_name]) for seg in segments)
        for family in _POSTING_FAMILIES:
            table: dict[int, PostingList] = {}
            for seg in segments:
                shift = seg.base - base
                for key in seg.family_terms(family):
                    postings = table.get(key)
                    if postings is None:
                        postings = table[key] = PostingList()
                    for local in seg.postings(family, key):
                        postings.append(shift + local)
            self._posting_sections(sections, family, table, count)
        return self._write(base, count, sections, vocabs, "segment.compact")

    @staticmethod
    def _posting_sections(
        sections: dict[str, bytes], family: str, table: dict, upto: int
    ) -> None:
        """Append one posting family's five sections: sorted term keys,
        per-term gap/skip extents, and the concatenated gap and skip
        runs, each term's run cut at local position ``upto`` via the
        skip-table-assisted :meth:`PostingList.prefix_length`."""
        terms = array("I")
        offsets = array("I", [0])
        skip_offsets = array("I", [0])
        gaps = array("I")
        skips = array("I")
        for key in sorted(table):
            postings = table[key]
            taken = postings.prefix_length(upto)
            if taken == 0:
                continue
            terms.append(key)
            gaps.extend(postings._gaps[:taken])
            offsets.append(len(gaps))
            skips.extend(postings._skips[: (taken + _SKIP - 1) // _SKIP])
            skip_offsets.append(len(skips))
        sections[f"{family}_terms"] = terms.tobytes()
        sections[f"{family}_offsets"] = offsets.tobytes()
        sections[f"{family}_skip_offsets"] = skip_offsets.tobytes()
        sections[f"{family}_gaps"] = gaps.tobytes()
        sections[f"{family}_skips"] = skips.tobytes()

    def _write(
        self,
        base: int,
        count: int,
        sections: dict[str, bytes],
        vocabs: CorpusVocabularies,
        prefix: str,
    ) -> FrozenSegment:
        faults = self.faults
        faults.step(prefix + ".begin")
        header_sections: dict[str, list[int]] = {}
        blob = bytearray()
        for name in sorted(sections):
            payload = sections[name]
            blob += b"\x00" * ((-len(blob)) % 8)
            header_sections[name] = [len(blob), len(payload), zlib.crc32(payload)]
            blob += payload
        header = {
            "format": SEGMENT_FORMAT,
            "base": base,
            "count": count,
            "sections": header_sections,
        }
        lead = encode_frame(
            json.dumps(header, separators=(",", ":")).encode("utf-8")
        ) + encode_frame(
            json.dumps(
                vocabs.dump(), ensure_ascii=False, separators=(",", ":")
            ).encode("utf-8")
        )
        data = lead + b"\x00" * ((-len(lead)) % 8) + bytes(blob)
        path = self.directory / self.segment_name(base, count)
        tmp = self.directory / (path.name + ".tmp")
        with open(tmp, "wb") as handle:
            if faults.active:
                # Leave the torn-tmp boundary as a real on-disk state,
                # exactly like the WAL's split append.
                half = len(data) // 2
                handle.write(data[:half])
                handle.flush()
                faults.step(prefix + ".torn")
                handle.write(data[half:])
            else:
                handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        faults.step(prefix + ".written")
        os.replace(tmp, path)
        faults.step(prefix + ".committed")
        return FrozenSegment(path, vocabs)


class TieredPostings:
    """One term's postings spliced across tiers: an ordered tuple of
    ``(global_base, run)`` parts (frozen segments first, then the hot
    tail), presenting the global-position read surface of
    :class:`~repro.corpus.index.PostingList`.  Iteration, accumulation
    and the ``gaps`` stream rebase each part's local running sum by its
    base — nothing is merged or materialised."""

    __slots__ = ("_parts",)

    def __init__(self, parts: Iterable[tuple[int, object]]) -> None:
        self._parts = tuple(parts)

    @property
    def parts(self) -> tuple:
        """The ``(base, run)`` splice, ascending bases, no empty runs."""
        return self._parts

    def __len__(self) -> int:
        return sum(len(part) for _base, part in self._parts)

    def __bool__(self) -> bool:
        return bool(self._parts)

    def __iter__(self) -> Iterator[int]:
        for base, part in self._parts:
            position = base
            for gap in part._gaps:
                position += gap
                yield position

    def positions(self) -> tuple[int, ...]:
        return tuple(self)

    @property
    def last(self) -> int:
        if not self._parts:
            return -1
        base, part = self._parts[-1]
        return base + part.last

    @property
    def gaps(self):
        """Global delta stream (first gap absolute, like PostingList):
        consumers folding their own running sum — the budgeted capped
        walk — decode across tier boundaries without noticing them."""

        def stream():
            previous = 0
            for base, part in self._parts:
                local = 0
                for gap in part._gaps:
                    local += gap
                    yield base + local - previous
                    previous = base + local

        return stream()

    def accumulate_into(self, counts: dict[int, int]) -> None:
        get = counts.get
        for base, part in self._parts:
            position = base
            for gap in part._gaps:
                position += gap
                counts[position] = get(position, 0) + 1

    def nbytes(self) -> int:
        return sum(part.nbytes() for _base, part in self._parts)


def intersect_tiered_iter(a: TieredPostings, b: TieredPostings) -> Iterator[int]:
    """Stream the ascending intersection of two tiered posting runs.

    Both sides must come from the *same* corpus (same freeze
    boundaries), so any shared position lives in the part with the same
    base on both sides; each shared base runs the plain galloping
    :func:`~repro.corpus.index.intersect_iter` over its local runs."""
    other = {base: part for base, part in b.parts}
    for base, part in a.parts:
        match = other.get(base)
        if match is None:
            continue
        for local in intersect_iter(part, match):
            yield base + local


def intersect_tiered_count(a: TieredPostings, b: TieredPostings) -> int:
    count = 0
    for _position in intersect_tiered_iter(a, b):
        count += 1
    return count


def union_tiered_iter(a: TieredPostings, b: TieredPostings) -> Iterator[int]:
    """Stream the ascending, deduplicated union of two tiered runs — a
    two-pointer merge of the global iterators."""
    ia, ib = iter(a), iter(b)
    va = next(ia, None)
    vb = next(ib, None)
    while va is not None and vb is not None:
        if va < vb:
            yield va
            va = next(ia, None)
        elif vb < va:
            yield vb
            vb = next(ib, None)
        else:
            yield va
            va = next(ia, None)
            vb = next(ib, None)
    while va is not None:
        yield va
        va = next(ia, None)
    while vb is not None:
        yield vb
        vb = next(ib, None)


class TieredColumns:
    """The :class:`~repro.corpus.records.RecordStore` read surface over
    a segmented corpus: global positions route to the owning tier
    (bisect over the frozen segment bases, tail past the freeze
    boundary).  Holds only the corpus reference, so it stays valid
    across freezes and compactions."""

    __slots__ = (
        "_corpus",
        "_span_lo",
        "_span_hi",
        "_span_store",
        "_span_epoch",
        "_rows",
        "_rows_epoch",
    )

    def __init__(self, corpus: "SegmentedCorpus") -> None:
        self._corpus = corpus
        self._span_lo = 0
        self._span_hi = 0
        self._span_store = None
        self._span_epoch = -1
        self._rows: dict[int, tuple] = {}
        self._rows_epoch = -1

    def __len__(self) -> int:
        corpus = self._corpus
        return corpus._frozen_len + len(corpus._store)

    @property
    def vocabs(self) -> CorpusVocabularies:
        return self._corpus._vocabs

    def _locate(self, position: int) -> tuple[object, int]:
        """(owning tier, tier-local position) for a global position.

        Point reads arrive in segment-local runs (posting walks and the
        scoring scan go in ascending position order), so the last hit
        segment's span is memoised and re-checked before the bisect;
        ``_tier_epoch`` bumps on every freeze/compact/restore, which
        invalidates the memo without the facade holding segment refs.
        """
        corpus = self._corpus
        if position >= corpus._frozen_len:
            return corpus._store, position - corpus._frozen_len
        if (
            self._span_epoch == corpus._tier_epoch
            and self._span_lo <= position < self._span_hi
        ):
            return self._span_store, position - self._span_lo
        i = bisect_right(corpus._segment_bases, position) - 1
        segment = corpus._segments[i]
        base = segment.base
        self._span_lo = base
        self._span_hi = base + segment.count
        self._span_store = segment
        self._span_epoch = corpus._tier_epoch
        return segment, position - base

    def view(self, position: int) -> RecordView:
        store, local = self._locate(position)
        return store.view(local)

    def materialize(self, position: int) -> CorpusRecord:
        store, local = self._locate(position)
        return store.materialize(local)

    def to_dict(self, position: int) -> dict:
        store, local = self._locate(position)
        return store.to_dict(local)

    # The four accessors below are the scoring loop's per-candidate
    # reads (SuggestionSearch.find touches each once per candidate).
    # A hit on the frozen-row memo costs one dict get — the same price
    # the in-RAM columnar store charges — instead of a tier dispatch
    # plus the owning segment's own memo.

    def _frozen_row(self, position: int) -> tuple:
        """``(record_id, text, token_set, keyword_set)`` of a frozen
        row, memoised at the facade under the *global* position.

        The scoring loop reads all four per candidate through separate
        accessors, so one locate fills them together.  Frozen rows are
        immutable; the memo only invalidates wholesale when the tier
        layout changes (``_tier_epoch``), with the same bounded
        clear-on-overflow policy as the segment-level caches.
        """
        corpus = self._corpus
        rows = self._rows
        if self._rows_epoch != corpus._tier_epoch:
            rows.clear()
            self._rows_epoch = corpus._tier_epoch
        elif len(rows) >= _CACHE_LIMIT:
            rows.clear()
        store, local = self._locate(position)
        row = rows[position] = (
            store.record_id_at(local),
            store.text_at(local),
            store.token_set(local),
            store.keyword_set(local),
        )
        return row

    def text_at(self, position: int) -> str:
        corpus = self._corpus
        if position >= corpus._frozen_len:
            return corpus._store.text_at(position - corpus._frozen_len)
        row = self._rows.get(position)
        if row is not None and self._rows_epoch == corpus._tier_epoch:
            return row[1]
        return self._frozen_row(position)[1]

    def record_id_at(self, position: int) -> int:
        corpus = self._corpus
        if position >= corpus._frozen_len:
            return corpus._store.record_id_at(position - corpus._frozen_len)
        row = self._rows.get(position)
        if row is not None and self._rows_epoch == corpus._tier_epoch:
            return row[0]
        return self._frozen_row(position)[0]

    def verdict_code_at(self, position: int) -> int:
        store, local = self._locate(position)
        return store.verdict_code_at(local)

    def pattern_id_at(self, position: int) -> int:
        store, local = self._locate(position)
        return store.pattern_id_at(local)

    def user_id_at(self, position: int) -> int:
        store, local = self._locate(position)
        return store.user_id_at(local)

    def token_id_run(self, position: int):
        store, local = self._locate(position)
        return store.token_id_run(local)

    def keyword_id_run(self, position: int):
        store, local = self._locate(position)
        return store.keyword_id_run(local)

    def raw_keyword_id_run(self, position: int):
        store, local = self._locate(position)
        return store.raw_keyword_id_run(local)

    def issue_kind_id_run(self, position: int):
        store, local = self._locate(position)
        return store.issue_kind_id_run(local)

    def note_count(self, position: int) -> int:
        store, local = self._locate(position)
        return store.note_count(local)

    def token_set(self, position: int) -> frozenset[str]:
        corpus = self._corpus
        if position >= corpus._frozen_len:
            return corpus._store.token_set(position - corpus._frozen_len)
        row = self._rows.get(position)
        if row is not None and self._rows_epoch == corpus._tier_epoch:
            return row[2]
        return self._frozen_row(position)[2]

    def keyword_set(self, position: int) -> frozenset[str]:
        corpus = self._corpus
        if position >= corpus._frozen_len:
            return corpus._store.keyword_set(position - corpus._frozen_len)
        row = self._rows.get(position)
        if row is not None and self._rows_epoch == corpus._tier_epoch:
            return row[3]
        return self._frozen_row(position)[3]

    def keywords_at(self, position: int) -> list[str]:
        store, local = self._locate(position)
        return store.keywords_at(local)

    def syntax_issues_at(self, position: int) -> list[tuple[str, str]]:
        store, local = self._locate(position)
        return store.syntax_issues_at(local)

    def semantic_issues_at(self, position: int) -> list[str]:
        store, local = self._locate(position)
        return store.semantic_issues_at(local)


class TieredIndex:
    """The :class:`~repro.corpus.index.CorpusIndex` query surface over
    a segmented corpus.  Point reads route to the owning tier; posting
    queries splice the segment runs and the tail run into a
    :class:`TieredPostings`; DFs sum per-tier counts (a term is indexed
    at most once per record, and tiers partition the records, so sums
    are exact).  Like :class:`TieredColumns`, it holds only the corpus
    reference and survives freezes."""

    __slots__ = ("_corpus", "_span_lo", "_span_hi", "_span_verdicts", "_span_epoch")

    def __init__(self, corpus: "SegmentedCorpus") -> None:
        self._corpus = corpus
        self._span_lo = 0
        self._span_hi = 0
        self._span_verdicts = None
        self._span_epoch = -1

    @property
    def config(self) -> IndexConfig:
        return self._corpus._index.config

    @property
    def vocabularies(self) -> CorpusVocabularies:
        return self._corpus._vocabs

    def __len__(self) -> int:
        corpus = self._corpus
        return corpus._frozen_len + len(corpus._index)

    # ---------------------------------------------------------- plumbing

    def _tiered(self, family: str, key, tail_postings) -> TieredPostings | None:
        corpus = self._corpus
        parts: list[tuple[int, object]] = []
        for segment in corpus._segments:
            postings = segment.postings(family, key)
            if postings:
                parts.append((segment.base, postings))
        if tail_postings:
            parts.append((corpus._frozen_len, tail_postings))
        return TieredPostings(parts) if parts else None

    def _tiered_df(self, family: str, key, tail_postings) -> int:
        corpus = self._corpus
        df = sum(segment.df(family, key) for segment in corpus._segments)
        if tail_postings is not None:
            df += len(tail_postings)
        return df

    # -------------------------------------------------------- point reads

    def _frozen_verdict_code(self, position: int) -> int:
        """Verdict code for a frozen global position, via the same
        last-segment span memo as :meth:`TieredColumns._locate` —
        ``is_correct`` runs once per candidate in the retrieval
        intersection, so this is the hottest frozen point read."""
        corpus = self._corpus
        if (
            self._span_epoch == corpus._tier_epoch
            and self._span_lo <= position < self._span_hi
        ):
            return self._span_verdicts[position - self._span_lo]
        i = bisect_right(corpus._segment_bases, position) - 1
        segment = corpus._segments[i]
        base = segment.base
        self._span_lo = base
        self._span_hi = base + segment.count
        self._span_verdicts = segment._verdicts
        self._span_epoch = corpus._tier_epoch
        return segment._verdicts[position - base]

    def verdict_at(self, position: int) -> Correctness:
        corpus = self._corpus
        if position >= corpus._frozen_len:
            return corpus._index.verdict_at(position - corpus._frozen_len)
        return VERDICT_FOR_CODE[self._frozen_verdict_code(position)]

    def is_correct(self, position: int) -> bool:
        corpus = self._corpus
        if position >= corpus._frozen_len:
            return corpus._index.is_correct(position - corpus._frozen_len)
        if (
            self._span_epoch == corpus._tier_epoch
            and self._span_lo <= position < self._span_hi
        ):
            return self._span_verdicts[position - self._span_lo] == CORRECT_CODE
        return self._frozen_verdict_code(position) == CORRECT_CODE

    # ----------------------------------------------------- posting queries

    def verdict_postings(self, verdict: Correctness) -> TieredPostings | None:
        return self._tiered(
            "verdicts",
            CODE_FOR_VERDICT[verdict],
            self._corpus._index._by_verdict.get(verdict),
        )

    def keyword_postings(self, keyword: str) -> TieredPostings | None:
        corpus = self._corpus
        keyword_id = corpus._vocabs.keywords.id_of(keyword)
        if keyword_id is None:
            return None
        return self._tiered(
            "keywords", keyword_id, corpus._index._keywords.get(keyword_id)
        )

    def token_postings(self, token: str) -> TieredPostings | None:
        corpus = self._corpus
        token_id = corpus._vocabs.tokens.id_of(token)
        if token_id is None:
            return None
        return self._tiered("tokens", token_id, corpus._index._tokens.get(token_id))

    def user_postings(self, user: str) -> TieredPostings | None:
        corpus = self._corpus
        user_id = corpus._vocabs.users.id_of(user)
        if user_id is None:
            return None
        return self._tiered("users", user_id, corpus._index._users.get(user_id))

    def verdict_positions(self, verdict: Correctness) -> tuple[int, ...]:
        postings = self.verdict_postings(verdict)
        return postings.positions() if postings is not None else ()

    def iter_verdict_positions(self, verdict: Correctness) -> Iterator[int]:
        postings = self.verdict_postings(verdict)
        return iter(postings) if postings is not None else iter(())

    def keyword_positions(self, keyword: str) -> tuple[int, ...]:
        postings = self.keyword_postings(keyword)
        return postings.positions() if postings is not None else ()

    def iter_keyword_positions(self, keyword: str) -> Iterator[int]:
        postings = self.keyword_postings(keyword)
        return iter(postings) if postings is not None else iter(())

    def token_positions(self, token: str) -> tuple[int, ...]:
        postings = self.token_postings(token)
        return postings.positions() if postings is not None else ()

    def iter_token_positions(self, token: str) -> Iterator[int]:
        postings = self.token_postings(token)
        return iter(postings) if postings is not None else iter(())

    def user_positions(self, user: str) -> tuple[int, ...]:
        postings = self.user_postings(user)
        return postings.positions() if postings is not None else ()

    def iter_user_positions(self, user: str) -> Iterator[int]:
        postings = self.user_postings(user)
        return iter(postings) if postings is not None else iter(())

    # ------------------------------------------------------- aggregations

    def verdict_counts(self) -> dict[Correctness, int]:
        corpus = self._corpus
        counts: dict[Correctness, int] = {}
        for code, verdict in enumerate(VERDICT_FOR_CODE):
            total = sum(seg.df("verdicts", code) for seg in corpus._segments)
            tail = corpus._index._by_verdict.get(verdict)
            if tail is not None:
                total += len(tail)
            if total:
                counts[verdict] = total
        return counts

    def user_df(self, user: str) -> int:
        corpus = self._corpus
        user_id = corpus._vocabs.users.id_of(user)
        if user_id is None:
            return 0
        return self._tiered_df("users", user_id, corpus._index._users.get(user_id))

    def keyword_df(self, keyword: str) -> int:
        corpus = self._corpus
        keyword_id = corpus._vocabs.keywords.id_of(keyword)
        if keyword_id is None:
            return 0
        return self._tiered_df(
            "keywords", keyword_id, corpus._index._keywords.get(keyword_id)
        )

    def token_df(self, token: str) -> int:
        corpus = self._corpus
        token_id = corpus._vocabs.tokens.id_of(token)
        if token_id is None:
            return 0
        return self._tiered_df("tokens", token_id, corpus._index._tokens.get(token_id))

    def users(self) -> list[str]:
        """Names of every user with at least one record, unsorted (the
        in-RAM index makes the same no-order promise; consumers sort)."""
        corpus = self._corpus
        seen = dict.fromkeys(
            user_id
            for segment in corpus._segments
            for user_id in segment.family_terms("users")
        )
        seen.update(dict.fromkeys(corpus._index._users))
        terms = corpus._vocabs.users.terms
        return [terms[user_id] for user_id in seen]

    def user_verdict_count(self, user: str, verdict: Correctness) -> int:
        corpus = self._corpus
        user_id = corpus._vocabs.users.id_of(user)
        if user_id is None:
            return 0
        code = CODE_FOR_VERDICT[verdict]
        count = corpus._index.user_verdict_count(user, verdict)
        for segment in corpus._segments:
            user_postings = segment.postings("users", user_id)
            verdict_postings = segment.postings("verdicts", code)
            if user_postings and verdict_postings:
                count += intersect_count(user_postings, verdict_postings)
        return count

    def accumulate_correct_keyword_positions(
        self, keyword: str, counts: dict[int, int]
    ) -> None:
        corpus = self._corpus
        keyword_id = corpus._vocabs.keywords.id_of(keyword)
        if keyword_id is None:
            return
        get = counts.get
        for segment in corpus._segments:
            postings = segment.postings("keywords", keyword_id)
            if not postings:
                continue
            codes = segment._verdicts
            base = segment.base
            position = 0
            for gap in postings._gaps:
                position += gap
                if codes[position] == CORRECT_CODE:
                    key = base + position
                    counts[key] = get(key, 0) + 1
        tail = corpus._index._keywords.get(keyword_id)
        if tail is not None:
            codes = corpus._index._verdict_codes
            offset = corpus._frozen_len
            position = 0
            for gap in tail._gaps:
                position += gap
                if codes[position] == CORRECT_CODE:
                    key = offset + position
                    counts[key] = get(key, 0) + 1

    # -------------------------------------------------------------- tiers

    def is_capped_token(self, token: str) -> bool:
        cap = self.config.stopword_df_cap
        return cap is not None and self.token_df(token) > cap

    def split_tokens(self, tokens: Iterable[str]) -> tuple[list[str], list[str]]:
        # Mirror of CorpusIndex.split_tokens over tiered DFs: the DFs
        # sum exactly across tiers, so the (df, token) ordering — and
        # with it retrieval determinism — is identical.
        cap = self.config.stopword_df_cap
        rare: list[tuple[int, str]] = []
        capped: list[tuple[int, str]] = []
        for token in set(tokens):
            df = self.token_df(token)
            if df == 0:
                continue
            (capped if cap is not None and df > cap else rare).append((df, token))
        rare.sort()
        capped.sort()
        return [token for _, token in rare], [token for _, token in capped]

    # ---------------------------------------------------------- diagnostics

    def stats(self) -> dict[str, int]:
        corpus = self._corpus
        tail = corpus._index.stats()
        terms = tail["terms"]
        postings = tail["postings"]
        payload = tail["payload_bytes"]
        for segment in corpus._segments:
            segment_stats = segment.postings_stats()
            terms += segment_stats["terms"]
            postings += segment_stats["postings"]
            payload += segment_stats["payload_bytes"]
        cap = self.config.stopword_df_cap
        capped = 0
        if cap is not None:
            token_ids = dict.fromkeys(
                token_id
                for segment in corpus._segments
                for token_id in segment.family_terms("tokens")
            )
            token_ids.update(dict.fromkeys(corpus._index._tokens))
            for token_id in token_ids:
                df = sum(seg.df("tokens", token_id) for seg in corpus._segments)
                tail_postings = corpus._index._tokens.get(token_id)
                if tail_postings is not None:
                    df += len(tail_postings)
                if df > cap:
                    capped += 1
        return {
            "records": corpus._frozen_len + len(corpus._store),
            "terms": terms,
            "postings": postings,
            "payload_bytes": payload,
            "capped_tokens": capped,
        }


class SegmentedCorpus(LearnerCorpus):
    """A :class:`~repro.corpus.store.LearnerCorpus` with a disk tier.

    Records past the freeze boundary live in immutable mmap-backed
    :class:`FrozenSegment` files; the hot tail stays in the in-RAM
    columnar store.  All inherited query methods work unchanged — the
    ``columns``/``index`` properties hand back the tiered facades, and
    global positions, record ids and posting positions are identical to
    a plain corpus fed the same records (the differential harness
    asserts this bit-for-bit across 200 seeds).

    Args:
        index_config: knobs for the tail's :class:`CorpusIndex`.
        segment_records: freeze cadence — ``maybe_freeze`` (and, when
            ``auto_freeze`` is on, every ``add``) freezes once the tail
            reaches this many records.
        directory: where segment files live; ``None`` creates an owned
            temporary directory removed on :meth:`close`.
        faults: durability :class:`~repro.durability.faults.FaultClock`
            stepping the freeze/compact crash boundaries.
        auto_freeze: freeze from ``add`` at the cadence.  The serving
            system leaves this off and calls :meth:`maybe_freeze` at
            drain barriers instead, so freezes never interleave with an
            open shard-merge barrier.
    """

    def __init__(
        self,
        index_config: IndexConfig | None = None,
        *,
        segment_records: int = 65536,
        directory: str | Path | None = None,
        faults=None,
        auto_freeze: bool = True,
    ) -> None:
        super().__init__(index_config)
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        self.segment_records = int(segment_records)
        self._tempdir = None
        if directory is None:
            self._tempdir = TemporaryDirectory(prefix="repro-segments-")
            directory = self._tempdir.name
        self.directory = Path(directory)
        self._writer = SegmentWriter(self.directory, faults=faults)
        self._segments: list[FrozenSegment] = []
        self._segment_bases: list[int] = []
        self._frozen_len = 0
        self.auto_freeze = auto_freeze
        self.evictions_refused = 0
        #: Bumped on every tier-layout change (freeze/compact/restore/
        #: close) — invalidates the facades' last-segment span memos.
        self._tier_epoch = 0
        #: Durability hooks: called with the new segment after a freeze
        #: (so the boundary is WAL-journaled) / after a compaction.
        self.on_freeze = None
        self.on_compact = None
        self._columns_facade: TieredColumns | None = None
        self._index_facade: TieredIndex | None = None

    # ------------------------------------------------------------- facades

    @property
    def columns(self) -> TieredColumns:
        facade = self._columns_facade
        if facade is None:
            facade = self._columns_facade = TieredColumns(self)
        return facade

    @property
    def index(self) -> TieredIndex:
        facade = self._index_facade
        if facade is None:
            facade = self._index_facade = TieredIndex(self)
        return facade

    @property
    def frozen_records(self) -> int:
        """Records frozen to disk (== the global freeze boundary)."""
        return self._frozen_len

    @property
    def segments(self) -> tuple[FrozenSegment, ...]:
        return tuple(self._segments)

    # ------------------------------------------------------------- writing

    def add(
        self, record: CorpusRecord, tokens: tuple[str, ...] | None = None
    ) -> CorpusRecord:
        record = super().add(record, tokens)
        if self.auto_freeze and len(self._store) >= self.segment_records:
            self.freeze()
        return record

    def _evict_tail(self, floor: int) -> None:
        """Refuse to rewrite frozen rows: eviction below the freeze
        boundary raises :class:`FrozenTailError` (counted in
        ``evictions_refused``) with zero state mutated — the satellite
        fix for the in-RAM-only assumption the base method made."""
        if floor < self._frozen_len:
            self.evictions_refused += 1
            raise FrozenTailError(
                f"cannot evict to {floor}: records below {self._frozen_len} are frozen"
            )
        super()._evict_tail(floor - self._frozen_len)

    # ------------------------------------------------------------ freezing

    def freeze(self, upto: int | None = None) -> FrozenSegment | None:
        """Freeze records ``[frozen_records, upto)`` into one segment
        (default: the whole current tail).  The tail store/index are
        rebuilt over the unfrozen remainder; global positions, ids and
        query results are unchanged.  Returns the new segment, or None
        when there is nothing to freeze."""
        total = len(self)
        if upto is None:
            upto = total
        if not self._frozen_len <= upto <= total:
            raise ValueError(
                f"freeze boundary {upto} outside [{self._frozen_len}, {total}]"
            )
        count = upto - self._frozen_len
        if count == 0:
            return None
        segment = self._writer.freeze(
            self._frozen_len, count, self._store, self._index, self._vocabs
        )
        remainder = [
            (self._store.materialize(position), self._store.token_set(position))
            for position in range(count, len(self._store))
        ]
        self._store = RecordStore(self._vocabs)
        self._index = CorpusIndex(self._index.config, vocabularies=self._vocabs)
        for record, token_set in remainder:
            self._ingest(record, token_set)
        self._segments.append(segment)
        self._segment_bases.append(segment.base)
        self._frozen_len = upto
        self._tier_epoch += 1
        # The freeze is a barrier: any in-progress merge bookkeeping
        # referenced tail positions that just moved tiers.
        self._merge_floor = None
        self._merge_keys = []
        if self.on_freeze is not None:
            self.on_freeze(segment)
        return segment

    def maybe_freeze(self) -> FrozenSegment | None:
        """Freeze the tail when it reached the cadence (the drain-barrier
        hook ``ELearningSystem`` calls)."""
        if len(self._store) >= self.segment_records:
            return self.freeze()
        return None

    def freeze_to(self, upto: int) -> FrozenSegment | None:
        """Idempotent replay form: freeze up to ``upto``, or no-op when
        that boundary is already frozen."""
        if upto <= self._frozen_len:
            return None
        return self.freeze(upto)

    def compact(self, *, prune: bool = False) -> FrozenSegment | None:
        """Merge all frozen segments into one.  ``prune`` unlinks the
        old segment files; by default they are kept so snapshots written
        before the compaction stay recoverable until they rotate out."""
        if len(self._segments) <= 1:
            return None
        old = list(self._segments)
        merged = self._writer.compact(old, self._vocabs)
        self._segments = [merged]
        self._segment_bases = [merged.base]
        self._tier_epoch += 1
        removed = [segment.path.name for segment in old]
        for segment in old:
            segment.close()
            if prune and segment.path != merged.path and segment.path.exists():
                segment.path.unlink()
        if self.on_compact is not None:
            self.on_compact(merged, removed)
        return merged

    # --------------------------------------------------------- diagnostics

    def memory_stats(self) -> dict[str, int]:
        """Tail-resident heap accounting plus tier shape.  Disk bytes
        are mmapped, reclaimable page cache — deliberately *not* part of
        ``resident_bytes``, which is what the bench's sublinear-RSS gate
        measures."""
        stats = self._store.memory_stats()
        stats["index_payload_bytes"] = self._index.stats()["payload_bytes"]
        stats["total_bytes"] += stats["index_payload_bytes"]
        stats["tail_records"] = stats["records"]
        stats["records"] = len(self)
        stats["frozen_records"] = self._frozen_len
        stats["segments"] = len(self._segments)
        stats["disk_bytes"] = sum(segment.disk_bytes for segment in self._segments)
        stats["resident_bytes"] = stats["total_bytes"]
        return stats

    # --------------------------------------------------------- persistence

    def to_columnar(self) -> dict:
        """Snapshot document: segment *references* (file, base, count)
        plus the tail's columns — a snapshot never copies frozen data."""
        return {
            "format": CORPUS_SEGMENTED_FORMAT,
            "records": len(self),
            "segment_records": self.segment_records,
            "vocabularies": self._vocabs.dump(),
            "segments": [
                {"file": segment.path.name, "base": segment.base, "count": segment.count}
                for segment in self._segments
            ],
            "tail": self._store.dump_columns(),
        }

    def validate_columnar(self, data: dict) -> None:
        """Verify ``data`` is restorable *before* mutating anything:
        every referenced segment file must open, CRC-verify and match
        its recorded base/count, contiguously from 0.  Raises
        :class:`SegmentLoadError` / ``ValueError``."""
        data_format = data.get("format")
        if data_format == CORPUS_COLUMNAR_FORMAT:
            return
        if data_format != CORPUS_SEGMENTED_FORMAT:
            raise ValueError(f"not a {CORPUS_SEGMENTED_FORMAT} document")
        expected_base = 0
        for reference in data["segments"]:
            info = validate_segment_file(self.directory / reference["file"])
            if info["base"] != reference["base"] or info["count"] != reference["count"]:
                raise SegmentLoadError(
                    f"segment {reference['file']} does not match its reference"
                )
            if info["base"] != expected_base:
                raise SegmentLoadError(
                    f"segment {reference['file']} breaks tier contiguity"
                )
            expected_base += info["count"]

    def restore_columnar(self, data: dict) -> None:
        """Restore from a segmented document (reopening the referenced
        segment files) or a plain columnar document (tier reset to
        empty).  All-or-nothing: every segment is opened and verified
        before any state is swapped."""
        data_format = data.get("format")
        if data_format == CORPUS_COLUMNAR_FORMAT:
            for segment in self._segments:
                segment.close()
            self._segments = []
            self._segment_bases = []
            self._frozen_len = 0
            self._tier_epoch += 1
            super().restore_columnar(data)
            return
        if data_format != CORPUS_SEGMENTED_FORMAT:
            raise ValueError(f"not a {CORPUS_SEGMENTED_FORMAT} document")
        vocabs = CorpusVocabularies()
        vocabs.restore(data["vocabularies"])
        segments: list[FrozenSegment] = []
        try:
            expected_base = 0
            for reference in data["segments"]:
                segment = FrozenSegment(self.directory / reference["file"], vocabs)
                segments.append(segment)
                if (
                    segment.base != reference["base"]
                    or segment.count != reference["count"]
                    or segment.base != expected_base
                ):
                    raise SegmentLoadError(
                        f"segment {reference['file']} does not match its reference"
                    )
                expected_base += segment.count
            store = RecordStore(vocabs)
            store.load_columns(data["tail"])
            index = CorpusIndex(self._index.config, vocabularies=vocabs)
            for position in range(len(store)):
                index.append_ids(
                    VERDICT_FOR_CODE[store.verdict_code_at(position)],
                    store.keyword_id_run(position),
                    store.token_id_run(position),
                    store.user_id_at(position),
                )
        except Exception:
            for segment in segments:
                segment.close()
            raise
        old_segments = self._segments
        self._vocabs = vocabs
        self._store = store
        self._index = index
        self._segments = segments
        self._segment_bases = [segment.base for segment in segments]
        self._frozen_len = expected_base
        self._tier_epoch += 1
        self._merge_floor = None
        self._merge_keys = []
        for segment in old_segments:
            segment.close()

    def save(self, path: str | Path) -> None:
        """Write a *portable* plain-columnar document (all tiers
        materialised back into one column set) — a saved corpus must
        not dangle references into this instance's segment directory."""
        store = RecordStore(self._vocabs)
        columns = self.columns
        for position in range(len(self)):
            store.append(columns.materialize(position), columns.token_set(position))
        document = {
            "format": CORPUS_COLUMNAR_FORMAT,
            "records": len(store),
            "vocabularies": self._vocabs.dump(),
            "columns": store.dump_columns(),
        }
        Path(path).write_text(
            json.dumps(document, ensure_ascii=False) + "\n", encoding="utf-8"
        )

    # ------------------------------------------------------------ lifecycle

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_segments"] = [str(segment.path) for segment in self._segments]
        # Process-pool workers reopen the (same-machine) segment files;
        # tempdir ownership, durability hooks and facades stay behind.
        state["_tempdir"] = None
        state["on_freeze"] = None
        state["on_compact"] = None
        state["_columns_facade"] = None
        state["_index_facade"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._segments = [
            FrozenSegment(path, self._vocabs) for path in state["_segments"]
        ]

    def close(self) -> None:
        """Release every mapped segment (and the owned tempdir).  The
        tail stays queryable; frozen records do not."""
        for segment in self._segments:
            segment.close()
        self._segments = []
        self._segment_bases = []
        self._tier_epoch += 1
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None
