"""Structured review reports produced by the supervising agents.

Both agents return data, not prose: the chat-room supervisor renders
replies for learners, benchmarks score verdicts against injected ground
truth, and the corpus stores the tags.  Prose rendering lives in
``as_replies`` helpers so the data stays inspectable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.linkgrammar.repair import Repair
from repro.linkgrammar.robust import GrammarDiagnosis
from repro.nlp.keywords import KeywordMatch
from repro.nlp.patterns import PatternAnalysis


class Severity(Enum):
    INFO = "info"
    WARNING = "warning"
    CORRECTION = "correction"


@dataclass(frozen=True, slots=True)
class AgentReply:
    """One message an agent would post into the chat room."""

    agent: str
    severity: Severity
    text: str


@dataclass(frozen=True, slots=True)
class SyntaxReview:
    """Learning_Angel's review of one sentence.

    Attributes:
        diagnosis: the grammar diagnosis (issues, parse result).
        suggestion: a model sentence from the learner corpus, if found.
        repairs: concrete single-edit corrections of the learner's own
            sentence, best first.
        keywords: ontology keywords (reused by later stages).
        pattern: the sentence-pattern classification computed (or received)
            during the review — carried so downstream stages (recording,
            the Semantic Agent) never re-classify the same sentence.
    """

    diagnosis: GrammarDiagnosis
    suggestion: str | None = None
    repairs: tuple[Repair, ...] = ()
    keywords: tuple[KeywordMatch, ...] = ()
    pattern: PatternAnalysis | None = None

    @property
    def is_correct(self) -> bool:
        return self.diagnosis.is_correct

    def as_replies(self, agent: str = "Learning_Angel") -> list[AgentReply]:
        if self.is_correct:
            return []
        replies = [AgentReply(agent, Severity.WARNING, self.diagnosis.summary())]
        if self.repairs:
            best = self.repairs[0]
            replies.append(
                AgentReply(
                    agent,
                    Severity.CORRECTION,
                    f"Did you mean: {best.text} ({best.edit})",
                )
            )
        if self.suggestion:
            replies.append(
                AgentReply(
                    agent,
                    Severity.CORRECTION,
                    f"A similar correct sentence: {self.suggestion}",
                )
            )
        return replies


class SemanticVerdict(Enum):
    """Outcome of the Semantic Agent's three-stage pipeline."""

    OK = "ok"
    VIOLATION = "violation"            # affirmative claim, unrelated pair
    MISCONCEPTION = "misconception"    # negated claim, but the pair holds
    QUESTION = "question"              # routed to the QA subsystem
    SYNTAX_SKIPPED = "syntax-skipped"  # ignored: Learning_Angel's case
    NO_KEYWORDS = "no-keywords"        # nothing to evaluate


@dataclass(frozen=True, slots=True)
class PairEvaluation:
    """One evaluated keyword pair with its ontology evidence."""

    left: str
    right: str
    left_id: int
    right_id: int
    distance: float
    related: bool
    capability: bool | None
    holds: bool  # did the sentence's claim match the ontology?


@dataclass(frozen=True, slots=True)
class SemanticReview:
    """The Semantic Agent's review of one sentence."""

    verdict: SemanticVerdict
    pattern: PatternAnalysis
    keywords: tuple[KeywordMatch, ...] = ()
    pairs: tuple[PairEvaluation, ...] = ()
    suggestions: tuple[str, ...] = field(default_factory=tuple)

    @property
    def is_anomalous(self) -> bool:
        """True for the paper's 'Interrogative Sentence': syntactically
        fine but semantically wrong in the domain."""
        return self.verdict in (SemanticVerdict.VIOLATION, SemanticVerdict.MISCONCEPTION)

    def as_replies(self, agent: str = "Semantic_Agent") -> list[AgentReply]:
        if not self.is_anomalous:
            return []
        failing = [pair for pair in self.pairs if not pair.holds]
        fragments = ", ".join(f"'{pair.left}' with '{pair.right}'" for pair in failing)
        if self.verdict == SemanticVerdict.VIOLATION:
            lead = f"That doesn't sound right for this course: {fragments}."
        else:
            lead = f"Actually, that negative statement contradicts the course material: {fragments}."
        replies = [AgentReply(agent, Severity.WARNING, lead)]
        for suggestion in self.suggestions:
            replies.append(AgentReply(agent, Severity.CORRECTION, suggestion))
        return replies
