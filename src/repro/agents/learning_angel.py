"""The Learning_Angel agent (paper section 4.2, Figure 4).

Workflow, exactly as Figure 4 draws it: a chat-room sentence is forwarded
to the Enhanced Link Grammar Parser; Label analysis & filter checks the
linkage against the meta-rules, localises mistakes, searches the Learner
Corpus for suitable correct sentences to convey to the learner, and
records the tagged sentence back into the corpus.
"""

from __future__ import annotations

from repro.corpus.records import Correctness, CorpusRecord
from repro.corpus.search import SuggestionSearch
from repro.corpus.store import LearnerCorpus
from repro.linkgrammar.cache import ParseCacheStore
from repro.linkgrammar.dictionary import Dictionary
from repro.linkgrammar.parser import ParseOptions
from repro.linkgrammar.repair import SentenceRepairer
from repro.linkgrammar.robust import RobustAnalyzer
from repro.linkgrammar.tokenizer import TokenizedSentence, tokenize
from repro.nlp.keywords import KeywordFilter
from repro.nlp.patterns import PatternAnalysis, classify

from .reports import SyntaxReview

AGENT_NAME = "Learning_Angel"


class LearningAngelAgent:
    """Syntax supervisor: parse, diagnose, suggest, record.

    Args:
        dictionary: the chat-room link-grammar dictionary.
        corpus: the learner corpus used both for suggestion search and for
            recording reviewed sentences; optional (agents can run
            stateless in benchmarks).
        keyword_filter: ontology keyword extractor used to find
            topic-matched suggestions; optional.
        options: parser options (null tolerance, linkage caps).
        repair: also propose single-edit corrections of the learner's
            own sentence (on by default).
        cache_store: parse cache shared by the analyzer's and the
            repairer's parsers.  Defaults to the dictionary's own shared
            store, so repair candidates re-parsed by either component hit
            a single LRU; pass an explicit store to isolate the agent.
    """

    name = AGENT_NAME
    #: Resilience stage this agent backs (breaker label in ``health``).
    stage = "parser"

    def __init__(
        self,
        dictionary: Dictionary,
        corpus: LearnerCorpus | None = None,
        keyword_filter: KeywordFilter | None = None,
        options: ParseOptions | None = None,
        repair: bool = True,
        cache_store: ParseCacheStore | None = None,
    ) -> None:
        options = options or ParseOptions()
        if cache_store is None and options.cache_size > 0:
            cache_store = dictionary.shared_cache_store()
        self.cache_store = cache_store
        self.options = options
        self.analyzer = RobustAnalyzer(dictionary, options, cache_store=cache_store)
        self.corpus = corpus
        self.search = SuggestionSearch(corpus) if corpus is not None else None
        self.keyword_filter = keyword_filter
        # Same options as the analyzer: identical cache fingerprints, so
        # a sentence parsed by one component is a hit for the other.
        # Repair outcomes are provably unchanged only while the linkage
        # enumeration window stays at 256 (max_linkages <= 64); beyond
        # that, keep the repairer on its classic options — cache sharing
        # is lost but repair behaviour is preserved.
        repair_options = options if options.max_linkages <= 64 else None
        self.repairer = (
            SentenceRepairer(dictionary, options=repair_options, cache_store=cache_store)
            if repair
            else None
        )

    @property
    def analysis_key(self) -> tuple[int, int, int]:
        """Identity of the static state a review depends on.

        Two agents with the same dictionary, parse options and keyword
        filter produce value-identical reviews for any sentence whose
        analysis does not read the learner corpus; the supervision
        pipeline keys its batch memo on this (plus the semantic agent),
        so per-worker forks of one agent share memo entries while
        unrelated agents never do.
        """
        return (id(self.analyzer.dictionary), id(self.options), id(self.keyword_filter))

    def fork(self, corpus: LearnerCorpus | None) -> "LearningAngelAgent":
        """A twin bound to a shard-local corpus replica.

        Shares the dictionary, options object, keyword filter and parse
        cache store (all static or internally locked), so the fork's
        :attr:`analysis_key` equals the prototype's; only the corpus —
        where reviews search suggestions and file records — is swapped
        for the worker's replica.
        """
        return LearningAngelAgent(
            self.analyzer.dictionary,
            corpus=corpus,
            keyword_filter=self.keyword_filter,
            options=self.options,
            repair=self.repairer is not None,
            cache_store=self.cache_store,
        )

    def review(
        self,
        text: str | TokenizedSentence,
        pattern: PatternAnalysis | None = None,
    ) -> SyntaxReview:
        """Run the Figure-4 pipeline on one sentence.

        Accepts a pre-tokenised sentence and a precomputed pattern
        classification so the supervision pipeline tokenises and
        classifies each sentence exactly once.
        """
        sentence = tokenize(text) if isinstance(text, str) else text
        if pattern is None:
            pattern = classify(sentence)
        diagnosis = self.analyzer.analyze(sentence)
        keywords = tuple(self.keyword_filter.extract(sentence)) if self.keyword_filter else ()
        suggestion = None
        repairs = ()
        if not diagnosis.is_correct:
            if self.search is not None:
                suggestion = self.search.best_sentence(
                    sentence, keywords=[match.name for match in keywords]
                )
            if self.repairer is not None:
                repairs = tuple(self.repairer.repair(sentence))
        return SyntaxReview(
            diagnosis=diagnosis,
            suggestion=suggestion,
            repairs=repairs,
            keywords=keywords,
            pattern=pattern,
        )

    def record(
        self,
        review: SyntaxReview,
        user: str,
        room: str,
        timestamp: float,
        verdict: Correctness | None = None,
        semantic_issues: list[str] | None = None,
    ) -> CorpusRecord | None:
        """File the reviewed sentence into the learner corpus."""
        if self.corpus is None:
            return None
        diagnosis = review.diagnosis
        if verdict is None:
            verdict = Correctness.CORRECT if diagnosis.is_correct else Correctness.SYNTAX_ERROR
        best = diagnosis.result.best
        pattern = review.pattern or classify(diagnosis.result.sentence)
        record = CorpusRecord(
            record_id=self.corpus.next_id(),
            user=user,
            room=room,
            text=diagnosis.result.sentence.raw,
            timestamp=timestamp,
            pattern=pattern.pattern.value,
            verdict=verdict,
            syntax_issues=[(issue.kind.value, issue.word) for issue in diagnosis.issues],
            semantic_issues=list(semantic_issues or []),
            keywords=[match.name for match in review.keywords],
            links=best.link_summary() if best else "",
            cost=best.cost if best else 0,
        )
        # The reviewed sentence is already tokenised; spare the store a
        # second tokenizer pass.
        return self.corpus.add(record, tokens=diagnosis.result.sentence.words)
