"""The Semantic Link Grammar methodology — the paper's rejected design.

Section 4.3 proposes two ways to build the Semantic Agent and argues
against the first: "Semantic Link Grammar can use the algorithm from link
grammar to parse sentences.  However, it is quite difficult to modify the
dictionary ... It will take a lot of cost and time for linguistic
classification and the performance is not very well."

We implement it anyway, as the ablation baseline (experiment A1): semantic
selectional restrictions are compiled *into the dictionary connectors* —
each operation gets a subscript class letter, every concept noun carries
the classes of the operations it supports, and operation verbs demand a
matching class on their objects and oblique (preposition) targets.  A
sentence is semantically acceptable iff it parses with zero null words in
this semantic dictionary.

The cost the paper predicts is measurable: adding a concept requires
touching the noun's class list *and* every typed preposition entry, and
the dictionary's disjunct count grows multiplicatively (reported by the
A1 benchmark), whereas the ontology methodology adds a handful of graph
edges.
"""

from __future__ import annotations

import string
from dataclasses import dataclass

from repro.linkgrammar.dictionary import Dictionary
from repro.linkgrammar.parser import ParseOptions, Parser
from repro.nlp.patterns import classify
from repro.ontology.model import ItemKind, Ontology

from .reports import SemanticVerdict

AGENT_NAME = "Semantic_LG"


@dataclass(frozen=True, slots=True)
class SemanticLGReview:
    """Verdict of the link-grammar-based semantic check."""

    verdict: SemanticVerdict
    null_count: int = 0
    parse_count: int = 0


class SemanticLinkGrammarAgent:
    """Semantic checking by parsing against a semantically-typed grammar.

    The dictionary is *generated* from the ontology (the linguistic
    classification the paper says is so costly), so the two methodologies
    stay comparable on the same knowledge.
    """

    name = AGENT_NAME

    def __init__(self, ontology: Ontology) -> None:
        self.ontology = ontology
        self.class_letters = self._assign_class_letters()
        self.dictionary = self._build_dictionary()
        self.parser = Parser(self.dictionary, ParseOptions(max_null_count=None, max_linkages=8))

    # ------------------------------------------------------------ assembly

    def _assign_class_letters(self) -> dict[int, str]:
        """One lower-case subscript letter per operation item."""
        letters: dict[int, str] = {}
        operations = self.ontology.items_of_kind(ItemKind.OPERATION)
        alphabet = string.ascii_lowercase
        if len(operations) > len(alphabet):
            raise ValueError("too many operations for single-letter classes")
        for letter, operation in zip(alphabet, operations):
            letters[operation.item_id] = letter
        return letters

    def _classes_of(self, concept_id: int) -> str:
        """The class letters of every operation a concept supports."""
        return "".join(
            sorted(
                self.class_letters[op.item_id]
                for op in self.ontology.operations_of(concept_id)
                if op.item_id in self.class_letters
            )
        )

    def _build_dictionary(self) -> Dictionary:
        """Compile the ontology into a semantically-typed dictionary.

        Selection is enforced three ways, each typed by operation class:

        * oblique targets: ``push ... into X`` needs ``X`` to carry the
          ``J``-class of *push* (``Ja-``), i.e. to support push;
        * passives: ``X is pushed in Y`` types the participle's ``MV``;
        * capability chains: ``X has/supports push`` runs a typed subject
          link ``SC`` through do-support (``doesn't``) into a typed
          ``SV`` object, so both ends must agree with the ontology.
        """
        d = Dictionary(name="semantic-link-grammar")
        letters = sorted(set(self.class_letters.values()))
        d.define("<WALL>", "Wd+ or Wi+")
        d.define("a an the this that my your its one", "D+")
        d.define("i you we they", "{Wd-} & Sp+")
        d.define("he she it", "{Wd-} & Ss+")
        # Generic operands: things one may push/insert/etc. anywhere.
        d.define(
            "data element elements item items key keys value values node nodes",
            "{D-} & (O- or ({Wd-} & S+))",
        )
        d.define("not", "N-")

        # Concept nouns: generic roles, plus typed roles for each
        # operation class the concept supports.
        for concept in self.ontology.items_of_kind(ItemKind.CONCEPT):
            classes = self._classes_of(concept.item_id)
            words = {name for name in concept.all_names() if " " not in name}
            if not words:
                continue
            alternatives = ["{D-} & ({Wd-} & S+ or O-)"]
            for letter in classes:
                alternatives.append(f"{{D-}} & J{letter}-")
                alternatives.append(f"{{D-}} & {{Wd-}} & SC{letter}+")
            formula = " or ".join(f"({alt})" for alt in alternatives)
            d.define(sorted(words), formula)

        # Operation verbs: objects are free, oblique targets are typed;
        # the bare operation name doubles as the SV object of capability
        # statements ("has push").
        from repro.linkgrammar.lexicon.builder import verb_forms

        for operation in self.ontology.items_of_kind(ItemKind.OPERATION):
            letter = self.class_letters[operation.item_id]
            base = operation.name
            if " " in base:
                continue
            third, past, _participle, gerund = verb_forms(base)
            frames = {
                base: (
                    f"({{@E-}} & (Sp- or Wi- or I-) & {{O+}} & {{MV{letter}+}})"
                    f" or (SV{letter}- & {{APm+}})"
                ),
                third: f"{{@E-}} & Ss- & {{O+}} & {{MV{letter}+}}",
                past: (
                    f"({{@E-}} & S- & {{O+}} & {{MV{letter}+}})"
                    f" or (Pv- & {{MV{letter}+}})"
                ),
                gerund: f"Pg- & {{O+}} & {{MV{letter}+}}",
            }
            for word, formula in frames.items():
                d.define(word, formula)

        # Copula for passives: "the data is pushed in this heap".
        d.define("is was", "Ss- & {N+} & Pv+")
        d.define("are were", "Sp- & {N+} & Pv+")

        # Typed prepositions: one entry per (preposition, class) pairing —
        # exactly the maintenance blow-up the paper warns about.
        prepositions = ["into", "onto", "in", "on", "from", "at", "to"]
        for preposition in prepositions:
            variants = [f"(MV{letter}- & J{letter}+)" for letter in letters]
            d.define(preposition, " or ".join(variants))

        # Capability chains, typed end to end: SCx- ... (Ix+) ... SVx+.
        has_variants = [f"(SC{letter}- & SV{letter}+)" for letter in letters]
        d.define("has supports", " or ".join(has_variants))
        infinitive_variants = [f"(SC{letter}- & IC{letter}+)" for letter in letters]
        d.define("doesn't don't does do", " or ".join(infinitive_variants))
        have_variants = [f"(IC{letter}- & SV{letter}+)" for letter in letters]
        d.define("have support", " or ".join(have_variants))
        d.define("method operation", "APm-")
        return d

    # ----------------------------------------------------------------- API

    def review(self, text: str, syntactically_ok: bool = True) -> SemanticLGReview:
        """Judge a sentence by parsing it with the semantic dictionary."""
        pattern = classify(text)
        if not syntactically_ok:
            return SemanticLGReview(SemanticVerdict.SYNTAX_SKIPPED)
        if pattern.is_question:
            return SemanticLGReview(SemanticVerdict.QUESTION)
        result = self.parser.parse(text)
        acceptable = result.null_count == 0 and bool(result.linkages)
        if pattern.is_negative:
            # The typed grammar cannot represent negation semantics; the
            # paper's point about the methodology's limits.  Negated
            # sentences about *unsupported* pairings fail to parse, which
            # this methodology must treat as acceptable claims.
            verdict = SemanticVerdict.OK if not acceptable else SemanticVerdict.MISCONCEPTION
        else:
            verdict = SemanticVerdict.OK if acceptable else SemanticVerdict.VIOLATION
        return SemanticLGReview(
            verdict=verdict,
            null_count=result.null_count,
            parse_count=result.total_count,
        )

    # ------------------------------------------------------------- metrics

    def maintenance_cost(self) -> dict[str, int]:
        """Size metrics for the A1 ablation benchmark."""
        return {
            "words": len(self.dictionary),
            "disjuncts": self.dictionary.disjunct_count(),
            "operation_classes": len(self.class_letters),
        }
