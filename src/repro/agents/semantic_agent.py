"""The Semantic Agent, ontology methodology (paper section 4.3).

The paper weighs two designs and picks "Semantic Relation of Knowledge
Ontology"; this module implements it with the three branching stages:

1. **Sentence Pattern Classification** — questions are routed to the QA
   subsystem (the agent "doesn't deal with the semantic problems" of a
   question); syntactically broken sentences are ignored here because
   Learning_Angel already reported them.
2. **Semantic Keywords Filter** — ontology terms are extracted with their
   ids (tree=4, pop=33 in the paper's example).
3. **Sentence Distance Evaluation** — concept/operation pairs are judged
   by capability (with IS-A inheritance), other pairs by weighted graph
   distance; *negation flips the expected polarity*, so "The tree doesn't
   have pop method" is accepted while "I push the data into a tree" is a
   violation with correction suggestions.
"""

from __future__ import annotations

from repro.linkgrammar.tokenizer import TokenizedSentence, tokenize
from repro.nlp.keywords import KeywordFilter, KeywordMatch
from repro.nlp.patterns import PatternAnalysis, classify
from repro.ontology.distance import SemanticDistanceEvaluator
from repro.ontology.model import ItemKind, Ontology

from .reports import PairEvaluation, SemanticReview, SemanticVerdict

AGENT_NAME = "Semantic_Agent"

# Concept categories that denote operands rather than operated containers.
_OPERAND_CATEGORIES = frozenset({"part"})


class SemanticAgent:
    """Semantic supervisor over a knowledge ontology."""

    name = AGENT_NAME
    #: Resilience stage this agent backs (breaker label in ``health``).
    stage = "semantic"

    def __init__(
        self,
        ontology: Ontology,
        keyword_filter: KeywordFilter | None = None,
        related_threshold: float = 2.0,
        max_suggestions: int = 2,
    ) -> None:
        self.ontology = ontology
        self.keyword_filter = keyword_filter or KeywordFilter(ontology)
        self.evaluator = SemanticDistanceEvaluator(ontology, related_threshold)
        self.max_suggestions = max_suggestions

    # ----------------------------------------------------------------- API

    def review(
        self,
        text: str | TokenizedSentence,
        syntactically_ok: bool = True,
        analysis: PatternAnalysis | None = None,
        keywords: tuple[KeywordMatch, ...] | None = None,
    ) -> SemanticReview:
        """Run the three-stage pipeline on one sentence.

        Args:
            text: the sentence, raw or pre-tokenised.
            syntactically_ok: Learning_Angel's verdict; broken sentences
                are skipped here (already reported).
            analysis: a precomputed stage-1 classification — the
                supervision pipeline classifies each sentence once and
                threads the result through, instead of every agent
                re-running :func:`classify`.
            keywords: precomputed stage-2 keyword matches.  Only pass
                matches produced by *this agent's* keyword filter (the
                pipeline checks filter identity before threading them).
        """
        sentence = tokenize(text) if isinstance(text, str) else text
        pattern = analysis if analysis is not None else classify(sentence)
        if not syntactically_ok:
            return SemanticReview(SemanticVerdict.SYNTAX_SKIPPED, pattern)
        if pattern.is_question:
            return SemanticReview(SemanticVerdict.QUESTION, pattern)
        if keywords is None:
            keywords = tuple(self.keyword_filter.extract(sentence))
        if len(keywords) == 0:
            return SemanticReview(SemanticVerdict.NO_KEYWORDS, pattern, keywords)
        pairs = self._evaluate_pairs(keywords, pattern)
        if not pairs:
            return SemanticReview(SemanticVerdict.OK, pattern, keywords)
        failing = [pair for pair in pairs if not pair.holds]
        if not failing:
            return SemanticReview(SemanticVerdict.OK, pattern, keywords, tuple(pairs))
        verdict = (
            SemanticVerdict.VIOLATION if pattern.affirmative else SemanticVerdict.MISCONCEPTION
        )
        suggestions = self._suggestions(failing, pattern)
        return SemanticReview(verdict, pattern, keywords, tuple(pairs), tuple(suggestions))

    # ------------------------------------------------------------ internal

    def _evaluate_pairs(
        self, keywords: tuple[KeywordMatch, ...], pattern: PatternAnalysis
    ) -> list[PairEvaluation]:
        """Build and judge the keyword pairs of stage 3.

        Operations are judged against the best concept in the sentence (a
        sentence is fine if *some* mentioned container supports the
        operation); with no operations present, consecutive item pairs are
        judged by graph distance (is-a and property claims).
        """
        concepts = [k for k in keywords if k.item.kind == ItemKind.CONCEPT]
        operations = [k for k in keywords if k.item.kind == ItemKind.OPERATION]
        others = [
            k
            for k in keywords
            if k.item.kind in (ItemKind.PROPERTY, ItemKind.ALGORITHM)
        ]
        pairs: list[PairEvaluation] = []
        expected = pattern.affirmative
        if operations and concepts:
            containers = [c for c in concepts if c.item.category not in _OPERAND_CATEGORIES]
            anchors = containers or concepts
            for operation in operations:
                pairs.append(self._judge_operation(operation, anchors, expected))
        elif operations and others:
            for operation in operations:
                pairs.append(self._judge_by_distance(others[0], operation, expected))
        if not operations and len(concepts) + len(others) >= 2:
            items = concepts + others
            items.sort(key=lambda match: match.start)
            for left, right in zip(items, items[1:]):
                pairs.append(self._judge_by_distance(left, right, expected))
        return pairs

    def _judge_operation(
        self,
        operation: KeywordMatch,
        anchors: list[KeywordMatch],
        expected: bool,
    ) -> PairEvaluation:
        """Judge an operation against the closest-supporting anchor."""
        best: PairEvaluation | None = None
        for anchor in anchors:
            verdict = self.evaluator.evaluate_pair(anchor.item_id, operation.item_id)
            evaluation = PairEvaluation(
                left=anchor.name,
                right=operation.name,
                left_id=anchor.item_id,
                right_id=operation.item_id,
                distance=verdict.distance,
                related=verdict.related,
                capability=verdict.capability,
                holds=(verdict.related == expected),
            )
            if verdict.related:
                # Some mentioned container supports the operation; the
                # claim holds iff the sentence was affirmative.
                return evaluation
            if best is None or evaluation.distance < best.distance:
                best = evaluation
        assert best is not None
        return best

    def _judge_by_distance(
        self, left: KeywordMatch, right: KeywordMatch, expected: bool
    ) -> PairEvaluation:
        verdict = self.evaluator.evaluate_pair(left.item_id, right.item_id)
        return PairEvaluation(
            left=left.name,
            right=right.name,
            left_id=left.item_id,
            right_id=right.item_id,
            distance=verdict.distance,
            related=verdict.related,
            capability=verdict.capability,
            holds=(verdict.related == expected),
        )

    def _suggestions(
        self, failing: list[PairEvaluation], pattern: PatternAnalysis
    ) -> list[str]:
        """Correction hints for the failing pairs."""
        suggestions: list[str] = []
        for pair in failing[: self.max_suggestions]:
            right_item = self.ontology.get(pair.right_id)
            left_item = self.ontology.get(pair.left_id)
            if pattern.affirmative and right_item.kind == ItemKind.OPERATION:
                supporters = self.evaluator.concepts_supporting(
                    right_item.item_id, near=left_item.item_id
                )
                if supporters:
                    names = " or ".join(f"a {item.name}" for item in supporters[:2])
                    suggestions.append(
                        f"'{right_item.name}' works on {names}, not on a {left_item.name}."
                    )
                available = self.evaluator.operations_available(left_item.item_id)
                if available:
                    names = ", ".join(item.name for item in available[:4])
                    suggestions.append(
                        f"A {left_item.name} supports: {names}."
                    )
            elif not pattern.affirmative:
                suggestions.append(
                    f"In fact, {left_item.name} and {right_item.name} do go "
                    f"together in this course."
                )
            else:
                suggestions.append(
                    f"'{left_item.name}' and '{right_item.name}' are not "
                    f"related in the course ontology."
                )
        return suggestions
