"""Teaching Material Recommendation (Figure 3's response arrow).

The architecture diagram shows a "Teaching Material Recommendation"
response flowing back to the chat room.  The recommender watches a
learner's profile: topics where the learner keeps making mistakes get
scaffolding material pulled from the knowledge ontology — the concept's
definition, its symbols, the operations it supports, and any attached
algorithm texts (the Fig.-5 ``type="c"`` snippets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ontology.model import Item, ItemKind, Ontology
from repro.profiles.store import UserProfile

AGENT_NAME = "Material_Recommender"


@dataclass(frozen=True, slots=True)
class Material:
    """One piece of recommended teaching material."""

    topic: str
    kind: str            # "definition" | "symbol" | "operations" | "algorithm"
    title: str
    body: str


@dataclass(frozen=True, slots=True)
class Recommendation:
    """Materials recommended to one learner, with the trigger reason."""

    user: str
    reason: str
    materials: tuple[Material, ...] = field(default_factory=tuple)

    def as_text(self) -> str:
        lines = [f"Study suggestions for {self.user} ({self.reason}):"]
        for material in self.materials:
            lines.append(f"- [{material.kind}] {material.title}: {material.body}")
        return "\n".join(lines)


class TeachingMaterialRecommender:
    """Recommends ontology material for a learner's weak topics."""

    def __init__(
        self,
        ontology: Ontology,
        error_threshold: int = 2,
        max_topics: int = 2,
        max_materials: int = 4,
    ) -> None:
        self.ontology = ontology
        self.error_threshold = error_threshold
        self.max_topics = max_topics
        self.max_materials = max_materials

    # ----------------------------------------------------------------- API

    def weak_topics(self, profile: UserProfile) -> list[str]:
        """Topics the learner discusses while making repeated errors.

        Heuristic: a learner with at least ``error_threshold`` total
        errors gets their most-frequent topics flagged for scaffolding.
        """
        total_errors = profile.syntax_errors + profile.semantic_errors
        if total_errors < self.error_threshold:
            return []
        topics = []
        for topic, _count in profile.topic_counts.most_common():
            item = self.ontology.find(topic)
            if item is not None and item.kind in (ItemKind.CONCEPT, ItemKind.ALGORITHM):
                topics.append(topic)
            if len(topics) >= self.max_topics:
                break
        return topics

    def recommend(self, profile: UserProfile) -> Recommendation | None:
        """A recommendation for the learner, or None when not warranted."""
        topics = self.weak_topics(profile)
        if not topics:
            return None
        materials: list[Material] = []
        for topic in topics:
            item = self.ontology.find(topic)
            if item is None:
                continue
            materials.extend(self.materials_for(item))
            if len(materials) >= self.max_materials:
                break
        if not materials:
            return None
        total_errors = profile.syntax_errors + profile.semantic_errors
        return Recommendation(
            user=profile.name,
            reason=f"{total_errors} errors across {profile.messages} messages",
            materials=tuple(materials[: self.max_materials]),
        )

    def materials_for(self, item: Item) -> list[Material]:
        """All scaffolding material the ontology holds for one item."""
        materials: list[Material] = []
        if item.definition.description:
            materials.append(
                Material(item.name, "definition", item.name, item.definition.description)
            )
        for symbol, text in item.definition.symbols.items():
            materials.append(Material(item.name, "symbol", f"{item.name}.{symbol}", text))
        if item.kind == ItemKind.CONCEPT:
            operations = self.ontology.operations_of(item.item_id)
            if operations:
                names = ", ".join(sorted(op.name for op in operations))
                materials.append(
                    Material(
                        item.name,
                        "operations",
                        f"operations of {item.name}",
                        names,
                    )
                )
        for algorithm in item.algorithms:
            materials.append(
                Material(
                    item.name,
                    "algorithm",
                    f"{algorithm.name} ({algorithm.type})",
                    algorithm.body,
                )
            )
        return materials
