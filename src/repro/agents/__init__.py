"""Supervising agents: Learning_Angel, Semantic Agent, and the ablation
baseline Semantic Link Grammar agent."""

from .learning_angel import LearningAngelAgent
from .recommender import Material, Recommendation, TeachingMaterialRecommender
from .reports import (
    AgentReply,
    PairEvaluation,
    SemanticReview,
    SemanticVerdict,
    Severity,
    SyntaxReview,
)
from .semantic_agent import SemanticAgent
from .semantic_lg import SemanticLGReview, SemanticLinkGrammarAgent

__all__ = [
    "AgentReply",
    "LearningAngelAgent",
    "Material",
    "Recommendation",
    "TeachingMaterialRecommender",
    "PairEvaluation",
    "SemanticAgent",
    "SemanticLGReview",
    "SemanticLinkGrammarAgent",
    "SemanticReview",
    "SemanticVerdict",
    "Severity",
    "SyntaxReview",
]
