"""Picklable merge payloads: the wire form of a shard replica.

The ``process`` runtime mode runs shard drains in child processes, so a
replica's buffered writes have to cross a process boundary twice per
barrier: child → parent (the worker ships what it wrote) and parent →
children (the parent broadcasts every shard's writes so each child's
private base stores evolve in lock-step with the parent's).

Every ``merge(replica)`` implementation in this codebase reads exactly
two things from the replica it is handed: ``replica.base_len`` (the
snapshot watermark the merge interleaves behind) and ``replica.pending``
(the origin-tagged buffered writes).  :class:`ReplicaDelta` is therefore
a complete stand-in for the replica on the merge path — a plain
picklable record exposing those two attributes and nothing else.  No
base-store back-reference travels with it, which is the point: the full
replica would drag the entire base store (and, transitively, parser
state) through pickle on every cycle, while the delta costs only the
writes of one batch.

``delta_of`` snapshots a live replica into its wire form.  The pending
payload is shallow-copied so the delta stays frozen even though the
replica object lives on in the worker and is rebased at the next
barrier.  The buffered write values themselves (corpus records + token
sets, profile tallies, FAQ bumps) are plain data and must stay
picklable — ``tests/state/test_pickle_surface.py`` holds that contract.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any


@dataclass(slots=True)
class ReplicaDelta:
    """The merge-visible surface of one store replica, as plain data.

    Attributes:
        base_len: the replica's fork watermark — ``merge()`` uses it to
            find the barrier floor behind which buffered writes
            interleave.
        pending: the replica's origin-tagged buffered writes, in the
            exact shape the owning store's ``merge()`` expects (a list
            for the corpus, keyed dicts for profiles and FAQ).
    """

    base_len: int
    pending: Any

    def __len__(self) -> int:
        return len(self.pending)


def delta_of(replica: Any) -> ReplicaDelta:
    """Freeze ``replica``'s merge surface into a :class:`ReplicaDelta`.

    The copy is one level deep: the pending container is duplicated (so
    a later ``rebase()`` cannot empty the delta under the consumer) but
    the buffered write values are shared — they are immutable by the
    replica contract once the origin moves on.
    """
    return ReplicaDelta(replica.base_len, copy.copy(replica.pending))
