"""Shard-local state ownership: the partition-and-merge layer.

The supervision runtime scales by giving every worker a private replica
of each mutable store (learner corpus, user profiles, FAQ database) and
merging the replicas back at drain barriers — the same shape PR 2 gave
``SupervisionStats``.  This package defines the contract those stores
implement; see :mod:`repro.state.mergeable`.
"""

from .delta import ReplicaDelta, delta_of
from .mergeable import MergeableStore, StoreReplica, snapshots_equal

__all__ = [
    "MergeableStore",
    "ReplicaDelta",
    "StoreReplica",
    "delta_of",
    "snapshots_equal",
]
