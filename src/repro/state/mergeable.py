"""The ``MergeableStore`` protocol: fork → shard replica → merge.

Every mutable store the supervision pipeline touches (the learner
corpus, the user-profile database, the FAQ database — and, since PR 2,
the stats counters) follows one ownership discipline so drains can run
on real parallelism:

* ``fork()`` hands a worker a **shard replica**: a cheap overlay whose
  *reads* see the base store frozen at the fork point (the snapshot) and
  whose *writes* are buffered locally.  No replica ever mutates the base
  or another replica, so N workers can drain N shards concurrently with
  zero locking on the stores.
* ``merge(replica)`` folds one replica's buffered writes back into the
  base at the drain barrier.  Merges are **order-independent**: merging
  any permutation of the same replicas yields an identical base store,
  because each buffered write carries its *origin* (the global message
  sequence number captured at post time) and the merge orders by origin,
  not by arrival.  Counter-like state (tallies, histograms, FAQ counts)
  commutes outright; ordered state (corpus record positions and ids, FAQ
  representative surface forms) is re-derived from the origin order.
* ``snapshot()`` returns a canonical, directly comparable value of the
  whole store — the merge-determinism test suites assert
  ``snapshot()`` equality between runtimes, worker counts and merge
  permutations.

The contract deliberately says nothing about threads: replicas are
plain single-owner objects.  The runtime provides the discipline — fork
at worker creation, one worker thread per replica while draining, merge
then :meth:`StoreReplica.rebase` at the barrier, never concurrently.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable


@runtime_checkable
class StoreReplica(Protocol):
    """A shard-local overlay handed to one worker by ``fork()``."""

    @property
    def base_len(self) -> int:
        """Size of the base view this replica was forked at (the
        watermark the merge interleaves behind)."""
        ...

    def begin_origin(self, seq: int) -> None:
        """Tag subsequent buffered writes with the originating message's
        global sequence number (called once per supervised item)."""
        ...

    def rebase(self) -> None:
        """Reset the replica onto the merged base: drop the local buffer
        and advance the snapshot watermark.  Called at the barrier after
        *every* replica of the cycle has merged, so workers can keep one
        replica object alive across drain cycles."""
        ...


@runtime_checkable
class MergeableStore(Protocol):
    """A store whose mutations can be partitioned across shard replicas
    and deterministically merged back."""

    def fork(self) -> Any:
        """A fresh :class:`StoreReplica` over this store's current state."""
        ...

    def merge(self, replica: Any) -> None:
        """Fold one replica's buffered writes into this store.  Merging
        the same set of replicas in any order must produce an identical
        :meth:`snapshot`."""
        ...

    def snapshot(self) -> Any:
        """A canonical, equality-comparable value of the full store."""
        ...


def snapshots_equal(left: MergeableStore, right: MergeableStore) -> bool:
    """Whether two stores hold identical state (canonical comparison)."""
    return left.snapshot() == right.snapshot()
