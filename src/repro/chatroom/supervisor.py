"""The supervision pipeline: Figure 3's operation flow, wired.

Every user message is split into sentences and each sentence runs the
paper's flow: Learning_Angel (syntax) → pattern classification → either
the QA subsystem (questions) or the Semantic Agent (statements); analysed
sentences are recorded into the Learner Corpus and the User Profile
database, and agent replies are posted back into the room.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.learning_angel import LearningAngelAgent
from repro.agents.reports import SemanticVerdict
from repro.agents.semantic_agent import SemanticAgent
from repro.corpus.records import Correctness
from repro.linkgrammar.tokenizer import split_sentences, tokenize
from repro.nlp.patterns import classify
from repro.profiles.store import UserProfileStore
from repro.qa.engine import QASystem

from .messages import ChatMessage, MessageKind, Role
from .server import ChatServer

QA_AGENT_NAME = "QA_System"


@dataclass(slots=True)
class SupervisionStats:
    """Running counters kept by the pipeline (benchmarked in F3)."""

    messages: int = 0
    sentences: int = 0
    syntax_errors: int = 0
    semantic_violations: int = 0
    misconceptions: int = 0
    questions: int = 0
    questions_answered: int = 0
    faq_hits: int = 0
    agent_replies: int = 0
    corrections_suggested: int = 0


@dataclass(slots=True)
class SupervisionPolicy:
    """Behaviour knobs for the pipeline.

    Attributes:
        reply_to_errors: post agent replies on detected problems.
        reply_to_questions: post QA answers into the room.
        reply_when_unanswered: apologise when QA finds nothing.
        max_replies_per_message: cap agent chatter per user message.
        supervise_teachers: also review teacher messages (off by
            default — the paper's agents supervise *learners*, and
            instructor material is often outside the learner grammar).
    """

    reply_to_errors: bool = True
    reply_to_questions: bool = True
    reply_when_unanswered: bool = True
    max_replies_per_message: int = 4
    supervise_teachers: bool = False


class SupervisionPipeline:
    """Binds the agents, QA system, corpus and profiles to a server."""

    def __init__(
        self,
        learning_angel: LearningAngelAgent,
        semantic_agent: SemanticAgent,
        qa_system: QASystem,
        profiles: UserProfileStore,
        policy: SupervisionPolicy | None = None,
    ) -> None:
        self.learning_angel = learning_angel
        self.semantic_agent = semantic_agent
        self.qa_system = qa_system
        self.profiles = profiles
        self.policy = policy or SupervisionPolicy()
        self.stats = SupervisionStats()

    # ------------------------------------------------------------ pipeline

    def on_message(self, server: ChatServer, message: ChatMessage) -> None:
        """Supervise one delivered user message."""
        if message.kind != MessageKind.USER:
            return
        if not self.policy.supervise_teachers:
            participant = server.get_room(message.room).participants.get(message.sender)
            if participant is not None and participant.role == Role.TEACHER:
                return
        self.stats.messages += 1
        replies_posted = 0
        for sentence in split_sentences(message.text):
            replies_posted += self._supervise_sentence(server, message, sentence, replies_posted)

    def _supervise_sentence(
        self,
        server: ChatServer,
        message: ChatMessage,
        sentence: str,
        already_posted: int,
    ) -> int:
        self.stats.sentences += 1
        now = server.clock.now()
        # Tokenise and classify exactly once; every stage below receives
        # the precomputed analysis instead of re-deriving it.
        tokenized = tokenize(sentence)
        pattern = classify(tokenized)
        review = self.learning_angel.review(tokenized, pattern=pattern)
        posted = 0

        if pattern.is_question:
            posted += self._handle_question(server, message, sentence, review, now, already_posted)
            return posted

        mistake_kinds: list[str] = []
        semantic_notes: list[str] = []
        verdict = Correctness.CORRECT

        if not review.is_correct:
            self.stats.syntax_errors += 1
            verdict = Correctness.SYNTAX_ERROR
            mistake_kinds = [issue.kind.value for issue in review.diagnosis.issues]
            if self.policy.reply_to_errors:
                for reply in review.as_replies():
                    if already_posted + posted >= self.policy.max_replies_per_message:
                        break
                    server.post_agent_reply(
                        message.room, reply.agent, reply.text, message, reply.severity.value
                    )
                    posted += 1
                    self.stats.agent_replies += 1
                    if reply.severity.value == "correction":
                        self.stats.corrections_suggested += 1
        else:
            # Learning_Angel's keyword matches are reusable only when both
            # agents share one keyword filter (the default wiring).
            shared_keywords = (
                review.keywords
                if self.learning_angel.keyword_filter is self.semantic_agent.keyword_filter
                else None
            )
            semantic = self.semantic_agent.review(
                tokenized,
                syntactically_ok=True,
                analysis=pattern,
                keywords=shared_keywords,
            )
            if semantic.verdict == SemanticVerdict.VIOLATION:
                self.stats.semantic_violations += 1
                verdict = Correctness.SEMANTIC_ERROR
            elif semantic.verdict == SemanticVerdict.MISCONCEPTION:
                self.stats.misconceptions += 1
                verdict = Correctness.SEMANTIC_ERROR
            if semantic.is_anomalous:
                semantic_notes = [
                    f"{pair.left}~{pair.right}" for pair in semantic.pairs if not pair.holds
                ]
                if self.policy.reply_to_errors:
                    for reply in semantic.as_replies():
                        if already_posted + posted >= self.policy.max_replies_per_message:
                            break
                        server.post_agent_reply(
                            message.room, reply.agent, reply.text, message, reply.severity.value
                        )
                        posted += 1
                        self.stats.agent_replies += 1
                        if reply.severity.value == "correction":
                            self.stats.corrections_suggested += 1

        self.learning_angel.record(
            review,
            user=message.sender,
            room=message.room,
            timestamp=now,
            verdict=verdict,
            semantic_issues=semantic_notes,
        )
        self.profiles.record_activity(
            message.sender,
            now,
            syntax_error=(verdict == Correctness.SYNTAX_ERROR),
            semantic_error=(verdict == Correctness.SEMANTIC_ERROR),
            question=False,
            mistake_kinds=tuple(mistake_kinds),
            topics=tuple(match.name for match in review.keywords),
        )
        return posted

    def _handle_question(
        self,
        server: ChatServer,
        message: ChatMessage,
        sentence: str,
        review,
        now: float,
        already_posted: int,
    ) -> int:
        self.stats.questions += 1
        answer = self.qa_system.answer(sentence, now=now)
        posted = 0
        if answer.answered:
            self.stats.questions_answered += 1
            if answer.is_faq_hit:
                self.stats.faq_hits += 1
            if (
                self.policy.reply_to_questions
                and already_posted < self.policy.max_replies_per_message
            ):
                server.post_agent_reply(
                    message.room, QA_AGENT_NAME, answer.text, message, "info"
                )
                posted += 1
                self.stats.agent_replies += 1
        elif (
            self.policy.reply_when_unanswered
            and already_posted < self.policy.max_replies_per_message
        ):
            server.post_agent_reply(
                message.room,
                QA_AGENT_NAME,
                "I could not find an answer to that in the course material.",
                message,
                "info",
            )
            posted += 1
            self.stats.agent_replies += 1

        self.learning_angel.record(
            review,
            user=message.sender,
            room=message.room,
            timestamp=now,
            verdict=Correctness.QUESTION,
        )
        self.profiles.record_activity(
            message.sender,
            now,
            question=True,
            topics=tuple(match.name for match in review.keywords),
        )
        return posted
