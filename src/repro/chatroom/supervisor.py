"""The supervision pipeline: Figure 3's operation flow, wired.

Every user message is split into sentences and each sentence runs the
paper's flow: Learning_Angel (syntax) → pattern classification → either
the QA subsystem (questions) or the Semantic Agent (statements); analysed
sentences are recorded into the Learner Corpus and the User Profile
database, and agent replies are posted back into the room.

The pipeline consumes :class:`~repro.chatroom.shard.SupervisionItem`
work items (message + room resolved once at post time) and splits each
sentence's handling into a *pure analysis* step and an *apply* step
(stats, replies, recording).  The split is what makes batch dedup sound:
analyses of syntactically-correct sentences depend only on static state
(dictionary, ontology, keyword filter), so a drain batch can compute
them once per distinct sentence and fan the result out across rooms.
In the shared-store modes, faulty sentences consult the growing learner
corpus for suggestions and are therefore always analysed fresh, keeping
every mode's per-item output identical to the synchronous pipeline's.

**Shard-local mode** (:meth:`SupervisionPipeline.fork_shard`): the
``parallel`` runtime hands every worker a pipeline twin bound to shard
replicas of the corpus, profile and FAQ stores (see :mod:`repro.state`),
with agent replies buffered in an outbox the runtime flushes in post
order at the drain barrier.  Because replica reads are frozen at the
barrier snapshot, *every* analysis — faulty sentences included — becomes
a pure function of (sentence, snapshot) and the batch memo may share
them across rooms, shards and worker threads.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable

from repro.agents.learning_angel import LearningAngelAgent
from repro.agents.reports import SemanticReview, SemanticVerdict, SyntaxReview
from repro.agents.semantic_agent import SemanticAgent
from repro.corpus.records import Correctness
from repro.linkgrammar.tokenizer import TokenizedSentence, split_sentences, tokenize
from repro.nlp.patterns import PatternAnalysis, classify
from repro.profiles.store import UserProfileStore
from repro.qa.engine import QASystem

from .messages import ChatMessage, MessageKind, Role
from .server import ChatServer
from .shard import SupervisionItem

QA_AGENT_NAME = "QA_System"


@dataclass(slots=True)
class SupervisionStats:
    """Running counters kept by the pipeline (benchmarked in F3)."""

    messages: int = 0
    sentences: int = 0
    syntax_errors: int = 0
    semantic_violations: int = 0
    misconceptions: int = 0
    questions: int = 0
    questions_answered: int = 0
    faq_hits: int = 0
    agent_replies: int = 0
    corrections_suggested: int = 0

    def merge(self, other: "SupervisionStats") -> "SupervisionStats":
        """Add ``other``'s counters into this instance (returns self)."""
        for fld in dataclasses.fields(SupervisionStats):
            setattr(self, fld.name, getattr(self, fld.name) + getattr(other, fld.name))
        return self

    @classmethod
    def total(cls, parts: Iterable["SupervisionStats"]) -> "SupervisionStats":
        """A fresh stats object holding the sum of ``parts``."""
        combined = cls()
        for part in parts:
            combined.merge(part)
        return combined


@dataclass(slots=True)
class _SentenceAnalysis:
    """The pure (side-effect-free) analysis of one sentence.

    ``shareable`` marks analyses that depend only on static state — a
    syntactically-correct review never touches the learner corpus — and
    may therefore be fanned out across rooms within a drain batch.  The
    semantic review is filled lazily by the first statement that needs
    it and reused by every later duplicate.
    """

    tokenized: TokenizedSentence
    pattern: PatternAnalysis
    review: SyntaxReview
    shareable: bool
    semantic: SemanticReview | None = None


@dataclass(slots=True)
class _SentencePlan:
    """One sentence's planned supervision: analysis done, nothing applied.

    ``on_item`` plans *every* sentence of a message before committing
    any of them.  All the fallible work — parsing, semantic review, QA
    resolution — happens during planning under the resilience stage
    guards; the commit phase only writes stores and posts replies.  An
    injected or real fault therefore always strikes before the item has
    any side effects, which is what makes retrying or redriving the
    item exactly-once.
    """

    sentence: str
    analysis: _SentenceAnalysis
    resolution: object | None = None


@dataclass(slots=True)
class ShardStores:
    """One worker's bundle of shard replicas plus its reply outbox.

    The runtime owns the barrier protocol: :meth:`merge` folds every
    replica into its base store (order-independent across workers),
    :meth:`take_replies` surfaces the buffered agent replies for the
    post-order flush, and :meth:`rebase` re-snapshots the replicas for
    the next cycle once *all* workers have merged.
    """

    corpus: object | None
    profiles: object
    faq: object
    outbox: list = field(default_factory=list)
    pipeline: "SupervisionPipeline | None" = None

    def begin(self, seq: int) -> None:
        """Tag subsequent writes with the originating message seq."""
        if self.corpus is not None:
            self.corpus.begin_origin(seq)
        self.profiles.begin_origin(seq)
        self.faq.begin_origin(seq)

    def merge(self) -> None:
        if self.corpus is not None:
            self.corpus.base.merge(self.corpus)
        self.profiles.base.merge(self.profiles)
        corrections = self.faq.base.merge(self.faq)
        if corrections and self.pipeline is not None:
            # Questions this shard missed that an earlier-in-post-order
            # shard had already asked: hits, sequentially speaking.
            self.pipeline.stats.faq_hits += corrections

    def rebase(self) -> None:
        if self.corpus is not None:
            self.corpus.rebase()
        self.profiles.rebase()
        self.faq.rebase()

    def take_replies(self) -> list:
        replies, self.outbox = self.outbox, []
        return replies


@dataclass(slots=True)
class SupervisionPolicy:
    """Behaviour knobs for the pipeline.

    Attributes:
        reply_to_errors: post agent replies on detected problems.
        reply_to_questions: post QA answers into the room.
        reply_when_unanswered: apologise when QA finds nothing.
        max_replies_per_message: cap agent chatter per user message.
        supervise_teachers: also review teacher messages (off by
            default — the paper's agents supervise *learners*, and
            instructor material is often outside the learner grammar).
    """

    reply_to_errors: bool = True
    reply_to_questions: bool = True
    reply_when_unanswered: bool = True
    max_replies_per_message: int = 4
    supervise_teachers: bool = False


class SupervisionPipeline:
    """Binds the agents, QA system, corpus and profiles to a server.

    One pipeline instance is one worker's supervision state: the heavy
    collaborators (agents, QA, profiles) are shared, the stats counters
    are private.  The sharded runtime calls :meth:`clone` once per extra
    worker; :meth:`combined_stats` merges every clone's counters back
    into the global view on demand.
    """

    def __init__(
        self,
        learning_angel: LearningAngelAgent,
        semantic_agent: SemanticAgent,
        qa_system: QASystem,
        profiles: UserProfileStore,
        policy: SupervisionPolicy | None = None,
    ) -> None:
        self.learning_angel = learning_angel
        self.semantic_agent = semantic_agent
        self.qa_system = qa_system
        self.profiles = profiles
        self.policy = policy or SupervisionPolicy()
        self.stats = SupervisionStats()
        self._clones: list["SupervisionPipeline"] = []
        # Shard-local mode (set by fork_shard): replicas + reply outbox.
        self.shard_stores: ShardStores | None = None
        self._reply_n = 0
        # Set by the system wiring: the shared ResilienceController whose
        # stage guards wrap the plan phase.  None = unguarded (plain
        # calls), which bare pipelines outside a system keep.
        self.resilience = None

    # ------------------------------------------------------------ sharding

    def clone(self) -> "SupervisionPipeline":
        """A per-worker twin: shared agents and stores, fresh stats."""
        twin = SupervisionPipeline(
            self.learning_angel,
            self.semantic_agent,
            self.qa_system,
            self.profiles,
            self.policy,
        )
        twin.resilience = self.resilience
        self._clones.append(twin)
        return twin

    def fork_shard(self) -> tuple["SupervisionPipeline", ShardStores]:
        """A per-worker twin owning private store replicas.

        The twin's agents share every static collaborator (dictionary,
        parse options, keyword filter, ontology, matcher, parse cache)
        but write to forked replicas of the corpus, profile and FAQ
        stores, and buffer agent replies in the returned bundle's
        outbox.  Stats are private, merged via :meth:`combined_stats`
        like any clone's.
        """
        corpus = self.learning_angel.corpus
        stores = ShardStores(
            corpus=corpus.fork() if corpus is not None else None,
            profiles=self.profiles.fork(),
            faq=self.qa_system.faq.fork(),
        )
        twin = SupervisionPipeline(
            self.learning_angel.fork(stores.corpus),
            self.semantic_agent,
            self.qa_system.fork(faq=stores.faq, corpus=stores.corpus),
            stores.profiles,
            self.policy,
        )
        twin.shard_stores = stores
        stores.pipeline = twin
        twin.resilience = self.resilience
        self._clones.append(twin)
        return twin, stores

    def process_spec(self):
        """The pickled construction recipe for a child-process twin.

        Everything a :meth:`fork_shard` twin derives from live objects is
        reduced to plain data: the dictionary (its pickle surface drops
        the interned tables, lock and shared parse cache), the ontology,
        the parse options and policy knobs, and the current base stores.
        The child rebuilds keyword filter, agents, QA wiring and parse
        caches from scratch — see
        :class:`~repro.chatroom.procworker.PipelineProcessSpec`.
        """
        from .procworker import PipelineProcessSpec

        angel = self.learning_angel
        semantic = self.semantic_agent
        return PipelineProcessSpec(
            dictionary=angel.analyzer.dictionary,
            ontology=semantic.ontology,
            parse_options=angel.options,
            policy=self.policy,
            repair=angel.repairer is not None,
            related_threshold=semantic.evaluator.related_threshold,
            max_suggestions=semantic.max_suggestions,
            corpus=angel.corpus,
            profiles=self.profiles,
            faq=self.qa_system.faq,
        )

    def absorb_shard_delta(self, delta) -> int:
        """Fold one worker's shipped store delta into the live bases.

        The parent-side half of the ``process`` barrier: the delta's
        :class:`~repro.state.delta.ReplicaDelta` payloads feed the same
        ``merge()`` implementations :meth:`ShardStores.merge` uses, so
        the merged state is identical to a thread-pool barrier.  Returns
        the FAQ *corrections* count — cross-shard duplicate questions
        that count as hits, credited by the runtime to the originating
        worker's stats sink exactly as ``ShardStores.merge`` credits the
        worker twin.
        """
        if delta.corpus is not None and self.learning_angel.corpus is not None:
            self.learning_angel.corpus.merge(delta.corpus)
        self.profiles.merge(delta.profiles)
        return self.qa_system.faq.merge(delta.faq)

    def combined_stats(self) -> SupervisionStats:
        """This pipeline's stats merged with every clone's (global view)."""
        if not self._clones:
            return self.stats
        return SupervisionStats.total([self.stats, *(c.stats for c in self._clones)])

    def worker_stats(self) -> list[SupervisionStats]:
        """Per-worker stats, prototype first (shard load inspection)."""
        return [self.stats, *(clone.stats for clone in self._clones)]

    # ------------------------------------------------------------ pipeline

    def on_message(self, server: ChatServer, message: ChatMessage) -> None:
        """Supervise one delivered user message (legacy entry point)."""
        room = server.get_room(message.room)
        participant = room.participants.get(message.sender)
        role = participant.role if participant is not None else None
        self.on_item(server, SupervisionItem(message, room, role))

    def on_item(
        self,
        server: ChatServer,
        item: SupervisionItem,
        memo: dict | None = None,
    ) -> None:
        """Supervise one work item; ``memo`` shares analyses in a batch.

        Two phases.  **Plan** runs every sentence's fallible analysis —
        parsing, semantic review, QA resolution — under the resilience
        stage guards, touching no store.  **Commit** then applies the
        plans: counters, corpus records, profiles, FAQ bumps, replies.
        The single :meth:`ResilienceController.guard_commit` crossing
        between the phases is the last point a fault can strike, so a
        failed item is always side-effect free and safe to retry,
        defer or redrive without double-counting.
        """
        message = item.message
        if message.kind != MessageKind.USER:
            return
        if not self.policy.supervise_teachers and item.sender_role == Role.TEACHER:
            return
        plans = [
            self._plan_sentence(message, index, sentence, memo)
            for index, sentence in enumerate(split_sentences(message.text))
        ]
        if self.resilience is not None:
            self.resilience.guard_commit(str(message.seq))
        if self.shard_stores is not None:
            # Tag this item's writes (corpus records, FAQ bumps, replies)
            # with the message's global seq so the barrier merge can
            # restore post order across shards.
            self.shard_stores.begin(message.seq)
            self._reply_n = 0
        self.stats.messages += 1
        replies_posted = 0
        for index, plan in enumerate(plans):
            replies_posted += self._commit_sentence(
                server, message, plan, index, replies_posted
            )

    def _plan_sentence(
        self,
        message: ChatMessage,
        index: int,
        sentence: str,
        memo: dict | None,
    ) -> _SentencePlan:
        """Run one sentence's pure analysis under the stage guards.

        The guard key ``seq:index`` makes retry backoff deterministic
        per sentence; the guarded calls themselves are pure (memoised
        analysis, pure QA resolution), so re-invoking them after a
        transient fault is free of side effects by construction.
        """
        resilience = self.resilience
        key = f"{message.seq}:{index}"
        if resilience is None:
            analysis = self._analyze_sentence(sentence, memo)
        else:
            analysis = resilience.guard(
                "parser", key, lambda: self._analyze_sentence(sentence, memo)
            )
        plan = _SentencePlan(sentence=sentence, analysis=analysis)
        if analysis.pattern.is_question:
            if resilience is None:
                plan.resolution = self._resolve_question(sentence, memo)
            else:
                plan.resolution = resilience.guard(
                    "qa", key, lambda: self._resolve_question(sentence, memo)
                )
        elif analysis.review.is_correct:
            # Fill the lazy semantic review now (cached on the analysis),
            # so the commit phase's read is guaranteed fault-free.
            if resilience is None:
                self._semantic_review(analysis)
            else:
                resilience.guard(
                    "semantic", key, lambda: self._semantic_review(analysis)
                )
        return plan

    def _analyze_sentence(
        self, sentence: str, memo: dict | None
    ) -> _SentenceAnalysis:
        """Tokenise, classify and review one sentence — pure, memoisable.

        Reviews of correct sentences are corpus-independent, so duplicates
        within a batch reuse the first occurrence's analysis; faulty
        sentences re-run (their suggestion search reads the live corpus).

        The memo key carries the identities of the static state a review
        depends on (dictionary, parse options, keyword filter, semantic
        agent): clones *and shard forks* of one pipeline share entries,
        while unrelated pipelines registered on the same server
        (different dictionary or keyword filter) never serve each
        other's analyses.

        In shard-local mode every analysis is memoisable: replica reads
        are frozen at the barrier snapshot, so even a faulty sentence's
        suggestion search is a pure function of (sentence, snapshot) for
        the length of the cycle.  Because those entries embed
        corpus-dependent suggestions, the key then also carries the
        *base* corpus identity — shard forks of one pipeline share it,
        pipelines bound to different corpora never do.  The runtime
        hands each barrier cycle a fresh memo, so no entry outlives the
        snapshot it was computed against.
        """
        stores = self.shard_stores
        corpus_id = (
            id(stores.corpus.base)
            if stores is not None and stores.corpus is not None
            else None
        )
        key = (self.learning_angel.analysis_key, id(self.semantic_agent), corpus_id, sentence)
        if memo is not None:
            cached = memo.get(key)
            if cached is not None:
                return cached
        tokenized = tokenize(sentence)
        pattern = classify(tokenized)
        review = self.learning_angel.review(tokenized, pattern=pattern)
        analysis = _SentenceAnalysis(
            tokenized=tokenized,
            pattern=pattern,
            review=review,
            shareable=review.is_correct,
        )
        if memo is not None and (analysis.shareable or self.shard_stores is not None):
            memo[key] = analysis
        return analysis

    def _semantic_review(self, analysis: _SentenceAnalysis) -> SemanticReview:
        """The (lazily computed, shareable) semantic review of a statement."""
        semantic = analysis.semantic
        if semantic is not None:
            return semantic
        # Learning_Angel's keyword matches are reusable only when both
        # agents share one keyword filter (the default wiring).
        shared_keywords = (
            analysis.review.keywords
            if self.learning_angel.keyword_filter is self.semantic_agent.keyword_filter
            else None
        )
        semantic = self.semantic_agent.review(
            analysis.tokenized,
            syntactically_ok=True,
            analysis=analysis.pattern,
            keywords=shared_keywords,
        )
        analysis.semantic = semantic
        return semantic

    def _emit_reply(
        self,
        server: ChatServer,
        message: ChatMessage,
        agent: str,
        text: str,
        severity: str,
    ) -> None:
        """Post one agent reply — or, in shard-local mode, buffer it.

        Buffered replies carry ``(message seq, emission index)`` so the
        runtime's barrier flush restores the exact post order the
        sequential pipeline would have produced.
        """
        stores = self.shard_stores
        if stores is not None:
            stores.outbox.append(
                (message.seq, self._reply_n, message.room, agent, text, message, severity)
            )
            self._reply_n += 1
        else:
            server.post_agent_reply(message.room, agent, text, message, severity)

    def _commit_sentence(
        self,
        server: ChatServer,
        message: ChatMessage,
        plan: _SentencePlan,
        index: int,
        already_posted: int,
    ) -> int:
        """Apply one planned sentence: counters, stores, replies.

        Commits stamp the *message's post timestamp*, not the drain
        clock: a deferred, retried or redriven item must produce the
        exact records the fault-free run would have, and the drain time
        is the one input a fault changes.
        """
        self.stats.sentences += 1
        now = message.timestamp
        analysis = plan.analysis
        pattern = analysis.pattern
        review = analysis.review
        posted = 0

        if pattern.is_question:
            posted += self._handle_question(
                server, message, plan, index, now, already_posted
            )
            return posted

        mistake_kinds: list[str] = []
        semantic_notes: list[str] = []
        verdict = Correctness.CORRECT

        if not review.is_correct:
            self.stats.syntax_errors += 1
            verdict = Correctness.SYNTAX_ERROR
            mistake_kinds = [issue.kind.value for issue in review.diagnosis.issues]
            if self.policy.reply_to_errors:
                for reply in review.as_replies():
                    if already_posted + posted >= self.policy.max_replies_per_message:
                        break
                    self._emit_reply(
                        server, message, reply.agent, reply.text, reply.severity.value
                    )
                    posted += 1
                    self.stats.agent_replies += 1
                    if reply.severity.value == "correction":
                        self.stats.corrections_suggested += 1
        else:
            semantic = self._semantic_review(analysis)
            if semantic.verdict == SemanticVerdict.VIOLATION:
                self.stats.semantic_violations += 1
                verdict = Correctness.SEMANTIC_ERROR
            elif semantic.verdict == SemanticVerdict.MISCONCEPTION:
                self.stats.misconceptions += 1
                verdict = Correctness.SEMANTIC_ERROR
            if semantic.is_anomalous:
                semantic_notes = [
                    f"{pair.left}~{pair.right}" for pair in semantic.pairs if not pair.holds
                ]
                if self.policy.reply_to_errors:
                    for reply in semantic.as_replies():
                        if already_posted + posted >= self.policy.max_replies_per_message:
                            break
                        self._emit_reply(
                            server, message, reply.agent, reply.text, reply.severity.value
                        )
                        posted += 1
                        self.stats.agent_replies += 1
                        if reply.severity.value == "correction":
                            self.stats.corrections_suggested += 1

        self.learning_angel.record(
            review,
            user=message.sender,
            room=message.room,
            timestamp=now,
            verdict=verdict,
            semantic_issues=semantic_notes,
        )
        self.profiles.record_activity(
            message.sender,
            now,
            syntax_error=(verdict == Correctness.SYNTAX_ERROR),
            semantic_error=(verdict == Correctness.SEMANTIC_ERROR),
            question=False,
            mistake_kinds=tuple(mistake_kinds),
            topics=tuple(match.name for match in review.keywords),
        )
        return posted

    def _resolve_question(self, sentence: str, memo: dict | None):
        """The pure resolution of one question, each distinct one once.

        Mirrors the sentence-analysis split: the resolution (template
        match + lazy ontology answer) is memoised across the drain
        batch, keyed by the static matcher identity so pipeline clones
        and shard forks share entries.  The per-item apply (FAQ lookup
        and bump, corpus fallback) runs in the commit phase.
        """
        key = None
        if memo is not None:
            key = ("qa", id(self.qa_system.matcher), sentence)
            resolution = memo.get(key)
            if resolution is not None:
                return resolution
        resolution = self.qa_system.resolve(sentence)
        if memo is not None:
            memo[key] = resolution
        return resolution

    def _handle_question(
        self,
        server: ChatServer,
        message: ChatMessage,
        plan: _SentencePlan,
        index: int,
        now: float,
        already_posted: int,
    ) -> int:
        review = plan.analysis.review
        self.stats.questions += 1
        # The origin (message seq, sentence index) keys FAQ merge order:
        # a redriven or backfilled question commits late, and the origin
        # is what keeps the FAQ's representative entry the one the
        # fault-free, in-order run would have kept.
        answer = self.qa_system.apply_resolution(
            plan.resolution, now=now, origin=(message.seq, index)
        )
        posted = 0
        if answer.answered:
            self.stats.questions_answered += 1
            if answer.is_faq_hit:
                self.stats.faq_hits += 1
            if (
                self.policy.reply_to_questions
                and already_posted < self.policy.max_replies_per_message
            ):
                self._emit_reply(server, message, QA_AGENT_NAME, answer.text, "info")
                posted += 1
                self.stats.agent_replies += 1
        elif (
            self.policy.reply_when_unanswered
            and already_posted < self.policy.max_replies_per_message
        ):
            self._emit_reply(
                server,
                message,
                QA_AGENT_NAME,
                "I could not find an answer to that in the course material.",
                "info",
            )
            posted += 1
            self.stats.agent_replies += 1

        self.learning_angel.record(
            review,
            user=message.sender,
            room=message.room,
            timestamp=now,
            verdict=Correctness.QUESTION,
        )
        self.profiles.record_activity(
            message.sender,
            now,
            question=True,
            topics=tuple(match.name for match in review.keywords),
        )
        return posted
