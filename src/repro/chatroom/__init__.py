"""Augmentative chat room substrate: deterministic rooms + supervision."""

from .clock import SimulatedClock
from .events import (
    AgentIntervened,
    Event,
    EventBus,
    MessageDelivered,
    UserJoined,
    UserLeft,
)
from .messages import ChatMessage, MessageKind, Participant, Role
from .room import ChatRoom, ChatRoomError
from .runtime import (
    DrainBudget,
    MULTI_WORKER_MODES,
    POOL_MODES,
    RUNTIME_MODES,
    SupervisionRuntime,
)
from .server import ChatServer
from .shard import ShardQueue, SupervisionItem, SupervisionWorker, shard_of
from .supervisor import (
    QA_AGENT_NAME,
    ShardStores,
    SupervisionPipeline,
    SupervisionPolicy,
    SupervisionStats,
)

__all__ = [
    "AgentIntervened",
    "ChatMessage",
    "ChatRoom",
    "ChatRoomError",
    "ChatServer",
    "DrainBudget",
    "Event",
    "EventBus",
    "MessageDelivered",
    "MessageKind",
    "MULTI_WORKER_MODES",
    "Participant",
    "POOL_MODES",
    "QA_AGENT_NAME",
    "Role",
    "RUNTIME_MODES",
    "ShardQueue",
    "ShardStores",
    "SimulatedClock",
    "SupervisionItem",
    "SupervisionPipeline",
    "SupervisionPolicy",
    "SupervisionRuntime",
    "SupervisionStats",
    "SupervisionWorker",
    "UserJoined",
    "UserLeft",
    "shard_of",
]
