"""Augmentative chat room substrate: deterministic rooms + supervision."""

from .clock import SimulatedClock
from .events import (
    AgentIntervened,
    Event,
    EventBus,
    MessageDelivered,
    UserJoined,
    UserLeft,
)
from .messages import ChatMessage, MessageKind, Participant, Role
from .room import ChatRoom, ChatRoomError
from .runtime import RUNTIME_MODES, SupervisionRuntime
from .server import ChatServer
from .shard import ShardQueue, SupervisionItem, SupervisionWorker, shard_of
from .supervisor import (
    QA_AGENT_NAME,
    SupervisionPipeline,
    SupervisionPolicy,
    SupervisionStats,
)

__all__ = [
    "AgentIntervened",
    "ChatMessage",
    "ChatRoom",
    "ChatRoomError",
    "ChatServer",
    "Event",
    "EventBus",
    "MessageDelivered",
    "MessageKind",
    "Participant",
    "QA_AGENT_NAME",
    "Role",
    "RUNTIME_MODES",
    "ShardQueue",
    "SimulatedClock",
    "SupervisionItem",
    "SupervisionPipeline",
    "SupervisionPolicy",
    "SupervisionRuntime",
    "SupervisionStats",
    "SupervisionWorker",
    "UserJoined",
    "UserLeft",
    "shard_of",
]
