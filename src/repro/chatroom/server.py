"""The chat server: rooms, ordered delivery, supervision hand-off.

A deterministic, in-process stand-in for the paper's networked chat
service.  Delivery order is a single global sequence (total order), the
clock is simulated, and *supervisors* — the paper's always-online agents —
observe every user message after delivery and may post replies.

Supervision is scheduled by a :class:`SupervisionRuntime` rather than run
inline: ``post`` resolves the room once, delivers the message, and hands
a :class:`SupervisionItem` to the runtime.  The default runtime (queued,
single worker, drain-after-post) behaves byte-identically to the old
synchronous fan-out; sharded runtimes defer agent work off the posting
path entirely (see :mod:`repro.chatroom.runtime`).
"""

from __future__ import annotations

from typing import Protocol

from .clock import SimulatedClock
from .events import AgentIntervened, EventBus, MessageDelivered, UserJoined, UserLeft
from .messages import ChatMessage, MessageKind, Role
from .room import ChatRoom, ChatRoomError
from .runtime import SupervisionRuntime
from .shard import SupervisionItem


class Supervisor(Protocol):
    """A supervision hook: sees each delivered user message."""

    def on_message(self, server: "ChatServer", message: ChatMessage) -> None:
        """React to a delivered user message (may post agent replies)."""


class ChatServer:
    """Rooms + total-order delivery + runtime-scheduled supervision."""

    def __init__(
        self,
        clock: SimulatedClock | None = None,
        bus: EventBus | None = None,
        runtime: SupervisionRuntime | None = None,
        journal=None,
    ) -> None:
        self.clock = clock or SimulatedClock()
        self.bus = bus or EventBus()
        self.runtime = runtime or SupervisionRuntime()
        self.rooms: dict[str, ChatRoom] = {}
        self._next_seq = 0
        # Duck-typed write-ahead journal (a DurabilityManager when the
        # system runs with a data dir): external inputs are logged after
        # validation but before they mutate anything, so the log always
        # holds a clean prefix of the input history.
        self.journal = journal

    @property
    def supervisors(self) -> tuple:
        """Registered supervisor prototypes (read-only back-compat
        accessor; register through :meth:`add_supervisor`)."""
        return self.runtime.supervisors

    # --------------------------------------------------------------- rooms

    def create_room(self, name: str, topic: str = "") -> ChatRoom:
        if name in self.rooms:
            raise ChatRoomError(f"room {name!r} already exists")
        if self.journal is not None:
            self.journal.room_created(name, topic, self.clock.now())
        room = ChatRoom(name=name, topic=topic)
        self.rooms[name] = room
        return room

    def get_room(self, name: str) -> ChatRoom:
        room = self.rooms.get(name)
        if room is None:
            raise ChatRoomError(f"no room named {name!r}")
        return room

    def join(self, room_name: str, user: str, role: Role = Role.STUDENT) -> bool:
        """Add (or re-role) a member; returns whether anything changed.

        Joining a room the user is already in under the same role is a
        pure no-op: nothing is journalled (re-joins used to bloat the
        WAL with duplicate events) and no ``UserJoined`` is published.
        Re-joining under a *different* role is a role change — it
        journals and publishes like a fresh join, and replay re-applies
        it, so a student promoted to teacher stays a teacher.
        """
        room = self.get_room(room_name)
        participant = room.participants.get(user)
        if participant is not None and participant.role is role:
            return False
        if self.journal is not None:
            self.journal.user_joined(room_name, user, role.value, self.clock.now())
        room.join(user, role, self.clock.now())
        self.bus.publish(UserJoined(room_name, user, role.value, self.clock.now()))
        return True

    def leave(self, room_name: str, user: str) -> bool:
        """Remove a member; returns whether the user was actually present.

        A non-member leave is a no-op everywhere: no journal event, no
        ``UserLeft`` on the bus (publishing it unconditionally used to
        diverge the bus history from WAL replay, which has always
        skipped non-member leaves).
        """
        room = self.get_room(room_name)
        if not room.is_member(user):
            return False
        if self.journal is not None:
            self.journal.user_left(room_name, user, self.clock.now())
        room.leave(user)
        self.bus.publish(UserLeft(room_name, user, self.clock.now()))
        return True

    # ------------------------------------------------------------ delivery

    def add_supervisor(self, supervisor: Supervisor) -> None:
        self.runtime.add_supervisor(supervisor)

    def post(
        self,
        room_name: str,
        sender: str,
        text: str,
        kind: MessageKind = MessageKind.USER,
        reply_to: int | None = None,
    ) -> ChatMessage:
        """Deliver a message to a room and schedule supervision for it.

        User messages require membership; agent/system messages do not
        (the agents are "constantly online" fixtures of every room).
        Delivery itself is O(1): supervision runs now, after this post,
        or at the next explicit drain, depending on the runtime mode.
        The room is resolved exactly once and threaded through the work
        item, so supervisors never repeat the lookup.
        """
        room = self.get_room(room_name)
        if kind == MessageKind.USER and not room.is_member(sender):
            raise ChatRoomError(f"{sender!r} is not in room {room_name!r}")
        message = ChatMessage(
            seq=self._next_seq,
            room=room_name,
            sender=sender,
            kind=kind,
            text=text,
            timestamp=self.clock.now(),
            reply_to=reply_to,
        )
        if self.journal is not None:
            # Write-ahead, in origin-seq order, before delivery and
            # before supervision; agent replies are filtered inside the
            # journal (replay regenerates them).
            self.journal.message_posted(message)
        self._next_seq += 1
        room.deliver(message)
        if kind == MessageKind.USER:
            participant = room.participants.get(sender)
            if participant is not None:
                participant.messages_sent += 1
        self.bus.publish(MessageDelivered(message))
        if kind == MessageKind.USER:
            role = participant.role if participant is not None else None
            self.runtime.submit(self, SupervisionItem(message, room, role))
        return message

    def drain_supervision(self) -> int:
        """Flush all queued supervision work (deferred-drain runtimes)."""
        if self.journal is not None and (
            self.runtime.pending
            or getattr(self.runtime.resilience, "has_backlog", False)
        ):
            # Journalled so replay drains at the same points the
            # original run did (supervision outcomes can depend on how
            # posts are batched into drain cycles).  A drain with an
            # empty queue still counts when deferred items are parked on
            # the controller: it ticks breaker cooldowns and may release
            # the backfill, which replay must reproduce.
            self.journal.drained(self.clock.now())
        return self.runtime.drain(self)

    @property
    def pending_supervision(self) -> int:
        """Messages delivered but not yet supervised."""
        return self.runtime.pending

    def post_agent_reply(
        self,
        room_name: str,
        agent: str,
        text: str,
        in_reply_to: ChatMessage,
        severity: str = "info",
    ) -> ChatMessage:
        """Post a supervising agent's reply (published as an intervention)."""
        message = self.post(
            room_name, agent, text, kind=MessageKind.AGENT, reply_to=in_reply_to.seq
        )
        self.bus.publish(
            AgentIntervened(
                room=room_name,
                agent=agent,
                severity=severity,
                in_reply_to=in_reply_to.seq,
                timestamp=self.clock.now(),
            )
        )
        return message

    # ------------------------------------------------------------- utility

    def role_of(self, room_name: str, user: str) -> Role | None:
        participant = self.get_room(room_name).participants.get(user)
        return participant.role if participant else None

    def total_messages(self) -> int:
        return self._next_seq
