"""Transcript persistence: save and replay supervised sessions.

Rooms serialise to JSON lines (one message per line), so sessions can be
archived, diffed across runs (determinism checks), mined offline by the
QA miner, or replayed through a fresh system for regression analysis.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.qa.mining import TranscriptLine

from .messages import ChatMessage, MessageKind
from .room import ChatRoom


def message_to_dict(message: ChatMessage) -> dict:
    """The JSON shape of one message (transcripts, WAL, snapshots)."""
    return {
        "seq": message.seq,
        "room": message.room,
        "sender": message.sender,
        "kind": message.kind.value,
        "text": message.text,
        "timestamp": message.timestamp,
        "reply_to": message.reply_to,
    }


def message_from_dict(data: dict) -> ChatMessage:
    """Inverse of :func:`message_to_dict`."""
    return ChatMessage(
        seq=data["seq"],
        room=data["room"],
        sender=data["sender"],
        kind=MessageKind(data["kind"]),
        text=data["text"],
        timestamp=data["timestamp"],
        reply_to=data.get("reply_to"),
    )


def save_transcript(room: ChatRoom, path: str | Path) -> int:
    """Write a room's transcript as JSON lines; returns the line count."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        for message in room.transcript:
            handle.write(json.dumps(message_to_dict(message), ensure_ascii=False) + "\n")
    return len(room.transcript)


def load_transcript(path: str | Path) -> list[ChatMessage]:
    """Read messages previously written by :func:`save_transcript`."""
    messages: list[ChatMessage] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            messages.append(message_from_dict(json.loads(line)))
    return messages


def as_mining_lines(
    messages: list[ChatMessage],
    teacher_names: frozenset[str] = frozenset({"teacher"}),
) -> list[TranscriptLine]:
    """Adapt an archived transcript for the QA miner (user messages only)."""
    lines: list[TranscriptLine] = []
    for message in messages:
        if message.kind != MessageKind.USER:
            continue
        role = "teacher" if message.sender in teacher_names else "student"
        lines.append(
            TranscriptLine(
                user=message.sender,
                text=message.text,
                timestamp=message.timestamp,
                role=role,
            )
        )
    return lines
