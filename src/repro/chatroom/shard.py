"""Room-sharded supervision work queues and workers.

The sharded runtime (see :mod:`repro.chatroom.runtime`) decouples message
delivery from agent analysis: :meth:`~repro.chatroom.server.ChatServer.post`
enqueues a :class:`SupervisionItem` on a deterministic per-room-shard
queue, and :class:`SupervisionWorker` instances drain the queues in
batches.  Everything here is single-process and deterministic — the
sharding models the unit of horizontal scale (one worker per shard owns
that shard's pipeline state), while keeping runs replayable.

Shard assignment uses CRC-32 of the room name, **not** Python's
``hash()``: the builtin is salted per process, and shard placement must
be stable across runs for transcripts to be reproducible.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Protocol

from .messages import ChatMessage, Role
from .room import ChatRoom


def shard_of(room_name: str, shards: int) -> int:
    """Deterministic shard index of a room (stable across processes)."""
    if shards <= 1:
        return 0
    return zlib.crc32(room_name.encode("utf-8")) % shards


@dataclass(slots=True)
class SupervisionItem:
    """One unit of supervision work, captured at post time.

    The room is resolved once, in ``post`` — supervisors never repeat the
    ``get_room`` lookup — and the sender's role is snapshotted alongside,
    so a learner leaving (or being promoted) between post and a deferred
    drain cannot change how the message is judged.
    """

    message: ChatMessage
    room: ChatRoom
    sender_role: Role | None = None


class ItemSupervisor(Protocol):
    """A supervisor that accepts resolved work items (the fast path)."""

    def on_item(self, server, item: SupervisionItem, memo: dict | None = None) -> None:
        """React to one delivered user message with its room resolved."""


def dispatch(supervisor, server, item: SupervisionItem, memo: dict | None) -> None:
    """Deliver one item to a supervisor, newest protocol first.

    Rich supervisors (the pipeline) take the resolved item plus the
    batch's shared-analysis memo; plain observers keep the original
    ``on_message(server, message)`` protocol.
    """
    handler = getattr(supervisor, "on_item", None)
    if handler is not None:
        handler(server, item, memo=memo)
    else:
        supervisor.on_message(server, item.message)


class ShardQueue:
    """FIFO queue of pending supervision items for one shard."""

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: deque[SupervisionItem] = deque()

    def push(self, item: SupervisionItem) -> None:
        self.items.append(item)

    def __len__(self) -> int:
        return len(self.items)


class SupervisionWorker:
    """Drains one shard's queue through this worker's supervisors.

    A worker is *stateless between batches*: all durable state lives in
    the shared stores (corpus, profiles, FAQ) its supervisors write to,
    plus the supervisors' own counters.  Each worker gets its own
    supervisor instances (pipeline clones with private stats), so N
    workers never contend on one stats object and per-shard load is
    observable.
    """

    __slots__ = ("index", "queue", "supervisors", "processed")

    def __init__(self, index: int) -> None:
        self.index = index
        self.queue = ShardQueue()
        self.supervisors: list = []
        self.processed = 0

    def enqueue(self, item: SupervisionItem) -> None:
        self.queue.push(item)

    @property
    def pending(self) -> int:
        return len(self.queue)

    def drain(self, server, max_items: int, memo: dict | None = None) -> int:
        """Process up to ``max_items`` queued items, FIFO.

        ``memo`` is the batch's shared sentence-analysis cache (see
        :class:`~repro.chatroom.supervisor.SupervisionPipeline`): one
        drain cycle passes a single dict through every worker, so a
        sentence posted to many rooms is analysed once and its results
        fanned out.
        """
        done = 0
        items = self.queue.items
        while items and done < max_items:
            item = items.popleft()
            for supervisor in self.supervisors:
                dispatch(supervisor, server, item, memo)
            done += 1
        self.processed += done
        return done
