"""Room-sharded supervision work queues and workers.

The sharded runtime (see :mod:`repro.chatroom.runtime`) decouples message
delivery from agent analysis: :meth:`~repro.chatroom.server.ChatServer.post`
enqueues a :class:`SupervisionItem` on a deterministic per-room-shard
queue, and :class:`SupervisionWorker` instances drain the queues in
batches.  Everything here is single-process and deterministic — the
sharding models the unit of horizontal scale (one worker per shard owns
that shard's pipeline state), while keeping runs replayable.

Shard assignment uses CRC-32 of the room name, **not** Python's
``hash()``: the builtin is salted per process, and shard placement must
be stable across runs for transcripts to be reproducible.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Protocol

from .messages import ChatMessage, Role
from .room import ChatRoom


def shard_of(room_name: str, shards: int) -> int:
    """Deterministic shard index of a room (stable across processes)."""
    if shards <= 1:
        return 0
    return zlib.crc32(room_name.encode("utf-8")) % shards


@dataclass(slots=True)
class SupervisionItem:
    """One unit of supervision work, captured at post time.

    The room is resolved once, in ``post`` — supervisors never repeat the
    ``get_room`` lookup — and the sender's role is snapshotted alongside,
    so a learner leaving (or being promoted) between post and a deferred
    drain cannot change how the message is judged.
    """

    message: ChatMessage
    room: ChatRoom
    sender_role: Role | None = None


@dataclass(slots=True, frozen=True)
class ShedEvent:
    """One supervision item dropped by a shard's backpressure bound.

    The shed *counter* says how much analysis was skipped; the event
    says **what** — room, seq and why — so operators can audit exactly
    which messages went unsupervised (the message itself was already
    delivered; only its agent analysis is skipped).
    """

    shard: int
    room: str
    seq: int
    reason: str = "backpressure"

    def to_dict(self) -> dict:
        return {"shard": self.shard, "room": self.room, "seq": self.seq, "reason": self.reason}


class ItemSupervisor(Protocol):
    """A supervisor that accepts resolved work items (the fast path)."""

    def on_item(self, server, item: SupervisionItem, memo: dict | None = None) -> None:
        """React to one delivered user message with its room resolved."""


def dispatch(supervisor, server, item: SupervisionItem, memo: dict | None) -> None:
    """Deliver one item to a supervisor, newest protocol first.

    Rich supervisors (the pipeline) take the resolved item plus the
    batch's shared-analysis memo; plain observers keep the original
    ``on_message(server, message)`` protocol.
    """
    handler = getattr(supervisor, "on_item", None)
    if handler is not None:
        handler(server, item, memo=memo)
    else:
        supervisor.on_message(server, item.message)


class ShardQueue:
    """FIFO queue of pending supervision items for one shard.

    Args:
        max_pending: backpressure bound.  ``None`` (the default) keeps
            the queue unbounded; with a bound, pushing into a full queue
            *sheds the oldest* pending item — under overload, stale
            messages are the right ones to skip supervising, and the
            freshest traffic is what the agents should react to.  Shed
            items were already delivered to their rooms; only their
            agent analysis is skipped, and :attr:`shed` counts them.
    """

    __slots__ = ("items", "max_pending", "shed", "shard", "shed_events")

    #: Shed events kept per shard for operator reports; bounded so a
    #: pathologically overloaded queue can't trade message memory for
    #: audit-trail memory.
    SHED_EVENT_KEEP = 64

    def __init__(self, max_pending: int | None = None, shard: int = 0) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1 (or None for unbounded)")
        self.items: deque[SupervisionItem] = deque()
        self.max_pending = max_pending
        self.shed = 0
        self.shard = shard
        self.shed_events: deque[ShedEvent] = deque(maxlen=self.SHED_EVENT_KEEP)

    def push(self, item: SupervisionItem) -> None:
        if self.max_pending is not None and len(self.items) >= self.max_pending:
            dropped = self.items.popleft()
            self.shed += 1
            self.shed_events.append(
                ShedEvent(self.shard, dropped.message.room, dropped.message.seq)
            )
        self.items.append(item)

    def take(self, max_items: int) -> list[SupervisionItem]:
        """Pop up to ``max_items`` from the front, FIFO."""
        items = self.items
        batch: list[SupervisionItem] = []
        while items and len(batch) < max_items:
            batch.append(items.popleft())
        return batch

    def requeue_front(self, items: list[SupervisionItem]) -> None:
        """Put already-popped items back at the front, order preserved.

        Used when a batch fails mid-way: the unprocessed tail goes back
        to be supervised by the next drain.  Bypasses the backpressure
        bound — these items were admitted once; shedding them here would
        double-count."""
        self.items.extendleft(reversed(items))

    def __len__(self) -> int:
        return len(self.items)


class SupervisionWorker:
    """Drains one shard's queue through this worker's supervisors.

    A worker is *stateless between batches*: all durable state lives in
    the stores its supervisors write to — shared stores in the
    cooperative modes, per-worker shard replicas merged at the barrier
    in ``parallel`` mode — plus the supervisors' own counters.  Each
    worker gets its own supervisor instances (pipeline clones or shard
    forks with private stats), so N workers never contend on one stats
    object and per-shard load is observable.
    """

    __slots__ = ("index", "queue", "supervisors", "processed", "unprocessed")

    def __init__(self, index: int, max_pending: int | None = None) -> None:
        self.index = index
        self.queue = ShardQueue(max_pending, shard=index)
        self.supervisors: list = []
        self.processed = 0
        #: Tail of a failed batch (set on the pool thread when
        #: :meth:`process_batch` raises; requeued by the runtime on the
        #: caller's thread after the barrier).
        self.unprocessed: list[SupervisionItem] = []

    def enqueue(self, item: SupervisionItem) -> None:
        self.queue.push(item)

    @property
    def pending(self) -> int:
        return len(self.queue)

    @property
    def shed(self) -> int:
        """Items dropped by this shard's backpressure bound."""
        return self.queue.shed

    def take_batch(self, max_items: int) -> list[SupervisionItem]:
        """Pop this worker's next drain batch (caller-thread only: the
        parallel runtime keeps all queue mutation off worker threads)."""
        return self.queue.take(max_items)

    def supervise_item(
        self,
        server,
        item: SupervisionItem,
        memo: dict | None,
        resilience,
        defer_journal: bool = False,
    ) -> bool:
        """Supervise one item under the resilience controller.

        Returns True when the item is *handled* — fully supervised or
        dead-lettered into quarantine — and False when the controller
        deferred it (degraded mode; the item is parked on the deferred
        ledger, not lost, and the runtime releases it later).  Ordinary
        ``Exception``s never escape: a supervisor that raises routes
        its item to quarantine and the drain continues.  Simulated
        crashes (``BaseException``) still propagate — a dying process
        must not be mistaken for a poison item.
        """
        if resilience is None:
            for supervisor in self.supervisors:
                dispatch(supervisor, server, item, memo)
            return True
        replayed = resilience.consume_replay(item.message.seq)
        if replayed is not None:
            # Recovery replay: the WAL says this supervision attempt
            # ended in quarantine — reproduce it without re-analysis.
            resilience.quarantine_replayed(replayed)
            return True
        if not resilience.admit(item):
            return False
        try:
            for supervisor in self.supervisors:
                dispatch(supervisor, server, item, memo)
        except Exception as error:
            resilience.on_item_failure(item, error, defer_journal=defer_journal)
            return True
        resilience.on_item_success(item)
        return True

    def process_batch(
        self,
        server,
        items: list[SupervisionItem],
        memo: dict | None = None,
        resilience=None,
    ) -> int:
        """Run one popped batch through this worker's supervisors.

        This is the body the parallel runtime ships to a pool thread; it
        touches only the worker's own supervisors (shard-replica-bound
        pipelines) and the shared read-only/locked collaborators.
        Supervisor errors are absorbed per item by :meth:`supervise_item`
        (quarantine, journal rows buffered for the barrier flush), so a
        batch only aborts on a simulated crash — in which case the
        unprocessed tail is stashed on :attr:`unprocessed` for the
        runtime to requeue after the barrier.
        """
        handled = 0
        done = 0
        try:
            for item in items:
                if self.supervise_item(
                    server, item, memo, resilience, defer_journal=True
                ):
                    handled += 1
                done += 1
        except BaseException:
            self.unprocessed = items[done + 1:]
            self.processed += handled
            raise
        self.processed += handled
        return handled

    def drain(
        self, server, max_items: int, memo: dict | None = None, resilience=None
    ) -> int:
        """Process up to ``max_items`` queued items, FIFO.

        ``memo`` is the batch's shared sentence-analysis cache (see
        :class:`~repro.chatroom.supervisor.SupervisionPipeline`): one
        drain cycle passes a single dict through every worker, so a
        sentence posted to many rooms is analysed once and its results
        fanned out.  Returns the number of items *handled* (supervised
        or quarantined); deferred items don't count — they are parked
        on the controller, and counting them would make the runtime's
        progress loop spin on work it cannot do yet.
        """
        done = 0
        items = self.queue.items
        while items and done < max_items:
            item = items.popleft()
            if self.supervise_item(server, item, memo, resilience):
                done += 1
        self.processed += done
        return done
