"""Simulated wall clock.

All timestamps in the system come from this clock, which only moves when
told to: runs are deterministic and replayable, so every experiment in
EXPERIMENTS.md is exactly reproducible.
"""

from __future__ import annotations


class SimulatedClock:
    """A manually advanced clock measured in (simulated) seconds."""

    def __init__(self, start: float = 0.0, tick: float = 1.0) -> None:
        self._now = float(start)
        self.tick = float(tick)

    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance(self, seconds: float | None = None) -> float:
        """Move time forward by ``seconds`` (default: one tick)."""
        step = self.tick if seconds is None else float(seconds)
        if step < 0:
            raise ValueError("time cannot move backwards")
        self._now += step
        return self._now

    def seek(self, to: float) -> float:
        """Jump forward to an absolute time.

        Recovery uses this to restore logged timestamps exactly
        (snapshot clock, then each replayed event's ``ts``).  Like
        :meth:`advance`, time never moves backwards.
        """
        target = float(to)
        if target < self._now:
            raise ValueError("time cannot move backwards")
        self._now = target
        return self._now
