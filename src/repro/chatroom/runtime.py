"""The supervision runtime: how agent analysis is scheduled.

``ChatServer`` used to run the full Figure-3 supervision flow inline in
``post``: posting latency grew with agent work, and one hot room stalled
every other room.  The runtime makes the boundary explicit and gives it
three modes:

``inline``
    The legacy shape: supervisors run synchronously inside ``post``, no
    queue machinery at all.  Kept for parity testing and for callers
    that want zero indirection.

``queued`` (default)
    ``post`` is O(1) — it enqueues a :class:`SupervisionItem` and
    returns.  With ``auto_drain`` (the default) the queue is drained
    immediately after each post by a single worker, which is
    **byte-identical** to the inline pipeline: same transcripts, stats,
    corpus records, profiles (asserted by the runtime parity suite).
    With ``auto_drain=False`` the caller drains explicitly and posting
    cost is independent of supervision work.

``sharded``
    Rooms are assigned to N shards by CRC-32; each shard is owned by one
    :class:`SupervisionWorker` with its own pipeline clone and stats.
    Draining batches items and shares one sentence-analysis memo across
    the whole drain cycle, so identical sentences posted to many rooms
    are parsed once and the results fanned out.  Agent replies land at
    drain time (after the user messages of the batch), which is the
    documented behavioural difference from the synchronous modes.
    Workers share the corpus/profile/FAQ stores and are drained
    cooperatively in index order on the caller's thread.

``parallel``
    The sharded layout with **shard-local state ownership**: every
    worker's pipeline is a :meth:`~repro.chatroom.supervisor.
    SupervisionPipeline.fork_shard` twin writing to private replicas of
    the corpus, profile and FAQ stores (see :mod:`repro.state`), and
    drain cycles run the workers on a ``ThreadPoolExecutor``.  At the
    cycle barrier the runtime merges every replica back (deterministic
    in any merge order — writes carry their origin seq), flushes the
    buffered agent replies in post order, and re-snapshots the
    replicas.  Because no worker can see another shard's in-flight
    writes, analyses are frozen against the barrier snapshot; the batch
    memo therefore dedups *every* repeated sentence — faulty ones
    included, which the shared-store modes must re-analyse per item —
    and merged state is identical whatever the thread interleaving.  On
    free-threaded builds the pool adds real core parallelism; under the
    GIL the snapshot dedup is what the mode buys.

``process``
    The parallel layout with the barrier cycles running in **child
    processes** — real core parallelism under the GIL.  Each shard owns
    a long-lived single-process ``ProcessPoolExecutor`` whose child
    holds a full private copy of the pipeline (built once from a pickled
    spec — see :mod:`repro.chatroom.procworker`); per cycle the parent
    ships only the item batch plus the sync deltas accumulated since the
    shard's last dispatch, and receives a compact merged-delta (replica
    merge payloads, buffered replies, stats, quarantine rows).  The
    parent folds the deltas through the ordinary origin-seq merge, so
    ``process`` snapshots are byte-identical to ``parallel``'s on the
    same schedule.  A crashed child (``BrokenProcessPool``) is isolated
    by rebuilding its pool and replaying the batch one item at a time:
    the crasher dead-letters into quarantine, the rest of the batch is
    supervised normally — the PR 7 failure contract, extended across
    the process boundary.

The cooperative modes are deterministic by construction; ``parallel``
and ``process`` are deterministic in *outcome* (merged stores, stats,
transcripts) for a fixed post/drain schedule, whatever the scheduler
does.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from .procworker import ShardProcessSpec, child_cycle, child_init, item_to_wire
from .shard import SupervisionItem, SupervisionWorker, dispatch, shard_of

RUNTIME_MODES = ("inline", "queued", "sharded", "parallel", "process")

#: Modes that spread rooms across more than one worker.
MULTI_WORKER_MODES = ("sharded", "parallel", "process")

#: Modes whose drains run on an executor the caller must close().
POOL_MODES = ("parallel", "process")


@dataclass(frozen=True, slots=True)
class DrainBudget:
    """When a deferred-mode system should drain itself.

    Attributes:
        max_pending_posts: drain once this many supervision items are
            pending (post-count trigger).
        max_interval: drain once this much *virtual* clock time has
            passed since the last drain (interval trigger — the system
            clock only advances on posts, so this never needs a timer
            thread).

    Both triggers are optional; either firing is enough.  A budget with
    neither set never fires (explicit-drain behaviour).  The serving
    layer depends on this: an HTTP front door posts O(1) and lets the
    budget schedule the analysis work, no caller ``drain()`` required.
    """

    max_pending_posts: int | None = None
    max_interval: float | None = None

    def __post_init__(self) -> None:
        if self.max_pending_posts is not None and self.max_pending_posts < 1:
            raise ValueError("max_pending_posts must be >= 1 (or None)")
        if self.max_interval is not None and self.max_interval <= 0:
            raise ValueError("max_interval must be > 0 (or None)")

    def due(self, pending: int, elapsed: float) -> bool:
        """Whether a drain should fire for this backlog/elapsed pair."""
        if self.max_pending_posts is not None and pending >= self.max_pending_posts:
            return True
        if self.max_interval is not None and elapsed >= self.max_interval:
            return True
        return False


class SupervisionRuntime:
    """Schedules supervision work for a :class:`ChatServer`.

    Args:
        mode: ``inline``, ``queued``, ``sharded`` or ``parallel`` (see
            module docs).
        shards: number of room shards / workers (multi-worker modes
            only; the other modes always run a single worker).
        batch_size: max items one worker processes per drain pass before
            the cycle moves to the next worker (fairness bound); in
            ``parallel`` mode, the per-worker batch between barriers.
        auto_drain: drain after every submitted item.  Defaults to True
            for ``inline``/``queued`` (synchronous semantics) and False
            for the deferred modes (callers drain explicitly, posting is
            O(1)).
        max_pending: per-shard queue bound.  ``None`` = unbounded; with
            a bound, an overloaded shard sheds its *oldest* pending item
            on push (see :class:`~repro.chatroom.shard.ShardQueue`).
            Shed totals surface via :meth:`shed_counts` / :attr:`shed`.
    """

    def __init__(
        self,
        mode: str = "queued",
        shards: int = 1,
        batch_size: int = 64,
        auto_drain: bool | None = None,
        max_pending: int | None = None,
        resilience=None,
    ) -> None:
        if mode not in RUNTIME_MODES:
            raise ValueError(f"unknown runtime mode {mode!r}; expected one of {RUNTIME_MODES}")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if mode not in MULTI_WORKER_MODES:
            shards = 1
        self.mode = mode
        self.batch_size = batch_size
        self.auto_drain = (mode in ("inline", "queued")) if auto_drain is None else auto_drain
        self.max_pending = max_pending
        self.workers = [SupervisionWorker(index, max_pending) for index in range(shards)]
        if resilience is None:
            # Every runtime gets a controller: a supervisor error must
            # dead-letter its item instead of aborting the drain, even
            # on a bare runtime nobody wired fault policies into.
            # Imported lazily — the resilience package depends on this
            # module's siblings, never the other way around at import.
            from repro.resilience.controller import ResilienceController

            resilience = ResilienceController()
        self.resilience = resilience
        self._prototypes: list = []
        self._draining = False
        # Parallel mode: per-worker shard-store bundles (replicas +
        # outboxes), supervisors without fork support (dispatched at the
        # barrier on the caller's thread), and the lazily built pool.
        self._bindings: list[list] = [[] for _ in self.workers]
        self._barrier_supervisors: list = []
        self._executor: ThreadPoolExecutor | None = None
        # Process mode: supervisors shipped to children as pickled specs,
        # per-(worker, supervisor) parent-side stats sinks, one
        # single-process pool per shard (a shared pool cannot pin a
        # shard to its warm child), and per-shard queues of sync groups
        # not yet shipped (a shard only hears about other shards' merges
        # on its next dispatch).
        self._proc_supervisors: list = []
        self._proc_sinks: list[list] = [[] for _ in self.workers]
        self._pools: list[ProcessPoolExecutor] | None = None
        self._pending_sync: list[list] = [[] for _ in self.workers]

    # --------------------------------------------------------- supervisors

    @property
    def supervisors(self) -> tuple:
        """The registered supervisor prototypes (worker 0's instances).

        A tuple on purpose: the pre-runtime ``server.supervisors.append``
        registration pattern must fail loudly — appended supervisors
        would never be dispatched.  Use :meth:`add_supervisor`.
        """
        return tuple(self._prototypes)

    def add_supervisor(self, supervisor) -> None:
        """Register a supervisor across all workers.

        Cooperative modes: worker 0 gets the object itself; further
        workers get per-worker clones when the supervisor supports it
        (``clone()``), so each worker owns its shard's pipeline state
        and stats.  Supervisors without ``clone`` are assumed stateless
        and shared as-is.

        ``parallel`` mode: *every* worker (index 0 included) gets a
        ``fork_shard()`` twin owning private store replicas — the
        prototype itself never runs on a pool thread.  Supervisors
        without ``fork_shard`` are dispatched at the drain barrier on
        the caller's thread, in post order, after the merge.
        """
        self._prototypes.append(supervisor)
        if self.mode == "process":
            if self._pools is not None:
                raise RuntimeError(
                    "cannot add supervisors after the process pool started: "
                    "the child processes were built from the earlier spec"
                )
            spec_fn = getattr(supervisor, "process_spec", None)
            absorb = getattr(supervisor, "absorb_shard_delta", None)
            if spec_fn is None or absorb is None:
                self._barrier_supervisors.append(supervisor)
                return
            clone = getattr(supervisor, "clone", None)
            self._proc_supervisors.append(supervisor)
            for worker in self.workers:
                # Per-worker stats sink: shipped per-cycle stats deltas
                # and merge-time FAQ corrections land here, so
                # combined_stats() aggregates exactly like parallel mode.
                self._proc_sinks[worker.index].append(
                    clone() if clone is not None else None
                )
            return
        if self.mode == "parallel":
            fork = getattr(supervisor, "fork_shard", None)
            if fork is None:
                self._barrier_supervisors.append(supervisor)
                return
            for worker in self.workers:
                shard_pipeline, stores = fork()
                worker.supervisors.append(shard_pipeline)
                self._bindings[worker.index].append(stores)
            return
        clone = getattr(supervisor, "clone", None)
        for worker in self.workers:
            if worker.index == 0 or clone is None:
                worker.supervisors.append(supervisor)
            else:
                worker.supervisors.append(clone())

    # ------------------------------------------------------------ schedule

    def submit(self, server, item: SupervisionItem) -> None:
        """Hand one delivered user message to the runtime."""
        if self.mode == "inline":
            worker = self.workers[0]
            if worker.supervise_item(server, item, None, self.resilience):
                worker.processed += 1
            return
        worker = self.workers[shard_of(item.room.name, len(self.workers))]
        worker.enqueue(item)
        # A supervisor posting user-visible follow-ups during a drain must
        # not recurse; the outer drain loop picks the new item up.
        if self.auto_drain and not self._draining:
            self.drain(server)

    def drain(self, server) -> int:
        """Drain every queue to empty; returns the number of items done.

        Cooperative modes: workers run in index order, ``batch_size``
        items per pass, and the cycle repeats until no queue holds work
        (items enqueued *during* the drain — e.g. by a
        supervisor-triggered post — are included).  One sentence-analysis
        memo is shared across the whole cycle: the cross-room dedup that
        makes sharded drains cheaper than per-message supervision.

        ``parallel`` mode: see :meth:`_drain_parallel`.
        """
        if self._draining:
            return 0
        self._draining = True
        done = 0
        resilience = self.resilience
        try:
            if resilience is not None:
                # One drain = one cooldown tick for open breakers, so a
                # degraded system heals from drain traffic alone even
                # when no new messages arrive to tick it via admission.
                resilience.on_drain()
            if self.mode == "parallel":
                done = self._drain_parallel(server)
            elif self.mode == "process":
                done = self._drain_process(server)
            else:
                memo: dict = {}
                progressed = True
                while progressed:
                    progressed = False
                    if resilience is not None:
                        released = resilience.take_releasable()
                        if released:
                            self.requeue_items(released)
                    for worker in self.workers:
                        n = worker.drain(server, self.batch_size, memo, resilience)
                        if n:
                            done += n
                            progressed = True
        finally:
            self._draining = False
        return done

    def _drain_parallel(self, server) -> int:
        """Drain in barrier-separated cycles on the worker pool.

        Each cycle: the caller's thread pops every worker's next batch
        (queues are never touched from pool threads), ships the batches
        to the pool, and waits — the barrier.  Then, still on the
        caller's thread, it merges every shard replica back into the
        base stores (order-independent: buffered writes carry their
        origin seq), flushes the buffered agent replies in post order,
        re-snapshots the replicas, and hands barrier-registered
        observers the cycle's items in post order.  The memo shared by
        the cycle's workers is discarded with the cycle: its entries
        were computed against the cycle's snapshot and must not outlive
        it.
        """
        executor = self._executor
        if executor is None:
            executor = self._executor = ThreadPoolExecutor(
                max_workers=len(self.workers),
                thread_name_prefix="supervision-shard",
            )
        resilience = self.resilience
        done = 0
        while True:
            if resilience is not None:
                released = resilience.take_releasable()
                if released:
                    self.requeue_items(released)
            batches = [worker.take_batch(self.batch_size) for worker in self.workers]
            cycle_items = sum(len(batch) for batch in batches)
            if cycle_items == 0:
                return done
            memo: dict = {}
            futures = [
                executor.submit(worker.process_batch, server, batch, memo, resilience)
                for worker, batch in zip(self.workers, batches)
                if batch
            ]
            # Every batch must finish before the barrier lifts — even when
            # one fails.  Re-raising while a sibling batch still runs would
            # let a retried drain() hand that worker's replica to the pool
            # while the old thread is still writing it.
            wait(futures)
            if any(future.exception() is not None for future in futures):
                # Requeue each failed batch's unprocessed tail (caller's
                # thread — queues are never touched from the pool) so a
                # mid-batch failure drops only the item that raised.
                # Replicas stay unmerged: their buffered writes carry
                # origin tags and fold in at the next successful barrier.
                for worker in self.workers:
                    if worker.unprocessed:
                        worker.queue.requeue_front(worker.unprocessed)
                        worker.unprocessed = []
            handled = 0
            for future in futures:
                handled += future.result()  # re-raises the first worker error
            for bindings in self._bindings:
                for stores in bindings:
                    stores.merge()
            for bindings in self._bindings:
                for stores in bindings:
                    stores.rebase()
            replies: list = []
            for bindings in self._bindings:
                for stores in bindings:
                    replies.extend(stores.take_replies())
            replies.sort(key=lambda reply: (reply[0], reply[1]))
            for _seq, _n, room, agent, text, message, severity in replies:
                server.post_agent_reply(room, agent, text, message, severity)
            if resilience is not None:
                # Quarantine rows buffered on pool threads journal here,
                # on the caller's thread — the event log is not
                # thread-safe and must never be written from the pool.
                resilience.flush_journal()
            if self._barrier_supervisors:
                deferred = resilience.deferred_seqs() if resilience is not None else ()
                items = sorted(
                    (
                        item
                        for batch in batches
                        for item in batch
                        if item.message.seq not in deferred
                    ),
                    key=lambda item: item.message.seq,
                )
                for item in items:
                    for supervisor in self._barrier_supervisors:
                        dispatch(supervisor, server, item, None)
            done += handled

    # ------------------------------------------------------- process mode

    def _shard_spec_blob(self) -> bytes:
        """Pickle the child-construction spec from the *current* bases.

        Called once when the pools spin up — and again only to rebuild a
        crashed shard, the sole case where a replica bundle is ever
        re-pickled after the first dispatch.
        """
        retry = breaker = None
        if self.resilience is not None:
            retry = self.resilience.retry
            breaker = next(iter(self.resilience.breakers.values())).policy
        spec = ShardProcessSpec(
            supervisors=[sup.process_spec() for sup in self._proc_supervisors],
            retry=retry,
            breaker=breaker,
        )
        return pickle.dumps(spec)

    def _new_pool(self, blob: bytes) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=1, initializer=child_init, initargs=(blob,)
        )

    def _rebuild_pool(self, index: int) -> None:
        """Replace shard ``index``'s (broken) pool with a warm rebuild.

        The fresh child is constructed from the parent's *current* base
        stores, so its pending-sync queue starts empty — every merge the
        old child missed is already folded into the new spec.
        """
        self._pools[index].shutdown(wait=False)
        self._pools[index] = self._new_pool(self._shard_spec_blob())
        self._pending_sync[index] = []

    def _absorb_result(self, index: int, result) -> int:
        """Fold one shard's cycle result into the parent state (barrier).

        Deltas merge through each supervisor's ``absorb_shard_delta``
        (the ordinary origin-seq merge); shipped stats deltas and the
        merge-time FAQ corrections credit the worker's stats sink, and
        quarantine rows + counter deltas fold into the controller with
        their journal writes buffered for the caller-thread flush.
        """
        sinks = self._proc_sinks[index]
        for supervisor, sink, delta, stats in zip(
            self._proc_supervisors, sinks, result.deltas, result.stats
        ):
            corrections = supervisor.absorb_shard_delta(delta)
            if sink is not None:
                sink.stats.merge(stats)
                sink.stats.faq_hits += corrections
        if self.resilience is not None and (result.quarantined or result.counters):
            self.resilience.absorb_worker_results(result.quarantined, result.counters)
        return result.handled

    def _broadcast_sync(self, group: list) -> None:
        """Queue one barrier's delta group for every shard's next dispatch."""
        for pending in self._pending_sync:
            pending.append(group)

    def _flush_replies(self, server, replies: list) -> None:
        replies.sort(key=lambda reply: (reply[0], reply[1]))
        for _seq, _n, room, agent, text, message, severity in replies:
            server.post_agent_reply(room, agent, text, message, severity)

    def _isolate_broken_shard(self, server, index: int, batch: list) -> int:
        """Recover a shard whose child process died mid-batch.

        The dead child returned no delta, so none of its cycle's writes
        happened — the whole batch is intact.  Rebuild the pool and
        replay the batch one item per dispatch: an item that kills the
        fresh child too is the poison and dead-letters parent-side; the
        rest supervise normally, each mini-cycle merging and syncing
        like an ordinary barrier.
        """
        from repro.resilience.quarantine import QuarantinedItem

        handled = 0
        self._rebuild_pool(index)
        for item in batch:
            future = self._pools[index].submit(
                child_cycle,
                self._pending_sync[index],
                [item_to_wire(item)],
            )
            self._pending_sync[index] = []
            try:
                result = future.result()
            except BrokenProcessPool:
                row = QuarantinedItem.from_item(
                    item,
                    stage="dispatch",
                    error="child process crashed (BrokenProcessPool)",
                )
                if self.resilience is not None:
                    self.resilience.absorb_worker_results([row])
                handled += 1
                self._rebuild_pool(index)
                continue
            handled += self._absorb_result(index, result)
            self._broadcast_sync([result.deltas])
            self._flush_replies(server, list(result.replies))
            if self.resilience is not None:
                self.resilience.flush_journal()
        return handled

    def _drain_process(self, server) -> int:
        """Drain in barrier-separated cycles on the child-process pools.

        The cycle shape mirrors :meth:`_drain_parallel` with the state
        crossing a process boundary: the caller's thread pops each
        shard's batch, runs admission/replay *parent-side* (a child-side
        breaker deferring an item would strand it in the wrong process),
        ships batch + pending sync groups to the shard's warm child, and
        at the barrier folds every returned delta into the base stores
        in shard order, broadcasts the cycle's delta group to all
        shards, flushes the buffered replies in post order, journals the
        quarantine rows, and hands barrier observers the cycle's items.
        """
        if self._pools is None:
            blob = self._shard_spec_blob()
            self._pools = [self._new_pool(blob) for _ in self.workers]
        resilience = self.resilience
        done = 0
        while True:
            if resilience is not None:
                released = resilience.take_releasable()
                if released:
                    self.requeue_items(released)
            batches = [worker.take_batch(self.batch_size) for worker in self.workers]
            if sum(len(batch) for batch in batches) == 0:
                return done
            # Parent-side admission and recovery replay, mirroring
            # supervise_item's front half; only admitted items ship.
            shipped: list[list[SupervisionItem]] = []
            for worker, batch in zip(self.workers, batches):
                keep: list[SupervisionItem] = []
                for item in batch:
                    if resilience is not None:
                        replayed = resilience.consume_replay(item.message.seq)
                        if replayed is not None:
                            resilience.quarantine_replayed(replayed)
                            worker.processed += 1
                            done += 1
                            continue
                        if not resilience.admit(item):
                            continue
                    keep.append(item)
                shipped.append(keep)
            futures = {}
            for worker, batch in zip(self.workers, shipped):
                if not batch:
                    continue
                groups = self._pending_sync[worker.index]
                self._pending_sync[worker.index] = []
                futures[worker.index] = self._pools[worker.index].submit(
                    child_cycle, groups, [item_to_wire(item) for item in batch]
                )
            wait(list(futures.values()))
            # Absorb successful shards first, in shard order — their
            # deltas form this barrier's sync group; broken shards are
            # isolated afterwards as their own mini-barriers.
            broken: list[int] = []
            group: list = []
            replies: list = []
            for index in sorted(futures):
                error = futures[index].exception()
                if isinstance(error, BrokenProcessPool):
                    broken.append(index)
                    continue
                result = futures[index].result()  # re-raises child errors
                group.append(result.deltas)
                replies.extend(result.replies)
                handled = self._absorb_result(index, result)
                self.workers[index].processed += handled
                done += handled
            if group:
                self._broadcast_sync(group)
            self._flush_replies(server, replies)
            if resilience is not None:
                resilience.flush_journal()
            for index in broken:
                handled = self._isolate_broken_shard(server, index, shipped[index])
                self.workers[index].processed += handled
                done += handled
            if self._barrier_supervisors:
                deferred = resilience.deferred_seqs() if resilience is not None else ()
                items = sorted(
                    (
                        item
                        for batch in batches
                        for item in batch
                        if item.message.seq not in deferred
                    ),
                    key=lambda item: item.message.seq,
                )
                for item in items:
                    for supervisor in self._barrier_supervisors:
                        dispatch(supervisor, server, item, None)

    def requeue_items(self, items: list[SupervisionItem]) -> None:
        """Put items back at the front of their shards' queues, in seq
        order — released deferred work, redriven quarantine rows and
        snapshot-restored backlog all re-enter here.  Front placement
        keeps global commit order: re-entering items always predate
        whatever is still queued behind them."""
        if not items:
            return
        shards = len(self.workers)
        by_shard: dict[int, list[SupervisionItem]] = {}
        for item in sorted(items, key=lambda item: item.message.seq):
            by_shard.setdefault(shard_of(item.room.name, shards), []).append(item)
        for index, group in by_shard.items():
            self.workers[index].queue.requeue_front(group)

    # ------------------------------------------------------------- reports

    @property
    def pending(self) -> int:
        """Queued items not yet supervised (0 in the synchronous modes)."""
        return sum(worker.pending for worker in self.workers)

    @property
    def shards(self) -> int:
        return len(self.workers)

    def worker_loads(self) -> list[int]:
        """Items processed per worker (shard balance diagnostics)."""
        return [worker.processed for worker in self.workers]

    def shed_counts(self) -> list[int]:
        """Items shed per shard by the backpressure bound."""
        return [worker.shed for worker in self.workers]

    def shed_events(self) -> list:
        """Structured shed events across all shards, in message order.

        Each event names the dropped message (room, seq) and the reason,
        so the supervisor report and ``health`` can show *what* went
        unsupervised, not just how much (bounded per shard — see
        :attr:`~repro.chatroom.shard.ShardQueue.SHED_EVENT_KEEP`).
        """
        events = [
            event for worker in self.workers for event in worker.queue.shed_events
        ]
        events.sort(key=lambda event: event.seq)
        return events

    @property
    def shed(self) -> int:
        """Total items shed across all shards (0 when unbounded)."""
        return sum(worker.shed for worker in self.workers)

    def close(self) -> None:
        """Shut down the worker pools (idempotent; the cooperative modes
        have nothing to release).  ``parallel`` releases its thread
        pool; ``process`` shuts every shard's child process down and
        waits for clean exits."""
        executor = self._executor
        if executor is not None:
            self._executor = None
            executor.shutdown(wait=True)
        pools = self._pools
        if pools is not None:
            self._pools = None
            for pool in pools:
                pool.shutdown(wait=True)
