"""The supervision runtime: how agent analysis is scheduled.

``ChatServer`` used to run the full Figure-3 supervision flow inline in
``post``: posting latency grew with agent work, and one hot room stalled
every other room.  The runtime makes the boundary explicit and gives it
three modes:

``inline``
    The legacy shape: supervisors run synchronously inside ``post``, no
    queue machinery at all.  Kept for parity testing and for callers
    that want zero indirection.

``queued`` (default)
    ``post`` is O(1) — it enqueues a :class:`SupervisionItem` and
    returns.  With ``auto_drain`` (the default) the queue is drained
    immediately after each post by a single worker, which is
    **byte-identical** to the inline pipeline: same transcripts, stats,
    corpus records, profiles (asserted by the runtime parity suite).
    With ``auto_drain=False`` the caller drains explicitly and posting
    cost is independent of supervision work.

``sharded``
    Rooms are assigned to N shards by CRC-32; each shard is owned by one
    :class:`SupervisionWorker` with its own pipeline clone and stats.
    Draining batches items and shares one sentence-analysis memo across
    the whole drain cycle, so identical sentences posted to many rooms
    are parsed once and the results fanned out.  Agent replies land at
    drain time (after the user messages of the batch), which is the
    documented behavioural difference from the synchronous modes.

Everything is cooperative and deterministic — "workers" are drained in
index order on the caller's thread, modelling the shard boundary without
nondeterministic scheduling.
"""

from __future__ import annotations

from .shard import SupervisionItem, SupervisionWorker, dispatch, shard_of

RUNTIME_MODES = ("inline", "queued", "sharded")


class SupervisionRuntime:
    """Schedules supervision work for a :class:`ChatServer`.

    Args:
        mode: ``inline``, ``queued`` or ``sharded`` (see module docs).
        shards: number of room shards / workers (``sharded`` mode only;
            the other modes always run a single worker).
        batch_size: max items one worker processes per drain pass before
            the cycle moves to the next worker (fairness bound).
        auto_drain: drain after every submitted item.  Defaults to True
            for ``inline``/``queued`` (synchronous semantics) and False
            for ``sharded`` (callers drain explicitly, posting is O(1)).
    """

    def __init__(
        self,
        mode: str = "queued",
        shards: int = 1,
        batch_size: int = 64,
        auto_drain: bool | None = None,
    ) -> None:
        if mode not in RUNTIME_MODES:
            raise ValueError(f"unknown runtime mode {mode!r}; expected one of {RUNTIME_MODES}")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if mode != "sharded":
            shards = 1
        self.mode = mode
        self.batch_size = batch_size
        self.auto_drain = (mode != "sharded") if auto_drain is None else auto_drain
        self.workers = [SupervisionWorker(index) for index in range(shards)]
        self._prototypes: list = []
        self._draining = False

    # --------------------------------------------------------- supervisors

    @property
    def supervisors(self) -> tuple:
        """The registered supervisor prototypes (worker 0's instances).

        A tuple on purpose: the pre-runtime ``server.supervisors.append``
        registration pattern must fail loudly — appended supervisors
        would never be dispatched.  Use :meth:`add_supervisor`.
        """
        return tuple(self._prototypes)

    def add_supervisor(self, supervisor) -> None:
        """Register a supervisor across all workers.

        Worker 0 gets the object itself; further workers get per-worker
        clones when the supervisor supports it (``clone()``), so each
        worker owns its shard's pipeline state and stats.  Supervisors
        without ``clone`` are assumed stateless and shared as-is.
        """
        self._prototypes.append(supervisor)
        clone = getattr(supervisor, "clone", None)
        for worker in self.workers:
            if worker.index == 0 or clone is None:
                worker.supervisors.append(supervisor)
            else:
                worker.supervisors.append(clone())

    # ------------------------------------------------------------ schedule

    def submit(self, server, item: SupervisionItem) -> None:
        """Hand one delivered user message to the runtime."""
        if self.mode == "inline":
            for supervisor in self.workers[0].supervisors:
                dispatch(supervisor, server, item, None)
            self.workers[0].processed += 1
            return
        worker = self.workers[shard_of(item.room.name, len(self.workers))]
        worker.enqueue(item)
        # A supervisor posting user-visible follow-ups during a drain must
        # not recurse; the outer drain loop picks the new item up.
        if self.auto_drain and not self._draining:
            self.drain(server)

    def drain(self, server) -> int:
        """Drain every queue to empty; returns the number of items done.

        Workers run in index order, ``batch_size`` items per pass, and
        the cycle repeats until no queue holds work (items enqueued
        *during* the drain — e.g. by a supervisor-triggered post — are
        included).  One sentence-analysis memo is shared across the
        whole cycle: the cross-room dedup that makes sharded drains
        cheaper than per-message supervision.
        """
        if self._draining:
            return 0
        self._draining = True
        memo: dict = {}
        done = 0
        try:
            progressed = True
            while progressed:
                progressed = False
                for worker in self.workers:
                    n = worker.drain(server, self.batch_size, memo)
                    if n:
                        done += n
                        progressed = True
        finally:
            self._draining = False
        return done

    # ------------------------------------------------------------- reports

    @property
    def pending(self) -> int:
        """Queued items not yet supervised (0 in the synchronous modes)."""
        return sum(worker.pending for worker in self.workers)

    @property
    def shards(self) -> int:
        return len(self.workers)

    def worker_loads(self) -> list[int]:
        """Items processed per worker (shard balance diagnostics)."""
        return [worker.processed for worker in self.workers]
