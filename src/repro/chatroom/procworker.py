"""Child-process shard workers for the ``process`` runtime mode.

The ``process`` mode moves the CPU-heavy drain work (link-grammar
parsing, semantic review, QA) out of the GIL entirely: each shard owns a
long-lived child process that holds a **full private copy** of the
pipeline — dictionary, ontology, agents, and base corpus/profile/FAQ
stores — built once from a pickled :class:`ShardProcessSpec` when the
pool spins up.  After that first dispatch the replica bundle never
crosses the boundary again; per barrier cycle the parent ships only

* the pending **item batch** (slim ``(ChatMessage, role)`` wire rows), and
* the **sync groups** accumulated since the shard's last dispatch: every
  shard's merged deltas from the intervening barriers, so the child can
  replay the exact merges the parent performed and keep its private base
  stores in lock-step;

and receives back one :class:`CycleResult`: the shard's own
:class:`StoresDelta` (the origin-tagged buffered writes of its replicas,
as :class:`~repro.state.delta.ReplicaDelta` payloads), the buffered
agent-reply outbox, per-cycle stats and resilience-counter deltas, and
any dead-lettered :class:`QuarantinedItem` rows.

Determinism is inherited rather than re-proven: the child applies sync
deltas through the *same* ``merge()`` implementations the parent uses
and in the same shard order, so child base stores evolve byte-identically
to the parent's; analyses are therefore frozen against the same barrier
snapshot as the thread-pool ``parallel`` mode, and the parent-side
barrier merge of the shipped deltas is the ordinary order-independent
origin-seq merge.  What the child deliberately does *not* do: admission
control and recovery replay run parent-side before items are shipped
(a child-side breaker deferring an item would strand it in the wrong
process), and injected runtime fault plans stay parent-side too — the
child re-arms plain retry guards from the shipped seed policies.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.state.delta import ReplicaDelta, delta_of

from .messages import Role
from .shard import SupervisionItem, dispatch

# -------------------------------------------------------------- wire forms


def item_to_wire(item: SupervisionItem) -> tuple:
    """Slim an item for shipping: the (picklable) message plus the role.

    The resolved room object stays behind on purpose — the shard-store
    pipeline never touches ``item.room`` (replies buffer to the outbox
    keyed by the room *name* carried in the message), and a room drags
    the whole server graph through pickle.
    """
    role = item.sender_role
    return (item.message, role.value if role is not None else None)


def item_from_wire(wire: tuple) -> SupervisionItem:
    """Rebuild a room-less :class:`SupervisionItem` inside the child."""
    message, role_value = wire
    role = Role(role_value) if role_value is not None else None
    return SupervisionItem(message, None, role)


@dataclass(slots=True)
class StoresDelta:
    """One shard's buffered writes for one barrier cycle, as plain data.

    The three fields mirror :class:`~repro.chatroom.supervisor.ShardStores`;
    each is the :class:`ReplicaDelta` wire form of the corresponding
    replica and feeds the owning base store's ``merge()`` unchanged —
    parent-side at the barrier, child-side during sync replay.
    """

    corpus: ReplicaDelta | None
    profiles: ReplicaDelta
    faq: ReplicaDelta

    def __len__(self) -> int:
        corpus = len(self.corpus) if self.corpus is not None else 0
        return corpus + len(self.profiles) + len(self.faq)


@dataclass(slots=True)
class CycleResult:
    """Everything one child shard produced in one barrier cycle.

    Attributes:
        deltas: per registered supervisor, the shard's buffered store
            writes (:class:`StoresDelta`), in registration order.
        replies: the drained reply outboxes — ``(seq, n, room, agent,
            text, message, severity)`` tuples, flushed by the parent in
            post order across all shards.
        stats: per supervisor, the cycle's stats delta (the child resets
            its counters after extracting, so these are increments).
        quarantined: dead-lettered rows from items whose supervision
            raised in the child.
        counters: the cycle's resilience-counter delta (additive).
        handled: items supervised or quarantined this cycle.
    """

    deltas: list[StoresDelta]
    replies: list[tuple]
    stats: list
    quarantined: list
    counters: object
    handled: int


# ------------------------------------------------------------ pipeline spec


@dataclass(slots=True)
class PipelineProcessSpec:
    """The pickled construction recipe for one pipeline's child twin.

    Carries only plain data plus the stores' pickle surfaces: the
    dictionary ships without its interned tables, build lock or shared
    parse cache (see ``Dictionary.__getstate__``), so the child's parser
    warms up lazily from the entry formulas exactly like a fresh parent
    would.  :meth:`build` reconstructs the full agent wiring around the
    shipped base-store copies and forks the shard twin from it.
    """

    dictionary: object
    ontology: object
    parse_options: object
    policy: object
    repair: bool
    related_threshold: float
    max_suggestions: int
    corpus: object | None
    profiles: object
    faq: object

    def build(self, controller) -> "ChildUnit":
        """Construct the child-side pipeline twin over private stores."""
        from repro.agents.learning_angel import LearningAngelAgent
        from repro.agents.semantic_agent import SemanticAgent
        from repro.nlp.keywords import KeywordFilter
        from repro.qa.engine import QASystem

        from .supervisor import SupervisionPipeline

        keyword_filter = KeywordFilter(self.ontology)
        prototype = SupervisionPipeline(
            LearningAngelAgent(
                self.dictionary,
                corpus=self.corpus,
                keyword_filter=keyword_filter,
                options=self.parse_options,
                repair=self.repair,
            ),
            SemanticAgent(
                self.ontology,
                keyword_filter=keyword_filter,
                related_threshold=self.related_threshold,
                max_suggestions=self.max_suggestions,
            ),
            QASystem(
                self.ontology,
                faq=self.faq,
                corpus=self.corpus,
                keyword_filter=keyword_filter,
            ),
            self.profiles,
            self.policy,
        )
        prototype.resilience = controller
        pipeline, stores = prototype.fork_shard()
        return ChildUnit(pipeline, stores, self.corpus, self.profiles, self.faq)


@dataclass(slots=True)
class ShardProcessSpec:
    """The full construction recipe for one shard's child process.

    One controller (retry/breaker seeds re-armed child-side) serves all
    of the shard's supervisor units, mirroring the parent's single
    shared :class:`~repro.resilience.controller.ResilienceController`.
    """

    supervisors: list
    retry: object | None = None
    breaker: object | None = None

    def build(self) -> "ChildShard":
        from repro.resilience.controller import ResilienceController

        controller = ResilienceController(retry=self.retry, breaker=self.breaker)
        units = [spec.build(controller) for spec in self.supervisors]
        return ChildShard(controller, units)


# ------------------------------------------------------------- child state


@dataclass(slots=True)
class ChildUnit:
    """One supervisor's child-side state: the twin and its stores."""

    pipeline: object
    stores: object
    base_corpus: object | None
    base_profiles: object
    base_faq: object

    def apply_sync(self, delta: StoresDelta) -> None:
        """Replay one parent-side barrier merge onto the private bases.

        Applied through the same ``merge()`` implementations the parent
        used, so the child base stores stay byte-identical; the
        corrections count the FAQ merge returns is parent bookkeeping
        (it was credited to the originating worker's stats sink there)
        and is deliberately dropped here.
        """
        if delta.corpus is not None and self.base_corpus is not None:
            self.base_corpus.merge(delta.corpus)
        self.base_profiles.merge(delta.profiles)
        self.base_faq.merge(delta.faq)

    def rebase(self) -> None:
        self.stores.rebase()

    def extract_delta(self) -> StoresDelta:
        stores = self.stores
        return StoresDelta(
            corpus=delta_of(stores.corpus) if stores.corpus is not None else None,
            profiles=delta_of(stores.profiles),
            faq=delta_of(stores.faq),
        )

    def take_stats(self):
        stats = self.pipeline.stats
        self.pipeline.stats = type(stats)()
        return stats


class ChildShard:
    """All of one shard's child-process state, built once per pool."""

    __slots__ = ("controller", "units")

    def __init__(self, controller, units: list[ChildUnit]) -> None:
        self.controller = controller
        self.units = units

    def run_cycle(self, sync_groups: list, wire_items: list) -> CycleResult:
        """Apply pending syncs, supervise one batch, extract the delta."""
        # 1. Replay every barrier merge performed since this shard's last
        #    dispatch, in barrier order and shard order within a barrier
        #    — the exact merge sequence the parent ran.
        for group in sync_groups:
            for payload in group:
                for unit, delta in zip(self.units, payload):
                    unit.apply_sync(delta)
        # 2. Re-snapshot the replicas onto the advanced bases.  This also
        #    drops the replica pending buffers whose contents were shipped
        #    (and have just been folded into the bases via their own
        #    delta inside the sync groups).
        for unit in self.units:
            unit.rebase()
        # 3. Supervise the batch.  Admission and replay already ran
        #    parent-side; here every item is either fully supervised or
        #    dead-lettered, mirroring SupervisionWorker.supervise_item.
        memo: dict = {}
        handled = 0
        for wire in wire_items:
            item = item_from_wire(wire)
            try:
                for unit in self.units:
                    dispatch(unit.pipeline, None, item, memo)
            except Exception as error:  # noqa: BLE001 — poison items dead-letter
                self.controller.on_item_failure(item, error)
            else:
                self.controller.on_item_success(item)
            handled += 1
        # 4. Ship the cycle's outputs as deltas and reset local counters.
        from repro.resilience.retry import BackoffClock

        counters = self.controller.counters
        self.controller.counters = type(counters)()
        # Reset the backoff clock with the counters: backoff_virtual is
        # assigned from the clock's running total, so a fresh clock per
        # cycle makes the shipped value a per-cycle increment.
        self.controller.backoff = BackoffClock()
        return CycleResult(
            deltas=[unit.extract_delta() for unit in self.units],
            replies=[
                reply for unit in self.units for reply in unit.stores.take_replies()
            ],
            stats=[unit.take_stats() for unit in self.units],
            quarantined=self.controller.quarantine.take_all(),
            counters=counters,
            handled=handled,
        )


# ---------------------------------------------------------- child entrypoints

#: The one shard living in this child process (set by the initializer).
_SHARD: ChildShard | None = None


def child_init(spec_blob: bytes) -> None:
    """Pool initializer: build this process's shard from the spec.

    The spec arrives as an explicit pickle blob (not as live initargs)
    so the construction path is identical under every multiprocessing
    start method — fork inherits parent memory, but the shard state is
    still provably rebuilt from the pickle surface alone.
    """
    global _SHARD
    spec: ShardProcessSpec = pickle.loads(spec_blob)
    _SHARD = spec.build()


def child_cycle(sync_groups: list, wire_items: list) -> CycleResult:
    """Pool call: run one barrier cycle on this process's shard."""
    if _SHARD is None:
        raise RuntimeError("process worker used before child_init")
    return _SHARD.run_cycle(sync_groups, wire_items)
