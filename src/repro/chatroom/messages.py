"""Chat messages and participants."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class MessageKind(Enum):
    """Who (functionally) produced a message."""

    USER = "user"
    AGENT = "agent"
    SYSTEM = "system"


class Role(Enum):
    """Participant roles in the e-learning chat room."""

    STUDENT = "student"
    TEACHER = "teacher"
    AGENT = "agent"


@dataclass(frozen=True, slots=True)
class ChatMessage:
    """One delivered chat-room message.

    Attributes:
        seq: global delivery sequence number — the total order every
            participant observes (deterministic substrate for the
            distributed chat room).
        room: room name.
        sender: participant name.
        kind: user / agent / system.
        text: message body.
        timestamp: simulated-clock time of delivery.
        reply_to: seq of the message this one responds to, if any.
    """

    seq: int
    room: str
    sender: str
    kind: MessageKind
    text: str
    timestamp: float
    reply_to: int | None = None


@dataclass(slots=True)
class Participant:
    """A chat-room participant."""

    name: str
    role: Role = Role.STUDENT
    joined_at: float = 0.0
    messages_sent: int = field(default=0)
