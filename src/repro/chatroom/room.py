"""Chat rooms: membership, topic, transcript."""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from .messages import ChatMessage, Participant, Role


class ChatRoomError(ValueError):
    """Raised for invalid room operations (posting while absent, etc.)."""


@dataclass(slots=True)
class ChatRoom:
    """One room of the augmentative chat system.

    Attributes:
        name: unique room name.
        topic: the discussing topic the instructor set up (section 1:
            "do learners talk about the indicated issues?").
        participants: present members by name.
        transcript: all delivered messages, in delivery order.
    """

    name: str
    topic: str = ""
    participants: dict[str, Participant] = field(default_factory=dict)
    transcript: list[ChatMessage] = field(default_factory=list)

    def join(self, name: str, role: Role, now: float) -> Participant:
        participant = self.participants.get(name)
        if participant is None:
            participant = Participant(name=name, role=role, joined_at=now)
            self.participants[name] = participant
        elif participant.role is not role:
            # Re-joining under a different role is a role change, not a
            # fresh membership: the original joined_at and message count
            # survive, only the role updates.
            participant.role = role
        return participant

    def leave(self, name: str) -> bool:
        """Remove a member; returns whether the user was actually present."""
        return self.participants.pop(name, None) is not None

    def is_member(self, name: str) -> bool:
        return name in self.participants

    def members(self) -> list[Participant]:
        return [self.participants[name] for name in sorted(self.participants)]

    def deliver(self, message: ChatMessage) -> None:
        """Append a message to the transcript (delivery order = seq order)."""
        if self.transcript and message.seq <= self.transcript[-1].seq:
            raise ChatRoomError(
                f"out-of-order delivery in {self.name}: "
                f"{message.seq} after {self.transcript[-1].seq}"
            )
        self.transcript.append(message)

    def messages_from(self, sender: str) -> list[ChatMessage]:
        return [message for message in self.transcript if message.sender == sender]

    def messages_since(self, seq: int) -> list[ChatMessage]:
        """Messages with seq strictly greater than ``seq``.

        The transcript is seq-sorted by construction (:meth:`deliver`
        rejects out-of-order deliveries), so the resume point is a
        bisect, not a scan — the read path the serving layer's long-poll
        and SSE cursors lean on.  ``seq=-1`` returns the full transcript.
        """
        start = bisect_right(self.transcript, seq, key=lambda message: message.seq)
        return self.transcript[start:]

    def last_messages(self, count: int) -> list[ChatMessage]:
        return self.transcript[-count:]
