"""A tiny synchronous event bus.

Room activity (joins, leaves, deliveries, agent interventions) is
published as events; the statistic analyzer, benchmarks and examples
subscribe without coupling to the server internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .messages import ChatMessage


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for bus events."""


@dataclass(frozen=True, slots=True)
class UserJoined(Event):
    room: str
    user: str
    role: str
    timestamp: float


@dataclass(frozen=True, slots=True)
class UserLeft(Event):
    room: str
    user: str
    timestamp: float


@dataclass(frozen=True, slots=True)
class MessageDelivered(Event):
    message: ChatMessage


@dataclass(frozen=True, slots=True)
class AgentIntervened(Event):
    room: str
    agent: str
    severity: str
    in_reply_to: int
    timestamp: float


Handler = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe, by event type."""

    def __init__(self) -> None:
        self._handlers: dict[type, list[Handler]] = {}
        self._any_handlers: list[Handler] = []

    def subscribe(self, event_type: type | None, handler: Handler) -> None:
        """Register ``handler`` for an event type (None = all events)."""
        if event_type is None:
            self._any_handlers.append(handler)
        else:
            self._handlers.setdefault(event_type, []).append(handler)

    def publish(self, event: Event) -> None:
        """Deliver an event to all matching handlers, in order."""
        for handler in self._handlers.get(type(event), ()):  # exact type
            handler(event)
        for handler in self._any_handlers:
            handler(event)
