"""Sentence Pattern Classification (paper section 4.3, stage 1-2).

The Semantic Keyword Filter "will detect five different kinds of
sentences' patterns: 1) the Pattern in Simple Sentences, 2) the Pattern in
Negative Sentences, 3) the Pattern in Question Sentences, 4) the Pattern
in Sentences having WH questions, 5) the Pattern in Imperative Sentence."

Classification is lexical and positional, which the restricted domain
makes reliable.  Questions are routed to the QA subsystem (the Semantic
Agent "doesn't deal with the semantic problems" of questions); negation
flips the distance verdict (section 4.3's "The tree doesn't have pop
method" example).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

from repro.linkgrammar.lexicon.builder import verb_forms
from repro.linkgrammar.lexicon.domain import DOMAIN_SPEC
from repro.linkgrammar.lexicon.english import GENERAL_SPEC
from repro.linkgrammar.tokenizer import TokenizedSentence, tokenize


class SentencePattern(Enum):
    """The paper's five sentence patterns."""

    SIMPLE = "simple"
    NEGATIVE = "negative"
    QUESTION = "question"            # yes/no question
    WH_QUESTION = "wh-question"
    IMPERATIVE = "imperative"


WH_WORDS = frozenset({"what", "which", "who", "whom", "whose", "how", "why", "when", "where"})

AUX_WORDS = frozenset(
    {
        "do", "does", "did", "is", "are", "was", "were", "can", "could",
        "will", "would", "should", "must", "may", "might", "shall", "have",
        "has", "had",
    }
)

NEGATION_WORDS = frozenset(
    {
        "not", "never", "no", "none", "nothing", "cannot",
        "don't", "doesn't", "didn't", "isn't", "aren't", "wasn't",
        "weren't", "can't", "won't", "wouldn't", "shouldn't", "couldn't",
        "mustn't",
    }
)


@lru_cache(maxsize=1)
def _imperative_verbs() -> frozenset[str]:
    """Base verb forms that can head an imperative."""
    bases = set()
    for spec in (GENERAL_SPEC, DOMAIN_SPEC):
        bases.update(spec.transitive_verbs)
        bases.update(spec.intransitive_verbs)
        bases.update(spec.optional_verbs)
    return frozenset(bases)


@dataclass(frozen=True, slots=True)
class PatternAnalysis:
    """Classification of one sentence.

    Attributes:
        pattern: the primary pattern (one of the paper's five).
        is_question: True for both yes/no and WH questions.
        is_negative: True when negation is present (may co-occur with
            question patterns; the primary pattern prefers the question).
        wh_word: the fronted WH word, if any.
    """

    pattern: SentencePattern
    is_question: bool
    is_negative: bool
    wh_word: str | None = None

    @property
    def affirmative(self) -> bool:
        """True when an affirmative claim is being made (for distance
        evaluation: negation flips the expected relatedness)."""
        return not self.is_negative


def classify(text: str | TokenizedSentence) -> PatternAnalysis:
    """Classify a sentence into the paper's five patterns.

    >>> classify("The tree doesn't have pop method.").pattern.value
    'negative'
    >>> classify("What is Stack?").pattern.value
    'wh-question'
    >>> classify("Does stack have pop method?").pattern.value
    'question'
    >>> classify("Push the data onto the stack.").pattern.value
    'imperative'
    >>> classify("I push the data into a tree.").pattern.value
    'simple'
    """
    sentence = tokenize(text) if isinstance(text, str) else text
    words = sentence.words
    if not words:
        return PatternAnalysis(SentencePattern.SIMPLE, False, False)
    negative = any(word in NEGATION_WORDS for word in words)
    first = words[0]

    if first in WH_WORDS:
        return PatternAnalysis(SentencePattern.WH_QUESTION, True, negative, wh_word=first)
    # WH word after a leading preposition ("In which structure ...?").
    if len(words) >= 2 and words[1] in WH_WORDS:
        return PatternAnalysis(SentencePattern.WH_QUESTION, True, negative, wh_word=words[1])
    if first in AUX_WORDS or (first in NEGATION_WORDS and sentence.is_question_marked):
        return PatternAnalysis(SentencePattern.QUESTION, True, negative)
    if sentence.is_question_marked:
        return PatternAnalysis(SentencePattern.QUESTION, True, negative)
    if negative:
        return PatternAnalysis(SentencePattern.NEGATIVE, False, True)
    if first in _imperative_verbs() or (first == "please" and len(words) > 1 and words[1] in _imperative_verbs()):
        return PatternAnalysis(SentencePattern.IMPERATIVE, False, False)
    return PatternAnalysis(SentencePattern.SIMPLE, False, False)
