"""NLP stages shared by the agents: patterns, keywords, normalisation."""

from .keywords import KeywordFilter, KeywordMatch
from .normalize import Lemmatizer, default_lemmatizer
from .patterns import (
    AUX_WORDS,
    NEGATION_WORDS,
    PatternAnalysis,
    SentencePattern,
    WH_WORDS,
    classify,
)

__all__ = [
    "AUX_WORDS",
    "KeywordFilter",
    "KeywordMatch",
    "Lemmatizer",
    "NEGATION_WORDS",
    "PatternAnalysis",
    "SentencePattern",
    "WH_WORDS",
    "classify",
    "default_lemmatizer",
]
