"""The Semantic Keywords Filter (paper section 4.3, stage 2).

"Semantic Keyword Filter will extract the sentence's keywords by using the
information in Ontology": every ontology term (name or alias, possibly
multi-word, under inflection) occurring in a sentence is extracted with
its ontology id — e.g. "The tree doesn't have pop method" yields *tree*
(id 4) and *pop* (id 33).

Matching is greedy longest-first over token n-grams, comparing both
surface forms and lemmas, so "binary search trees" matches the
three-token concept before "search" or "tree" could.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.linkgrammar.tokenizer import TokenizedSentence, tokenize
from repro.ontology.model import Item, ItemKind, Ontology

from .normalize import Lemmatizer, default_lemmatizer


@dataclass(frozen=True, slots=True)
class KeywordMatch:
    """One ontology term found in a sentence.

    Attributes:
        item: the matched ontology item.
        start / end: token span (end exclusive) in the sentence.
        surface: the matched words as written.
    """

    item: Item
    start: int
    end: int
    surface: str

    @property
    def item_id(self) -> int:
        return self.item.item_id

    @property
    def name(self) -> str:
        return self.item.name


class KeywordFilter:
    """Extracts ontology keywords from tokenised sentences."""

    def __init__(self, ontology: Ontology, lemmatizer: Lemmatizer | None = None) -> None:
        self.ontology = ontology
        self.lemmatizer = lemmatizer or default_lemmatizer()
        # first token -> [(token tuple, item id)], longest first.
        self._by_first: dict[str, list[tuple[tuple[str, ...], int]]] = {}
        for name, item_id in ontology.term_index().items():
            tokens = tuple(name.split())
            if not tokens:
                continue
            self._by_first.setdefault(tokens[0], []).append((tokens, item_id))
        for candidates in self._by_first.values():
            candidates.sort(key=lambda pair: (-len(pair[0]), pair[0]))
        self._max_term_length = max(
            (len(tokens) for lists in self._by_first.values() for tokens, _ in lists),
            default=1,
        )

    def extract(self, text: str | TokenizedSentence) -> list[KeywordMatch]:
        """All ontology keywords, left to right, greedy longest match."""
        sentence = tokenize(text) if isinstance(text, str) else text
        words = sentence.words
        lemmas = self.lemmatizer.lemmas(words)
        matches: list[KeywordMatch] = []
        position = 0
        while position < len(words):
            match = self._match_at(words, lemmas, position)
            if match is None:
                position += 1
            else:
                matches.append(match)
                position = match.end
        return matches

    def _match_at(
        self, words: tuple[str, ...], lemmas: tuple[str, ...], position: int
    ) -> KeywordMatch | None:
        for key in (words[position], lemmas[position]):
            for term_tokens, item_id in self._by_first.get(key, ()):
                end = position + len(term_tokens)
                if end > len(words):
                    continue
                window_surface = words[position:end]
                window_lemma = lemmas[position:end]
                if all(
                    term == surface or term == lemma
                    for term, surface, lemma in zip(term_tokens, window_surface, window_lemma)
                ):
                    return KeywordMatch(
                        item=self.ontology.get(item_id),
                        start=position,
                        end=end,
                        surface=" ".join(window_surface),
                    )
        return None

    # ------------------------------------------------------- convenience

    def extract_by_kind(
        self, text: str | TokenizedSentence
    ) -> dict[ItemKind, list[KeywordMatch]]:
        """Keywords grouped by ontology item kind."""
        grouped: dict[ItemKind, list[KeywordMatch]] = {}
        for match in self.extract(text):
            grouped.setdefault(match.item.kind, []).append(match)
        return grouped

    def concepts_and_operations(
        self, text: str | TokenizedSentence
    ) -> tuple[list[KeywordMatch], list[KeywordMatch]]:
        """(concepts, operations) — the pairing the distance stage needs."""
        grouped = self.extract_by_kind(text)
        return grouped.get(ItemKind.CONCEPT, []), grouped.get(ItemKind.OPERATION, [])
