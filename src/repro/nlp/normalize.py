"""Morphological normalisation for keyword matching.

The Semantic Keywords Filter must recognise ontology terms under
inflection: "pushed" and "pushes" are the operation *push*; "stacks" is
the concept *stack*.  Because the chat room is domain-restricted
(section 4.1), we can build a closed-world lemma table from the same word
lists that generate the lexicon — every content word the parser knows has
its forms mapped back to the base here.
"""

from __future__ import annotations

from functools import lru_cache

from repro.linkgrammar.lexicon.builder import pluralize, verb_forms
from repro.linkgrammar.lexicon.domain import DOMAIN_SPEC
from repro.linkgrammar.lexicon.english import GENERAL_SPEC


class Lemmatizer:
    """Maps inflected forms to their base form (lemma).

    Unknown words are returned unchanged: lemmatisation never invents
    vocabulary, it only folds known inflections.
    """

    def __init__(self, extra_specs: tuple = ()) -> None:
        self._lemma: dict[str, str] = {}
        specs = (GENERAL_SPEC, DOMAIN_SPEC) + tuple(extra_specs)
        for spec in specs:
            for noun in spec.count_nouns:
                self._register(pluralize(noun), noun)
            verb_lists = (
                spec.transitive_verbs + spec.intransitive_verbs + spec.optional_verbs
            )
            for verb in verb_lists:
                third, past, participle, gerund = verb_forms(verb)
                for form in (third, past, participle, gerund):
                    self._register(form, verb)
        # A few closed-class irregulars worth folding.
        for form, base in [
            ("has", "have"), ("had", "have"), ("is", "be"), ("are", "be"),
            ("was", "be"), ("were", "be"), ("does", "do"), ("did", "do"),
            ("children", "child"), ("data", "data"),
        ]:
            self._register(form, base)

    def _register(self, form: str, base: str) -> None:
        if form != base:
            # First registration wins: specs are ordered general -> domain,
            # and collisions (e.g. "leaves") are rare and harmless.
            self._lemma.setdefault(form.lower(), base.lower())

    def lemma(self, word: str) -> str:
        """Base form of ``word`` (identity for unknown words)."""
        return self._lemma.get(word.lower(), word.lower())

    def lemmas(self, words: tuple[str, ...]) -> tuple[str, ...]:
        """Lemma of every token."""
        return tuple(self.lemma(word) for word in words)

    def __len__(self) -> int:
        return len(self._lemma)


@lru_cache(maxsize=1)
def default_lemmatizer() -> Lemmatizer:
    """Shared lemmatizer over the default lexicon specs."""
    return Lemmatizer()
