"""Simulated learners and teachers.

Each simulated learner draws utterances from the sentence generator and
perturbs them according to its personal error profile; the teacher answers
learner questions (feeding the QA miner).  All randomness is seeded per
participant, so classroom sessions replay identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.ontology.model import Ontology

from .errors import ErrorClass, ErrorInjector, InjectionResult
from .sentences import GeneratedSentence, SentenceGenerator


@dataclass(frozen=True, slots=True)
class Utterance:
    """One planned learner utterance with its full ground truth.

    Attributes:
        user: speaker name.
        text: what is said (after any error injection).
        base: the clean generated sentence.
        syntax_error: the injected syntax error class (NONE if clean).
        semantic_error: True when the base sentence makes a wrong claim.
        is_question: question flag of the base sentence.
    """

    user: str
    text: str
    base: GeneratedSentence
    syntax_error: ErrorClass = ErrorClass.NONE
    semantic_error: bool = False
    is_question: bool = False

    @property
    def is_clean(self) -> bool:
        return self.syntax_error == ErrorClass.NONE and not self.semantic_error


@dataclass(slots=True)
class LearnerProfile:
    """Behavioural knobs of a simulated learner."""

    question_rate: float = 0.2
    syntax_error_rate: float = 0.15
    semantic_error_rate: float = 0.10
    chitchat_rate: float = 0.05


class SimulatedLearner:
    """A deterministic chat-room participant."""

    def __init__(
        self,
        name: str,
        ontology: Ontology,
        profile: LearnerProfile | None = None,
        seed: int = 0,
    ) -> None:
        self.name = name
        self.profile = profile or LearnerProfile()
        self.rng = random.Random(seed)
        self.generator = SentenceGenerator(ontology, seed=self.rng.randrange(1 << 30))
        self.injector = ErrorInjector(seed=self.rng.randrange(1 << 30))

    def next_utterance(self) -> Utterance:
        """Plan the learner's next message (with ground truth attached)."""
        roll = self.rng.random()
        profile = self.profile
        if roll < profile.question_rate:
            base = self.generator.question()
            return Utterance(self.name, base.text, base, is_question=True)
        roll -= profile.question_rate
        if roll < profile.chitchat_rate:
            base = self.generator.chitchat()
            return Utterance(self.name, base.text, base)
        roll -= profile.chitchat_rate
        if roll < profile.semantic_error_rate:
            base = self.generator.semantic_violation()
            return Utterance(self.name, base.text, base, semantic_error=True)
        roll -= profile.semantic_error_rate
        base = self.generator.correct_statement()
        if self.rng.random() < profile.syntax_error_rate:
            result: InjectionResult = self.injector.inject_random(base.text)
            if result.injected:
                return Utterance(
                    self.name, result.text, base, syntax_error=result.error
                )
        return Utterance(self.name, base.text, base)


class SimulatedTeacher:
    """Answers learner questions in the room (grist for QA mining)."""

    def __init__(self, name: str, ontology: Ontology) -> None:
        self.name = name
        self.ontology = ontology

    def answer_for(self, question: GeneratedSentence) -> str | None:
        """A simple authoritative answer when the topic is known."""
        if question.concept:
            item = self.ontology.find(question.concept)
            if item is not None and item.definition.description:
                return item.definition.description
        if question.operation:
            item = self.ontology.find(question.operation)
            if item is not None and item.definition.description:
                return item.definition.description
        return None
