"""Classroom workload driver.

Runs a simulated class session against a live :class:`ELearningSystem`:
learners take turns posting planned utterances (with ground truth), the
teacher occasionally answers questions, and every sentence's ground truth
is paired with the system's verdict for scoring.  This is the workload
behind experiments F3, F4, A2 and A3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chatroom.messages import Role
from repro.core.system import ELearningSystem
from repro.corpus.records import Correctness

from .errors import ErrorClass
from .learners import LearnerProfile, SimulatedLearner, SimulatedTeacher, Utterance


@dataclass(frozen=True, slots=True)
class SupervisedUtterance:
    """Ground truth paired with the system's verdict for one utterance."""

    utterance: Utterance
    verdict: Correctness
    agent_replies: int
    issue_kinds: tuple[str, ...] = ()

    @property
    def truth_syntax_error(self) -> bool:
        return self.utterance.syntax_error != ErrorClass.NONE

    @property
    def truth_semantic_error(self) -> bool:
        return self.utterance.semantic_error

    @property
    def flagged_syntax(self) -> bool:
        """Did the supervisor notice a syntax problem?

        Style hints count: dropped articles are tolerated by design (the
        paper routes them onward to the Semantic Agent) but still noted.
        """
        return self.verdict == Correctness.SYNTAX_ERROR or "style" in self.issue_kinds

    @property
    def flagged_semantic(self) -> bool:
        return self.verdict == Correctness.SEMANTIC_ERROR


@dataclass(slots=True)
class ClassroomResult:
    """Everything a benchmark needs from one simulated session."""

    supervised: list[SupervisedUtterance] = field(default_factory=list)
    questions_asked: int = 0
    questions_answered: int = 0
    teacher_answers: int = 0

    def by_error_class(self) -> dict[ErrorClass, list[SupervisedUtterance]]:
        grouped: dict[ErrorClass, list[SupervisedUtterance]] = {}
        for item in self.supervised:
            grouped.setdefault(item.utterance.syntax_error, []).append(item)
        return grouped


class ClassroomSession:
    """A seeded, deterministic classroom run."""

    def __init__(
        self,
        system: ELearningSystem,
        learners: int = 6,
        room: str = "classroom",
        topic: str = "data structures",
        profile: LearnerProfile | None = None,
        seed: int = 0,
        teacher: bool = True,
    ) -> None:
        self.system = system
        self.room_name = room
        self.system.open_room(room, topic=topic)
        self.learners = [
            SimulatedLearner(
                f"student-{index}",
                system.ontology,
                profile=profile,
                seed=seed * 1000 + index,
            )
            for index in range(learners)
        ]
        for learner in self.learners:
            system.join(room, learner.name, Role.STUDENT)
        self.teacher = SimulatedTeacher("teacher", system.ontology) if teacher else None
        if self.teacher is not None:
            system.join(room, self.teacher.name, Role.TEACHER)

    def run(self, rounds: int = 10) -> ClassroomResult:
        """Each round, every learner posts one planned utterance."""
        result = ClassroomResult()
        for _round in range(rounds):
            for learner in self.learners:
                utterance = learner.next_utterance()
                before = len(self.system.corpus)
                message = self.system.say(self.room_name, learner.name, utterance.text)
                replies = self.system.agent_replies_to(message)
                verdict, issue_kinds = self._verdict_since(before)
                result.supervised.append(
                    SupervisedUtterance(
                        utterance=utterance,
                        verdict=verdict,
                        agent_replies=len(replies),
                        issue_kinds=issue_kinds,
                    )
                )
                if utterance.is_question:
                    result.questions_asked += 1
                    if any(r.sender == "QA_System" and "could not find" not in r.text for r in replies):
                        result.questions_answered += 1
                    if self.teacher is not None:
                        answer = self.teacher.answer_for(utterance.base)
                        if answer is not None:
                            self.system.say(self.room_name, self.teacher.name, answer)
                            result.teacher_answers += 1
        return result

    def _verdict_since(self, before: int) -> tuple[Correctness, tuple[str, ...]]:
        """(verdict, issue kinds) recorded for the message just posted."""
        records = self.system.corpus.records()[before:]
        kinds: list[str] = []
        verdict = Correctness.CORRECT
        for record in records:
            kinds.extend(kind for kind, _word in record.syntax_issues)
            if record.verdict != Correctness.CORRECT and verdict == Correctness.CORRECT:
                verdict = record.verdict
        return verdict, tuple(dict.fromkeys(kinds))
