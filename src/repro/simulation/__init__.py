"""Synthetic classroom workloads (the substitution for real learner data)."""

from .errors import ErrorClass, ErrorInjector, InjectionResult
from .learners import LearnerProfile, SimulatedLearner, SimulatedTeacher, Utterance
from .sentences import GeneratedSentence, SentenceGenerator
from .workload import ClassroomResult, ClassroomSession, SupervisedUtterance

__all__ = [
    "ClassroomResult",
    "ClassroomSession",
    "ErrorClass",
    "ErrorInjector",
    "GeneratedSentence",
    "InjectionResult",
    "LearnerProfile",
    "SentenceGenerator",
    "SimulatedLearner",
    "SimulatedTeacher",
    "SupervisedUtterance",
    "Utterance",
]
