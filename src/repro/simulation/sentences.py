"""Synthetic classroom sentence generation.

There is no public corpus of the paper's learner dialogues, so workloads
are generated from the same knowledge ontology the system teaches: correct
declaratives (capabilities, definitions, taxonomy, properties), questions
in the QA template families, and chit-chat.  Generation is seeded and
deterministic; every sentence is built from vocabulary the lexicon covers,
so a clean generated sentence parses with zero null words (asserted by
tests — the generator double-checks itself against the grammar).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.ontology.model import ItemKind, Ontology, RelationKind

# Operation verb -> the preposition used with its canonical container.
_OPERATION_PREPOSITIONS = {
    "push": "onto",
    "pop": "from",
    "insert": "into",
    "delete": "from",
    "enqueue": "into",
    "dequeue": "from",
    "append": "to",
    "prepend": "to",
    "store": "in",
    "search": "in",
}

# Operations that read naturally as transitive verbs in workload templates.
_VERBAL_OPERATIONS = {
    "push", "pop", "insert", "delete", "enqueue", "dequeue",
    "append", "prepend", "merge", "split", "sort", "search", "traverse",
    "update", "swap", "peek", "balance", "rotate",
}


def _article(noun: str) -> str:
    return "an" if noun[0] in "aeiou" else "a"


@dataclass(frozen=True, slots=True)
class GeneratedSentence:
    """A generated utterance with its ground truth.

    Attributes:
        text: the sentence.
        is_question: whether it is a question.
        concept / operation: ontology names used (for audits).
        semantically_correct: ground truth of the domain claim.
    """

    text: str
    is_question: bool = False
    concept: str = ""
    operation: str = ""
    semantically_correct: bool = True


class SentenceGenerator:
    """Seeded generator of classroom utterances over an ontology."""

    def __init__(self, ontology: Ontology, seed: int = 0) -> None:
        self.ontology = ontology
        self.rng = random.Random(seed)
        self._concepts = [
            item
            for item in ontology.items_of_kind(ItemKind.CONCEPT)
            if item.category == "container" and " " not in item.name
        ]
        self._operations = [
            item
            for item in ontology.items_of_kind(ItemKind.OPERATION)
            if item.name in _VERBAL_OPERATIONS
        ]
        self._properties = ontology.items_of_kind(ItemKind.PROPERTY)

    # ----------------------------------------------------------- helpers

    def _supported_pair(self) -> tuple[str, str]:
        """A (concept, operation) pair the ontology supports."""
        while True:
            concept = self.rng.choice(self._concepts)
            operations = [
                op
                for op in self.ontology.operations_of(concept.item_id)
                if op.name in _VERBAL_OPERATIONS
            ]
            if operations:
                return concept.name, self.rng.choice(operations).name

    def _unsupported_pair(self) -> tuple[str, str]:
        """A (concept, operation) pair the ontology does NOT support."""
        while True:
            concept = self.rng.choice(self._concepts)
            operation = self.rng.choice(self._operations)
            if not self.ontology.has_operation(concept.item_id, operation.item_id):
                return concept.name, operation.name

    def _held_property(self) -> tuple[str, str]:
        while True:
            concept = self.rng.choice(self._concepts)
            properties = self.ontology.properties_of(concept.item_id)
            if properties:
                return concept.name, self.rng.choice(properties).name

    def _unheld_property(self) -> tuple[str, str]:
        while True:
            concept = self.rng.choice(self._concepts)
            prop = self.rng.choice(self._properties)
            held = {p.item_id for p in self.ontology.properties_of(concept.item_id)}
            if prop.item_id not in held:
                return concept.name, prop.name

    # -------------------------------------------------------- declaratives

    def correct_statement(self) -> GeneratedSentence:
        """A syntactically and semantically correct declarative."""
        choice = self.rng.randrange(6)
        if choice == 0:
            concept, operation = self._supported_pair()
            preposition = _OPERATION_PREPOSITIONS.get(operation, "into")
            subject = self.rng.choice(["we", "i", "you"])
            text = f"{subject.capitalize()} {operation} the element {preposition} the {concept}."
            return GeneratedSentence(text, concept=concept, operation=operation)
        if choice == 1:
            concept, operation = self._supported_pair()
            text = f"The {concept} supports the {operation} operation."
            return GeneratedSentence(text, concept=concept, operation=operation)
        if choice == 2:
            concept = self.rng.choice(self._concepts)
            parents = self.ontology.parents(concept.item_id)
            if parents:
                parent = self.rng.choice(parents).name
                text = (
                    f"{_article(concept.name).capitalize()} {concept.name} "
                    f"is {_article(parent)} {parent}."
                )
                return GeneratedSentence(text, concept=concept.name)
            return self.correct_statement()
        if choice == 3:
            concept, prop = self._held_property()
            text = f"The {concept} is {prop}."
            return GeneratedSentence(text, concept=concept)
        if choice == 4:
            concept, operation = self._unsupported_pair()
            text = f"The {concept} doesn't have the {operation} operation."
            return GeneratedSentence(text, concept=concept, operation=operation)
        concept = self.rng.choice(self._concepts)
        adjective = self.rng.choice(["useful", "important", "simple", "efficient"])
        text = f"The {concept.name} is {adjective}."
        return GeneratedSentence(text, concept=concept.name)

    def semantic_violation(self) -> GeneratedSentence:
        """Syntactically fine, semantically wrong (the paper's
        'Interrogative Sentence')."""
        choice = self.rng.randrange(3)
        if choice == 0:
            concept, operation = self._unsupported_pair()
            preposition = _OPERATION_PREPOSITIONS.get(operation, "into")
            subject = self.rng.choice(["we", "i"])
            text = f"{subject.capitalize()} {operation} the element {preposition} the {concept}."
        elif choice == 1:
            concept, operation = self._unsupported_pair()
            text = f"The {concept} supports the {operation} operation."
        else:
            concept, prop = self._unheld_property()
            text = f"The {concept} is {prop}."
            return GeneratedSentence(
                text, concept=concept, semantically_correct=False
            )
        return GeneratedSentence(
            text, concept=concept, operation=operation, semantically_correct=False
        )

    # ------------------------------------------------------------ questions

    def question(self) -> GeneratedSentence:
        """A question in one of the QA template families."""
        choice = self.rng.randrange(5)
        if choice == 0:
            concept = self.rng.choice(self._concepts)
            text = f"What is {_article(concept.name)} {concept.name}?"
            return GeneratedSentence(text, is_question=True, concept=concept.name)
        if choice == 1:
            concept, operation = (
                self._supported_pair() if self.rng.random() < 0.5 else self._unsupported_pair()
            )
            text = f"Does the {concept} have {_article(operation)} {operation} method?"
            return GeneratedSentence(text, is_question=True, concept=concept, operation=operation)
        if choice == 2:
            operation = self.rng.choice(self._operations).name
            text = f"Which data structure has the {operation} operation?"
            return GeneratedSentence(text, is_question=True, operation=operation)
        if choice == 3:
            concept = self.rng.choice(self._concepts)
            text = f"What operations does the {concept.name} support?"
            return GeneratedSentence(text, is_question=True, concept=concept.name)
        concept = self.rng.choice(self._concepts)
        text = f"The relations of {concept.name}?"
        return GeneratedSentence(text, is_question=True, concept=concept.name)

    def chitchat(self) -> GeneratedSentence:
        """On-topic but keyword-free filler."""
        text = self.rng.choice(
            [
                "This course is difficult.",
                "I understand the example now.",
                "The homework is easy.",
                "Thanks.",
                "Yes.",
                "That is a good question.",
                "Please explain the example again.",
            ]
        )
        return GeneratedSentence(text)
