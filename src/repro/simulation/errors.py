"""Seeded syntax-error injection with ground-truth labels.

The accuracy study (experiment A2/F4) needs labelled learner mistakes; the
injectors below produce the error classes non-native learners make and the
paper's Learning_Angel is designed to catch: dropped articles, broken
subject-verb agreement, scrambled word order, and out-of-vocabulary words.
Each injection records what was done, so detection can be scored without
human annotation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum


class ErrorClass(Enum):
    """Injectable learner-error classes."""

    NONE = "none"
    ARTICLE_DROP = "article-drop"
    AGREEMENT = "agreement"
    WORD_ORDER = "word-order"
    UNKNOWN_WORD = "unknown-word"


_ARTICLES = {"a", "an", "the"}

_AGREEMENT_SWAPS = {
    "is": "are", "are": "is", "was": "were", "were": "was",
    "has": "have", "have": "has", "does": "do", "do": "does",
    "doesn't": "don't", "don't": "doesn't", "supports": "support",
    "holds": "hold", "needs": "need",
}

_PSEUDO_WORDS = ["blorf", "zkag", "fnord", "quux", "gribble", "snarf"]


@dataclass(frozen=True, slots=True)
class InjectionResult:
    """An (attempted) error injection.

    Attributes:
        text: the resulting sentence.
        error: the class actually injected (NONE when impossible, e.g.
            dropping an article from a sentence that has none).
        detail: what changed, for debugging reports.
    """

    text: str
    error: ErrorClass
    detail: str = ""

    @property
    def injected(self) -> bool:
        return self.error != ErrorClass.NONE


class ErrorInjector:
    """Seeded injector over sentence text."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    # -------------------------------------------------------- public API

    def inject(self, text: str, error: ErrorClass) -> InjectionResult:
        """Apply one error class; returns NONE when not applicable."""
        if error == ErrorClass.ARTICLE_DROP:
            return self._drop_article(text)
        if error == ErrorClass.AGREEMENT:
            return self._break_agreement(text)
        if error == ErrorClass.WORD_ORDER:
            return self._scramble(text)
        if error == ErrorClass.UNKNOWN_WORD:
            return self._unknown_word(text)
        return InjectionResult(text, ErrorClass.NONE)

    def inject_random(self, text: str) -> InjectionResult:
        """Apply a uniformly chosen applicable error class."""
        classes = [
            ErrorClass.ARTICLE_DROP,
            ErrorClass.AGREEMENT,
            ErrorClass.WORD_ORDER,
            ErrorClass.UNKNOWN_WORD,
        ]
        self.rng.shuffle(classes)
        for error in classes:
            result = self.inject(text, error)
            if result.injected:
                return result
        return InjectionResult(text, ErrorClass.NONE)

    # ---------------------------------------------------------- injectors

    def _split(self, text: str) -> tuple[list[str], str]:
        terminator = ""
        body = text.strip()
        if body and body[-1] in ".?!":
            terminator = body[-1]
            body = body[:-1]
        return body.split(), terminator

    def _join(self, words: list[str], terminator: str) -> str:
        return " ".join(words) + terminator

    def _drop_article(self, text: str) -> InjectionResult:
        words, terminator = self._split(text)
        positions = [i for i, word in enumerate(words) if word.lower() in _ARTICLES]
        if not positions:
            return InjectionResult(text, ErrorClass.NONE)
        index = self.rng.choice(positions)
        dropped = words.pop(index)
        return InjectionResult(
            self._join(words, terminator),
            ErrorClass.ARTICLE_DROP,
            f"dropped {dropped!r} at {index}",
        )

    def _break_agreement(self, text: str) -> InjectionResult:
        words, terminator = self._split(text)
        positions = [i for i, word in enumerate(words) if word.lower() in _AGREEMENT_SWAPS]
        if not positions:
            return InjectionResult(text, ErrorClass.NONE)
        index = self.rng.choice(positions)
        original = words[index]
        replacement = _AGREEMENT_SWAPS[original.lower()]
        if original[0].isupper():
            replacement = replacement.capitalize()
        words[index] = replacement
        return InjectionResult(
            self._join(words, terminator),
            ErrorClass.AGREEMENT,
            f"swapped {original!r} for {replacement!r} at {index}",
        )

    def _scramble(self, text: str) -> InjectionResult:
        words, terminator = self._split(text)
        if len(words) < 3:
            return InjectionResult(text, ErrorClass.NONE)
        index = self.rng.randrange(len(words) - 1)
        words[index], words[index + 1] = words[index + 1], words[index]
        return InjectionResult(
            self._join(words, terminator),
            ErrorClass.WORD_ORDER,
            f"swapped positions {index} and {index + 1}",
        )

    def _unknown_word(self, text: str) -> InjectionResult:
        words, terminator = self._split(text)
        positions = [
            i for i, word in enumerate(words)
            if len(word) > 3 and word.lower() not in _ARTICLES
        ]
        if not positions:
            return InjectionResult(text, ErrorClass.NONE)
        index = self.rng.choice(positions)
        original = words[index]
        words[index] = self.rng.choice(_PSEUDO_WORDS)
        return InjectionResult(
            self._join(words, terminator),
            ErrorClass.UNKNOWN_WORD,
            f"replaced {original!r} at {index}",
        )
