"""The HTTP front door: stdlib ``ThreadingHTTPServer`` over a gateway.

Endpoints (all bodies and responses are JSON unless noted):

=========================================  ====================================
``POST /rooms``                            create a room
                                           (``{"name", "topic"?}`` → 201)
``POST /rooms/<id>/join``                  join / change role
                                           (``{"user", "role"?}``)
``POST /rooms/<id>/leave``                 leave (``{"user"}``; ``left`` is
                                           false for a non-member no-op)
``POST /rooms/<id>/messages``              post a message (``{"user",
                                           "text"}`` → 202 with the delivered
                                           message + queue depth)
``GET /rooms/<id>/transcript``             seq-indexed read; ``?since=<seq>``
                                           resumes after a cursor and
                                           ``&wait=<s>`` long-polls for new
                                           traffic
``GET /events``                            ``text/event-stream`` of supervision
                                           verdicts and agent replies
                                           (``?room=`` filters; ``?limit=`` /
                                           ``?timeout=`` bound the stream)
``GET /healthz``                           liveness counters
=========================================  ====================================

Each request runs on its own server thread; mutations serialize through
the gateway's admission lock, long-polls park on its delivery condition,
and SSE streams drain a per-subscriber queue — so a slow reader never
blocks a poster.  Handler errors map to status codes (:class:`ApiError`
carries its own; anything else is a 500) instead of tearing down the
connection.
"""

from __future__ import annotations

import json
import queue
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .gateway import ApiError, ChatGateway, MAX_POLL_WAIT

#: Seconds between SSE keep-alive comments when no events flow.
SSE_KEEPALIVE = 15.0


class ChatHTTPServer(ThreadingHTTPServer):
    """One listening socket over one :class:`ChatGateway`.

    ``port=0`` binds an ephemeral port (tests and benches); the bound
    address is ``server_address`` as usual.  ``verbose`` re-enables the
    stdlib per-request log lines (quiet by default: the serving bench
    would otherwise spam stderr with thousands of them).
    """

    daemon_threads = True  # in-flight handlers never block shutdown

    def __init__(
        self,
        gateway: ChatGateway,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.gateway = gateway
        self.verbose = verbose
        super().__init__((host, port), ChatRequestHandler)


class ChatRequestHandler(BaseHTTPRequestHandler):
    # Keep-alive: responses carry Content-Length, so one client
    # connection can pipeline its whole session (the bench does).
    protocol_version = "HTTP/1.1"
    # Responses go out as two segments (header flush, then body); with
    # Nagle on, the body write stalls until the client's delayed ACK
    # (~40ms per request on Linux).  TCP_NODELAY removes the stall.
    disable_nagle_algorithm = True
    server: ChatHTTPServer

    # ------------------------------------------------------------- plumbing

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ApiError(400, "request body must be a JSON object")
        try:
            body = json.loads(raw)
        except ValueError:
            raise ApiError(400, "request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise ApiError(400, "request body must be a JSON object")
        return body

    def _send_json(self, payload: dict, status: int = 200) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _query(self) -> dict[str, str]:
        from urllib.parse import parse_qsl, urlsplit

        return dict(parse_qsl(urlsplit(self.path).query))

    def _route(self) -> list[str]:
        from urllib.parse import unquote, urlsplit

        return [unquote(part) for part in urlsplit(self.path).path.strip("/").split("/")]

    # -------------------------------------------------------------- methods

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_GET(self) -> None:
        self._dispatch("GET")

    def _dispatch(self, method: str) -> None:
        try:
            handled = self._handle(method, self._route())
            if not handled:
                raise ApiError(404, f"no such resource: {self.path}")
        except ApiError as exc:
            self._send_json({"error": str(exc)}, status=exc.status)
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True  # client went away mid-response
        except Exception as exc:  # never tear down the connection
            self._send_json({"error": f"internal error: {exc}"}, status=500)

    def _handle(self, method: str, route: list[str]) -> bool:
        gateway = self.server.gateway
        if route == ["healthz"]:
            self._require(method, "GET")
            self._send_json(gateway.health())
            return True
        if route == ["events"]:
            self._require(method, "GET")
            self._stream_events(gateway)
            return True
        if route == ["rooms"]:
            self._require(method, "POST")
            body = self._read_json()
            payload = gateway.create_room(
                str(body.get("name", "")), topic=str(body.get("topic", ""))
            )
            self._send_json(payload, status=201)
            return True
        if len(route) == 3 and route[0] == "rooms":
            room, action = route[1], route[2]
            if action == "messages":
                self._require(method, "POST")
                body = self._read_json()
                payload = gateway.post(
                    room, str(body.get("user", "")), str(body.get("text", ""))
                )
                self._send_json(payload, status=202)
                return True
            if action == "join":
                self._require(method, "POST")
                body = self._read_json()
                payload = gateway.join(
                    room, str(body.get("user", "")), str(body.get("role", "student"))
                )
                self._send_json(payload)
                return True
            if action == "leave":
                self._require(method, "POST")
                body = self._read_json()
                payload = gateway.leave(room, str(body.get("user", "")))
                self._send_json(payload)
                return True
            if action == "transcript":
                self._require(method, "GET")
                params = self._query()
                payload = gateway.transcript_since(
                    room,
                    since=self._int_param(params, "since", -1),
                    wait=self._float_param(params, "wait", 0.0),
                    limit=self._int_param(params, "limit", 0) or None,
                )
                self._send_json(payload)
                return True
        return False

    def _require(self, method: str, expected: str) -> None:
        if method != expected:
            raise ApiError(405, f"use {expected} for {self.path}")

    @staticmethod
    def _int_param(params: dict, key: str, default: int) -> int:
        try:
            return int(params.get(key, default))
        except ValueError:
            raise ApiError(400, f"query parameter {key!r} must be an integer") from None

    @staticmethod
    def _float_param(params: dict, key: str, default: float) -> float:
        try:
            return float(params.get(key, default))
        except ValueError:
            raise ApiError(400, f"query parameter {key!r} must be a number") from None

    # ------------------------------------------------------------------ SSE

    def _stream_events(self, gateway: ChatGateway) -> None:
        """Serve ``text/event-stream`` off a gateway subscriber queue.

        The stream ends when the client disconnects, after ``?limit=``
        events, or once ``?timeout=`` seconds pass (clamped like a
        long-poll) — the bounded forms are what tests and the bench
        use; an interactive client just keeps reading.
        """
        params = self._query()
        room = params.get("room")
        limit = self._int_param(params, "limit", 0)
        timeout = self._float_param(params, "timeout", 0.0)
        deadline = time.monotonic() + min(timeout, MAX_POLL_WAIT) if timeout else None
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # No Content-Length: the stream closes the connection when done.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        stream = gateway.open_stream()
        sent = 0
        try:
            while True:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        return
                else:
                    remaining = SSE_KEEPALIVE
                try:
                    event, data = stream.get(timeout=min(remaining, SSE_KEEPALIVE))
                except queue.Empty:
                    self.wfile.write(b": keep-alive\n\n")
                    self.wfile.flush()
                    continue
                if room is not None and data.get("room") != room:
                    continue
                payload = json.dumps(data).encode("utf-8")
                self.wfile.write(
                    b"event: " + event.encode("ascii") + b"\ndata: " + payload + b"\n\n"
                )
                self.wfile.flush()
                sent += 1
                if limit and sent >= limit:
                    return
        except (BrokenPipeError, ConnectionResetError):
            pass  # subscriber hung up; nothing to answer
        finally:
            gateway.close_stream(stream)
