"""The network front door: HTTP serving over the e-learning system.

``python -m repro serve`` (see :mod:`repro.cli`) builds an
:class:`~repro.core.system.ELearningSystem`, wraps it in a
:class:`ChatGateway` (the admission layer that serializes mutations into
the single-writer core) and listens with a :class:`ChatHTTPServer`
(stdlib ``ThreadingHTTPServer``: JSON endpoints, seq-indexed long-poll
transcript reads, an SSE stream of supervision verdicts and agent
replies).  See docs/serving.md.
"""

from .gateway import MAX_POLL_WAIT, ApiError, ChatGateway
from .http import SSE_KEEPALIVE, ChatHTTPServer, ChatRequestHandler

__all__ = [
    "ApiError",
    "ChatGateway",
    "ChatHTTPServer",
    "ChatRequestHandler",
    "MAX_POLL_WAIT",
    "SSE_KEEPALIVE",
]
