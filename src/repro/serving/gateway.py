"""The admission layer between the network and the single-writer core.

``ELearningSystem`` is single-writer by design: the global message
sequence, the simulated clock, the supervision queues and every store
assume one mutating caller at a time.  A :class:`ChatGateway` owns that
contract for the serving layer — every mutation (room creation, joins,
leaves, posts) is serialized through one **admission lock**, while
transcript reads go through the seq-indexed
:meth:`~repro.chatroom.room.ChatRoom.messages_since` path and only take
the lock for the bisect + slice, never for the wait.

Two read shapes are served:

* **long-poll** — :meth:`transcript_since` returns every message with a
  seq above the client's cursor, blocking (on a condition variable tied
  to the admission lock) until new traffic arrives or the wait budget
  expires.  Handler threads waiting here hold no lock, so posts keep
  flowing.
* **SSE fan-out** — :meth:`open_stream` registers a thread-safe queue
  that receives supervision verdicts (``AgentIntervened``) and agent
  replies (agent-kind ``MessageDelivered``) straight off the system's
  :class:`~repro.chatroom.events.EventBus`; the HTTP layer turns the
  queue into a ``text/event-stream``.

Error mapping is explicit: gateway methods raise :class:`ApiError` with
the HTTP status the condition deserves (404 unknown room, 403 posting
while absent, 409 duplicate room, 400 malformed input), so a handler
failure becomes a status code instead of a torn connection.
"""

from __future__ import annotations

import queue
import threading
import time

from repro.chatroom.events import AgentIntervened, MessageDelivered
from repro.chatroom.messages import MessageKind, Role
from repro.chatroom.transcript_io import message_to_dict


class ApiError(Exception):
    """A request failure with the HTTP status it maps to."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


#: Default per-request cap on a long-poll wait (seconds).  Clients may ask
#: for less; asking for more is clamped so a forgotten poller cannot pin a
#: handler thread forever.
MAX_POLL_WAIT = 30.0


class ChatGateway:
    """Serialized admission + indexed reads over one ``ELearningSystem``."""

    def __init__(self, system) -> None:
        self.system = system
        # One reentrant admission lock; the delivery condition shares it
        # so a post's notify happens under the lock the post already
        # holds, and a poller's wait atomically releases it.
        self._admission = threading.RLock()
        self._delivered = threading.Condition(self._admission)
        self._streams: list[queue.Queue] = []
        self._streams_lock = threading.Lock()
        bus = system.bus
        bus.subscribe(MessageDelivered, self._on_delivered)
        bus.subscribe(AgentIntervened, self._on_verdict)

    # ----------------------------------------------------------- mutations

    def create_room(self, name: str, topic: str = "") -> dict:
        if not name:
            raise ApiError(400, "room name must be non-empty")
        with self._admission:
            if name in self.system.server.rooms:
                raise ApiError(409, f"room {name!r} already exists")
            room = self.system.open_room(name, topic=topic)
            return {"room": room.name, "topic": room.topic}

    def join(self, room: str, user: str, role: str = "student") -> dict:
        if not user:
            raise ApiError(400, "user must be non-empty")
        try:
            parsed = Role(role)
        except ValueError:
            raise ApiError(400, f"unknown role {role!r}") from None
        with self._admission:
            self._room(room)
            joined = self.system.join(room, user, parsed)
            return {"room": room, "user": user, "role": parsed.value, "joined": joined}

    def leave(self, room: str, user: str) -> dict:
        with self._admission:
            self._room(room)
            # ``left`` surfaces the no-op: leaving a room the user never
            # joined is 200-with-false, not an invented UserLeft.
            left = self.system.leave(room, user)
            return {"room": room, "user": user, "left": left}

    def post(self, room: str, user: str, text: str) -> dict:
        if not text:
            raise ApiError(400, "text must be non-empty")
        with self._admission:
            target = self._room(room)
            if not target.is_member(user):
                raise ApiError(403, f"{user!r} is not in room {room!r}")
            # say() enqueues O(1); the configured DrainBudget (or the
            # queued runtime's auto-drain) schedules the agent work.
            message = self.system.say(room, user, text)
            return {
                "message": message_to_dict(message),
                "pending_supervision": self.system.pending_supervision,
            }

    # --------------------------------------------------------------- reads

    def transcript_since(
        self, room: str, since: int = -1, wait: float = 0.0, limit: int | None = None
    ) -> dict:
        """Messages with seq > ``since``, long-polling up to ``wait`` seconds.

        Returns at once when the cursor is behind the transcript;
        otherwise blocks on the delivery condition until any message
        (user, agent or system) is delivered anywhere — cheap spurious
        wakeups for other rooms' traffic, re-checked by the bisect —
        or the wait budget runs out (then: an empty page, same cursor).
        """
        wait = max(0.0, min(float(wait), MAX_POLL_WAIT))
        deadline = time.monotonic() + wait
        with self._delivered:
            target = self._room(room)
            while True:
                messages = target.messages_since(since)
                if messages or wait <= 0.0:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    break
                self._delivered.wait(remaining)
        if limit is not None:
            messages = messages[:limit]
        next_seq = messages[-1].seq if messages else since
        return {
            "room": room,
            "since": since,
            "next": next_seq,
            "messages": [message_to_dict(m) for m in messages],
        }

    def health(self) -> dict:
        """The liveness summary ``GET /healthz`` serves (lock-free-ish:
        counters only, no store traversals)."""
        system = self.system
        with self._admission:
            return {
                "status": "ok",
                "rooms": len(system.server.rooms),
                "messages": system.server.total_messages(),
                "pending_supervision": system.pending_supervision,
                "quarantined": system.quarantined,
                "shed": system.supervision_shed,
                "runtime": system.config.runtime_mode,
            }

    # ------------------------------------------------------------- streams

    def open_stream(self, max_events: int = 1024) -> queue.Queue:
        """Register an SSE subscriber queue (bounded: a stalled client
        drops its own oldest events, never blocks the posting path)."""
        stream: queue.Queue = queue.Queue(maxsize=max_events)
        with self._streams_lock:
            self._streams.append(stream)
        return stream

    def close_stream(self, stream: queue.Queue) -> None:
        with self._streams_lock:
            try:
                self._streams.remove(stream)
            except ValueError:
                pass  # already closed (idempotent)

    def _fan_out(self, event: str, data: dict) -> None:
        with self._streams_lock:
            streams = tuple(self._streams)
        for stream in streams:
            while True:
                try:
                    stream.put_nowait((event, data))
                    break
                except queue.Full:  # shed the subscriber's oldest event
                    try:
                        stream.get_nowait()
                    except queue.Empty:
                        pass

    # ------------------------------------------------------------ internal

    def _room(self, name: str):
        room = self.system.server.rooms.get(name)
        if room is None:
            raise ApiError(404, f"no room named {name!r}")
        return room

    def _on_delivered(self, event) -> None:
        # Publishes happen inside gateway mutations, so the RLock is
        # already held by this thread — re-entering is cheap and makes
        # the notify legal from any caller that drives the bus directly.
        with self._delivered:
            self._delivered.notify_all()
        message = event.message
        if message.kind is MessageKind.AGENT:
            self._fan_out("reply", message_to_dict(message))

    def _on_verdict(self, event) -> None:
        self._fan_out(
            "verdict",
            {
                "room": event.room,
                "agent": event.agent,
                "severity": event.severity,
                "in_reply_to": event.in_reply_to,
                "timestamp": event.timestamp,
            },
        )
