"""The DDL/DML pipeline of Figure 3.

The paper's ontology-creation flow is: Ontology Definition (GUI) →
"DDL and DML Translation" → "DDL and DML Interpreter" → Corpora Generator
→ databases.  This module defines that intermediate language:

DDL (schema)::

    CREATE CONCEPT 'stack' ID 3 CATEGORY 'container' ALIASES 'pushdown list';
    CREATE OPERATION 'push' ID 32;

DML (content)::

    INSERT DESCRIPTION INTO 'stack' VALUE 'A stack is ...';
    INSERT SYMBOL 'top' INTO 'stack' VALUE 'A stack is a linear list ...';
    INSERT RELATION 'stack' 'is-a' 'list';
    INSERT ALGORITHM 'push' INTO 'stack' TYPE 'c' VALUE 'void push(...) {...}';

``translate`` turns an :class:`Ontology` into a statement list and
``Interpreter`` executes statements back into an ontology; the two are
exact inverses, which the tests assert.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from .builder import OntologyBuilder
from .model import ItemKind, Ontology, OntologyError, RelationKind


class DDLError(ValueError):
    """Raised for malformed DDL/DML statements."""


@dataclass(frozen=True, slots=True)
class Statement:
    """One parsed DDL/DML statement: a verb and its arguments."""

    verb: str                      # CREATE or INSERT
    kind: str                      # CONCEPT / OPERATION / ... / RELATION / ...
    args: tuple[str, ...] = ()
    options: tuple[tuple[str, str], ...] = ()

    def option(self, name: str, default: str | None = None) -> str | None:
        for key, value in self.options:
            if key == name:
                return value
        return default

    def render(self) -> str:
        """Serialise back to statement text."""
        parts = [self.verb, self.kind]
        if self.verb == "CREATE":
            parts.append(_quote(self.args[0]))
            for key, value in self.options:
                parts.append(key)
                parts.append(value if key == "ID" else _quote(value))
        elif self.kind == "RELATION":
            parts.extend(_quote(a) for a in self.args)
        elif self.kind == "DESCRIPTION":
            parts.extend(["INTO", _quote(self.args[0]), "VALUE", _quote(self.args[1])])
        elif self.kind == "SYMBOL":
            parts.extend(
                [_quote(self.args[0]), "INTO", _quote(self.args[1]), "VALUE", _quote(self.args[2])]
            )
        elif self.kind == "ALGORITHM":
            parts.extend(
                [
                    _quote(self.args[0]),
                    "INTO",
                    _quote(self.args[1]),
                    "TYPE",
                    _quote(self.option("TYPE", "text") or "text"),
                    "VALUE",
                    _quote(self.args[2]),
                ]
            )
        else:
            parts.extend(_quote(a) for a in self.args)
        return " ".join(parts) + ";"


def _quote(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


_ITEM_KINDS = {
    "CONCEPT": ItemKind.CONCEPT,
    "OPERATION": ItemKind.OPERATION,
    "PROPERTY": ItemKind.PROPERTY,
    "ALGORITHM": ItemKind.ALGORITHM,
}


# --------------------------------------------------------------------------
# Translation: Ontology -> statements
# --------------------------------------------------------------------------

def translate(ontology: Ontology) -> list[Statement]:
    """Translate a knowledge body to DDL/DML statements (Figure 3)."""
    statements: list[Statement] = []
    for item in ontology.items():
        kind_word = item.kind.name
        options: list[tuple[str, str]] = [("ID", str(item.item_id))]
        if item.category and item.category not in ("operation", "property", "algorithm"):
            options.append(("CATEGORY", item.category))
        if item.aliases:
            options.append(("ALIASES", ",".join(item.aliases)))
        statements.append(Statement("CREATE", kind_word, (item.name,), tuple(options)))
    for item in ontology.items():
        if item.definition.description:
            statements.append(
                Statement("INSERT", "DESCRIPTION", (item.name, item.definition.description))
            )
        for symbol, text in item.definition.symbols.items():
            statements.append(Statement("INSERT", "SYMBOL", (symbol, item.name, text)))
        for algorithm in item.algorithms:
            statements.append(
                Statement(
                    "INSERT",
                    "ALGORITHM",
                    (algorithm.name, item.name, algorithm.body),
                    (("TYPE", algorithm.type),),
                )
            )
    for relation in ontology.relations():
        statements.append(
            Statement(
                "INSERT",
                "RELATION",
                (
                    ontology.get(relation.source).name,
                    relation.kind.value,
                    ontology.get(relation.target).name,
                ),
            )
        )
    return statements


def render_script(statements: Iterable[Statement]) -> str:
    """Statements as a newline-separated script."""
    return "\n".join(statement.render() for statement in statements) + "\n"


# --------------------------------------------------------------------------
# Parsing: text -> statements
# --------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<string>'(?:[^']|'')*')
  | (?P<word>[A-Za-z][A-Za-z0-9_-]*)
  | (?P<number>\d+)
  | (?P<semi>;)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise DDLError(f"unexpected character {text[pos]!r} at offset {pos}")
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "string":
            tokens.append(("string", value[1:-1].replace("''", "'")))
        elif kind != "ws":
            tokens.append((kind, value))
        pos = match.end()
    return tokens


def parse_script(text: str) -> list[Statement]:
    """Parse a DDL/DML script into statements."""
    statements: list[Statement] = []
    current: list[tuple[str, str]] = []
    for token in _tokenize(text):
        if token[0] == "semi":
            if current:
                statements.append(_parse_statement(current))
                current = []
        else:
            current.append(token)
    if current:
        raise DDLError("unterminated statement (missing ';')")
    return statements


def _parse_statement(tokens: list[tuple[str, str]]) -> Statement:
    if len(tokens) < 2 or tokens[0][0] != "word":
        raise DDLError(f"malformed statement: {tokens!r}")
    verb = tokens[0][1].upper()
    kind = tokens[1][1].upper()
    rest = tokens[2:]
    if verb == "CREATE":
        if kind not in _ITEM_KINDS:
            raise DDLError(f"CREATE of unknown kind {kind!r}")
        if not rest or rest[0][0] != "string":
            raise DDLError(f"CREATE {kind} requires a quoted name")
        name = rest[0][1]
        options: list[tuple[str, str]] = []
        index = 1
        while index < len(rest):
            token_kind, token_value = rest[index]
            if token_kind != "word":
                raise DDLError(f"expected option keyword, got {token_value!r}")
            keyword = token_value.upper()
            if index + 1 >= len(rest):
                raise DDLError(f"option {keyword} missing a value")
            options.append((keyword, rest[index + 1][1]))
            index += 2
        return Statement("CREATE", kind, (name,), tuple(options))
    if verb == "INSERT":
        values = [value for token_kind, value in rest if token_kind == "string"]
        words = [value.upper() for token_kind, value in rest if token_kind == "word"]
        if kind == "RELATION":
            if len(values) != 3:
                raise DDLError("INSERT RELATION requires three quoted arguments")
            return Statement("INSERT", "RELATION", tuple(values))
        if kind == "DESCRIPTION":
            if len(values) != 2 or words != ["INTO", "VALUE"]:
                raise DDLError("INSERT DESCRIPTION INTO 'x' VALUE 'y' expected")
            return Statement("INSERT", "DESCRIPTION", tuple(values))
        if kind == "SYMBOL":
            if len(values) != 3 or words != ["INTO", "VALUE"]:
                raise DDLError("INSERT SYMBOL 's' INTO 'x' VALUE 'y' expected")
            return Statement("INSERT", "SYMBOL", tuple(values))
        if kind == "ALGORITHM":
            if len(values) != 4 or words != ["INTO", "TYPE", "VALUE"]:
                raise DDLError("INSERT ALGORITHM 'a' INTO 'x' TYPE 't' VALUE 'v' expected")
            name, into, type_, value = values
            return Statement("INSERT", "ALGORITHM", (name, into, value), (("TYPE", type_),))
        raise DDLError(f"INSERT of unknown kind {kind!r}")
    raise DDLError(f"unknown statement verb {verb!r}")


# --------------------------------------------------------------------------
# Interpretation: statements -> Ontology
# --------------------------------------------------------------------------

class Interpreter:
    """Executes DDL/DML statements into a fresh knowledge body."""

    def __init__(self, domain: str = "Data Structure") -> None:
        self.builder = OntologyBuilder(domain)

    def execute(self, statement: Statement) -> None:
        if statement.verb == "CREATE":
            self._execute_create(statement)
        elif statement.verb == "INSERT":
            self._execute_insert(statement)
        else:
            raise DDLError(f"cannot execute verb {statement.verb!r}")

    def _execute_create(self, statement: Statement) -> None:
        kind = _ITEM_KINDS[statement.kind]
        name = statement.args[0]
        raw_id = statement.option("ID")
        item_id = int(raw_id) if raw_id is not None else None
        aliases_opt = statement.option("ALIASES", "") or ""
        aliases = tuple(a for a in aliases_opt.split(",") if a)
        category = statement.option("CATEGORY", "") or ""
        if kind == ItemKind.CONCEPT:
            self.builder.concept(name, item_id=item_id, category=category, aliases=aliases)
        elif kind == ItemKind.OPERATION:
            self.builder.operation(name, item_id=item_id, aliases=aliases)
        elif kind == ItemKind.PROPERTY:
            self.builder.property(name, item_id=item_id, aliases=aliases)
        else:
            self.builder.algorithm_item(name, item_id=item_id, aliases=aliases)

    def _execute_insert(self, statement: Statement) -> None:
        ontology = self.builder.ontology
        if statement.kind == "DESCRIPTION":
            name, text = statement.args
            ontology.resolve(name).definition.description = text
        elif statement.kind == "SYMBOL":
            symbol, name, text = statement.args
            ontology.resolve(name).definition.symbols[symbol] = text
        elif statement.kind == "ALGORITHM":
            algo_name, name, body = statement.args
            self.builder.attach_algorithm(
                name, algo_name, statement.option("TYPE", "text") or "text", body
            )
        elif statement.kind == "RELATION":
            source, kind_text, target = statement.args
            try:
                kind = RelationKind(kind_text)
            except ValueError as exc:
                raise DDLError(f"unknown relation kind {kind_text!r}") from exc
            ontology.add_relation(source, kind, target)
        else:
            raise DDLError(f"cannot INSERT {statement.kind!r}")

    def run(self, statements: Iterable[Statement]) -> Ontology:
        """Execute all statements and return the validated ontology."""
        for statement in statements:
            self.execute(statement)
        return self.builder.build()


def interpret_script(text: str, domain: str = "Data Structure") -> Ontology:
    """Parse and execute a DDL/DML script."""
    return Interpreter(domain).run(parse_script(text))
