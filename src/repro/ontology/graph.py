"""Weighted graph view of an ontology, with shortest-path distances.

The Sentence Distance Evaluation (section 4.3) asks "how far apart are
these two keywords in the knowledge ontology?".  We answer with weighted
shortest paths over the relation graph, treating relations as undirected
for distance purposes (being operated-on is as close as operating).

The implementation is self-contained (binary-heap Dijkstra); ``networkx``
is used only in the test suite as an oracle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .model import Ontology, RelationKind

INFINITY = float("inf")


@dataclass(frozen=True, slots=True)
class PathResult:
    """A shortest path between two ontology items."""

    distance: float
    nodes: tuple[int, ...]

    @property
    def reachable(self) -> bool:
        return self.distance != INFINITY


class OntologyGraph:
    """Adjacency view over an :class:`~repro.ontology.model.Ontology`.

    Build once per ontology snapshot; rebuilding after mutation is the
    caller's responsibility (the system facade rebuilds on ontology
    reloads).
    """

    def __init__(self, ontology: Ontology, kinds: tuple[RelationKind, ...] | None = None) -> None:
        self.ontology = ontology
        self._adjacency: dict[int, list[tuple[int, float]]] = {}
        for item in ontology.items():
            self._adjacency[item.item_id] = []
        for relation in ontology.relations():
            if kinds is not None and relation.kind not in kinds:
                continue
            weight = relation.kind.weight
            self._adjacency[relation.source].append((relation.target, weight))
            self._adjacency[relation.target].append((relation.source, weight))

    def neighbors(self, node: int) -> list[tuple[int, float]]:
        return list(self._adjacency.get(node, ()))

    def shortest_path(self, source: int, target: int) -> PathResult:
        """Dijkstra shortest path; ``INFINITY`` when unreachable."""
        if source not in self._adjacency or target not in self._adjacency:
            return PathResult(INFINITY, ())
        if source == target:
            return PathResult(0.0, (source,))
        best: dict[int, float] = {source: 0.0}
        previous: dict[int, int] = {}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            dist, node = heapq.heappop(heap)
            if dist > best.get(node, INFINITY):
                continue
            if node == target:
                break
            for neighbor, weight in self._adjacency[node]:
                candidate = dist + weight
                if candidate < best.get(neighbor, INFINITY):
                    best[neighbor] = candidate
                    previous[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        if target not in best:
            return PathResult(INFINITY, ())
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return PathResult(best[target], tuple(path))

    def distance(self, source: int, target: int) -> float:
        return self.shortest_path(source, target).distance

    def distances_from(self, source: int) -> dict[int, float]:
        """Single-source distances to every reachable node."""
        if source not in self._adjacency:
            return {}
        best: dict[int, float] = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            dist, node = heapq.heappop(heap)
            if dist > best.get(node, INFINITY):
                continue
            for neighbor, weight in self._adjacency[node]:
                candidate = dist + weight
                if candidate < best.get(neighbor, INFINITY):
                    best[neighbor] = candidate
                    heapq.heappush(heap, (candidate, neighbor))
        return best

    def connected_components(self) -> list[set[int]]:
        """Connected components of the (undirected) relation graph."""
        seen: set[int] = set()
        components: list[set[int]] = []
        for start in self._adjacency:
            if start in seen:
                continue
            component = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbor, _ in self._adjacency[node]:
                    if neighbor not in component:
                        component.add(neighbor)
                        stack.append(neighbor)
            seen |= component
            components.append(component)
        return components
