"""Semantic distance evaluation over the knowledge ontology.

This is the decision kernel of the paper's chosen Semantic Agent
methodology ("Semantic Relation of Knowledge Ontology", section 4.3):
given the keywords of a sentence, locate them in the ontology, measure
how related they are, and decide whether a concept/operation pairing
makes sense — e.g. *tree* (id 4) with *pop* (id 33) "is not related",
so "I push the data into a tree" is flagged while the negated
"The tree doesn't have pop method" is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import INFINITY, OntologyGraph
from .model import Item, ItemKind, Ontology

DEFAULT_RELATED_THRESHOLD = 2.0


@dataclass(frozen=True, slots=True)
class DistanceVerdict:
    """Outcome of evaluating one keyword pair.

    Attributes:
        left_id / right_id: ontology ids of the evaluated items.
        distance: weighted shortest-path distance (INFINITY = unrelated).
        related: True when the pair is semantically close (supports the
            affirmative reading of the sentence).
        capability: for concept/operation pairs, whether the concept
            actually supports the operation (inheritance included);
            None when the pair is not a concept/operation pairing.
    """

    left_id: int
    right_id: int
    distance: float
    related: bool
    capability: bool | None = None


class SemanticDistanceEvaluator:
    """Evaluates keyword pairs against an ontology snapshot."""

    def __init__(
        self,
        ontology: Ontology,
        related_threshold: float = DEFAULT_RELATED_THRESHOLD,
    ) -> None:
        self.ontology = ontology
        self.related_threshold = related_threshold
        self.graph = OntologyGraph(ontology)

    # ------------------------------------------------------------ queries

    def distance(self, left: int | str, right: int | str) -> float:
        """Weighted ontology distance between two items."""
        a = self.ontology.resolve(left).item_id
        b = self.ontology.resolve(right).item_id
        return self.graph.distance(a, b)

    def evaluate_pair(self, left: int | str, right: int | str) -> DistanceVerdict:
        """Judge one keyword pair, with capability logic for operations.

        A concept/operation pair is "related" only when the concept (or an
        IS-A ancestor) *has* the operation — mere graph proximity is not
        enough: tree and pop are both near "data structure", yet trees do
        not support pop.
        """
        left_item = self.ontology.resolve(left)
        right_item = self.ontology.resolve(right)
        dist = self.graph.distance(left_item.item_id, right_item.item_id)

        def verdict(related: bool, capability: bool | None) -> DistanceVerdict:
            return DistanceVerdict(
                left_id=left_item.item_id,
                right_id=right_item.item_id,
                distance=dist,
                related=related,
                capability=capability,
            )

        concept, operation = _typed_pair(left_item, right_item, ItemKind.OPERATION)
        if concept is not None and operation is not None:
            capable = self.ontology.has_operation(concept.item_id, operation.item_id)
            return verdict(capable, capable)

        concept, prop = _typed_pair(left_item, right_item, ItemKind.PROPERTY)
        if concept is not None and prop is not None:
            held = any(
                item.item_id == prop.item_id
                for item in self.ontology.properties_of(concept.item_id)
            )
            return verdict(held, held)

        if left_item.kind == ItemKind.CONCEPT and right_item.kind == ItemKind.CONCEPT:
            # IS-A claims: ancestry in either direction counts as related
            # regardless of path length ("an avl tree is a tree").
            left_ancestors = {a.item_id for a in self.ontology.ancestors(left_item.item_id)}
            right_ancestors = {a.item_id for a in self.ontology.ancestors(right_item.item_id)}
            if right_item.item_id in left_ancestors or left_item.item_id in right_ancestors:
                return verdict(True, True)

        return verdict(dist <= self.related_threshold, None)

    # -------------------------------------------------------- suggestions

    def concepts_supporting(self, operation: int | str, near: int | str | None = None) -> list[Item]:
        """Concepts that support ``operation``, nearest to ``near`` first.

        Used to build correction suggestions: for "I push the data into a
        tree", the nearest push-supporting concept (stack) is proposed.
        """
        candidates = self.ontology.concepts_with_operation(operation)
        if near is None:
            return sorted(candidates, key=lambda item: item.name)
        anchor = self.ontology.resolve(near).item_id
        distances = self.graph.distances_from(anchor)

        def sort_key(item: Item) -> tuple[float, str]:
            return (distances.get(item.item_id, INFINITY), item.name)

        return sorted(candidates, key=sort_key)

    def operations_available(self, concept: int | str) -> list[Item]:
        """Operations the concept does support (for "did you mean" hints)."""
        return sorted(
            self.ontology.operations_of(concept),
            key=lambda item: item.name,
        )

    def nearest_items(self, key: int | str, limit: int = 5) -> list[tuple[Item, float]]:
        """The ``limit`` closest items to ``key`` (excluding itself)."""
        anchor = self.ontology.resolve(key).item_id
        distances = self.graph.distances_from(anchor)
        ranked = sorted(
            ((self.ontology.get(node), dist) for node, dist in distances.items() if node != anchor),
            key=lambda pair: (pair[1], pair[0].name),
        )
        return ranked[:limit]


def _typed_pair(left: Item, right: Item, kind: ItemKind) -> tuple[Item | None, Item | None]:
    """Order a pair as (concept, <kind>) when it is such a pairing."""
    if left.kind == ItemKind.CONCEPT and right.kind == kind:
        return left, right
    if left.kind == kind and right.kind == ItemKind.CONCEPT:
        return right, left
    return None, None
