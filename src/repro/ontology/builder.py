"""Programmatic ontology definition (the paper's Ontology Definition GUI).

The paper initialises the system by loading pre-defined Data Structure
terms "through the Ontology Definition GUI"; the GUI itself is an input
surface, so this builder reproduces its function: a fluent API that
assembles a knowledge body, which the DDL/DML pipeline
(:mod:`repro.ontology.ddl`) then translates and interprets exactly as
Figure 3 shows.
"""

from __future__ import annotations

from .model import (
    Algorithm,
    Definition,
    Item,
    ItemKind,
    Ontology,
    OntologyError,
    RelationKind,
)


class OntologyBuilder:
    """Fluent builder over :class:`~repro.ontology.model.Ontology`.

    Ids may be assigned explicitly (the paper fixes stack=3, tree=4,
    push=32, pop=33) or allocated automatically per kind: concepts from 1,
    operations from 30, properties from 60, algorithms from 80.
    """

    _AUTO_BASE = {
        ItemKind.CONCEPT: 1,
        ItemKind.OPERATION: 30,
        ItemKind.PROPERTY: 60,
        ItemKind.ALGORITHM: 80,
    }

    def __init__(self, domain: str = "Data Structure") -> None:
        self.ontology = Ontology(domain)
        self._next_id = dict(self._AUTO_BASE)

    # --------------------------------------------------------------- items

    def _allocate(self, kind: ItemKind, item_id: int | None) -> int:
        if item_id is not None:
            return item_id
        candidate = self._next_id[kind]
        while candidate in self.ontology:
            candidate += 1
        self._next_id[kind] = candidate + 1
        return candidate

    def _add(
        self,
        kind: ItemKind,
        name: str,
        item_id: int | None,
        category: str,
        description: str,
        aliases: tuple[str, ...],
        symbols: dict[str, str] | None,
    ) -> Item:
        item = Item(
            item_id=self._allocate(kind, item_id),
            name=name.lower(),
            kind=kind,
            category=category,
            definition=Definition(description=description, symbols=dict(symbols or {})),
            aliases=tuple(alias.lower() for alias in aliases),
        )
        return self.ontology.add_item(item)

    def concept(
        self,
        name: str,
        item_id: int | None = None,
        category: str = "",
        description: str = "",
        aliases: tuple[str, ...] = (),
        symbols: dict[str, str] | None = None,
    ) -> Item:
        """Add a KeyItem (concept)."""
        return self._add(ItemKind.CONCEPT, name, item_id, category, description, aliases, symbols)

    def operation(
        self,
        name: str,
        item_id: int | None = None,
        description: str = "",
        aliases: tuple[str, ...] = (),
    ) -> Item:
        """Add a SubItem (operation/method)."""
        return self._add(ItemKind.OPERATION, name, item_id, "operation", description, aliases, None)

    def property(
        self,
        name: str,
        item_id: int | None = None,
        description: str = "",
        aliases: tuple[str, ...] = (),
    ) -> Item:
        """Add a property item (LIFO, FIFO, balanced, ...)."""
        return self._add(ItemKind.PROPERTY, name, item_id, "property", description, aliases, None)

    def algorithm_item(
        self,
        name: str,
        item_id: int | None = None,
        description: str = "",
        aliases: tuple[str, ...] = (),
    ) -> Item:
        """Add an algorithm as a first-class item (binary search, ...)."""
        return self._add(ItemKind.ALGORITHM, name, item_id, "algorithm", description, aliases, None)

    # ----------------------------------------------------------- relations

    def is_a(self, child: str, parent: str) -> "OntologyBuilder":
        self.ontology.add_relation(child, RelationKind.IS_A, parent)
        return self

    def supports(self, concept: str, *operations: str) -> "OntologyBuilder":
        for operation in operations:
            self.ontology.add_relation(concept, RelationKind.HAS_OPERATION, operation)
        return self

    def has_property(self, concept: str, *properties: str) -> "OntologyBuilder":
        for prop in properties:
            self.ontology.add_relation(concept, RelationKind.HAS_PROPERTY, prop)
        return self

    def part_of(self, part: str, whole: str) -> "OntologyBuilder":
        self.ontology.add_relation(part, RelationKind.PART_OF, whole)
        return self

    def uses(self, user: str, used: str) -> "OntologyBuilder":
        self.ontology.add_relation(user, RelationKind.USES, used)
        return self

    def implemented_with(self, concept: str, substrate: str) -> "OntologyBuilder":
        self.ontology.add_relation(concept, RelationKind.IMPLEMENTED_WITH, substrate)
        return self

    def related(self, left: str, right: str) -> "OntologyBuilder":
        self.ontology.add_relation(left, RelationKind.RELATED_TO, right)
        return self

    # --------------------------------------------------------- attachments

    def attach_algorithm(self, concept: str, name: str, type: str, body: str) -> "OntologyBuilder":
        """Attach a typed algorithm text to a concept (Fig. 5 type="c")."""
        self.ontology.resolve(concept).algorithms.append(
            Algorithm(name=name, type=type, body=body)
        )
        return self

    # -------------------------------------------------------------- output

    def build(self, validate: bool = True) -> Ontology:
        """Finish and (optionally) validate the knowledge body."""
        if validate:
            problems = self.ontology.validate()
            if problems:
                raise OntologyError("; ".join(problems))
        return self.ontology
