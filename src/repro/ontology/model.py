"""The knowledge-ontology object model (paper section 2.2, Figure 5).

The paper's Distance Learning Ontology is a *domain ontology*: a knowledge
body of **KeyItems** (concepts such as Array, Stack, Tree), each carrying a
**Definition** (description plus named symbols), **Operations** (SubItems
such as push/pop with their own ids — Fig. 5 shows push=32, pop=33 under
Stack), **Algorithms** (typed code attachments, e.g. ``type="c"``), and
typed **Relations** to other items.  Items are addressable both by numeric
id and by (multi-word) name; ids are what the Sentence Distance Evaluation
of section 4.3 looks up ("the id of the keywords 'tree' and 'pop' is 4
and 33").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator


class OntologyError(ValueError):
    """Raised for malformed or inconsistent ontology operations."""


class ItemKind(Enum):
    """What an ontology item denotes."""

    CONCEPT = "concept"        # KeyItem: a data structure / domain entity
    OPERATION = "operation"    # SubItem: a method such as push or pop
    PROPERTY = "property"      # a characteristic such as LIFO
    ALGORITHM = "algorithm"    # a named procedure such as binary search


class RelationKind(Enum):
    """Typed edges of the knowledge body.

    Weights encode semantic closeness for the Sentence Distance
    Evaluation: taxonomic and structural edges are tighter than loose
    associative ones.
    """

    IS_A = "is-a"
    HAS_OPERATION = "has-operation"
    HAS_PROPERTY = "has-property"
    PART_OF = "part-of"
    USES = "uses"
    IMPLEMENTED_WITH = "implemented-with"
    RELATED_TO = "related-to"

    @property
    def weight(self) -> float:
        return _RELATION_WEIGHTS[self]


_RELATION_WEIGHTS: dict[RelationKind, float] = {
    RelationKind.IS_A: 1.0,
    RelationKind.HAS_OPERATION: 1.0,
    RelationKind.HAS_PROPERTY: 1.0,
    RelationKind.PART_OF: 1.0,
    RelationKind.USES: 2.0,
    RelationKind.IMPLEMENTED_WITH: 2.0,
    RelationKind.RELATED_TO: 2.0,
}


@dataclass(slots=True)
class Definition:
    """A KeyItem's definition: free-text description plus named symbols."""

    description: str = ""
    symbols: dict[str, str] = field(default_factory=dict)

    def is_empty(self) -> bool:
        return not self.description and not self.symbols


@dataclass(slots=True)
class Algorithm:
    """A typed algorithm attachment (Fig. 5: ``Algorithm type="c"``)."""

    name: str
    type: str = "text"
    body: str = ""


@dataclass(slots=True)
class Item:
    """One ontology item: a KeyItem (concept) or SubItem (operation) etc.

    Attributes:
        item_id: stable numeric id, unique within the ontology.
        name: canonical lower-case name; may be multi-word.
        kind: concept / operation / property / algorithm.
        category: free-form grouping ("container", "measure", ...).
        definition: textual definition (mostly for concepts).
        aliases: alternative names resolving to this item.
        algorithms: attached algorithm texts.
    """

    item_id: int
    name: str
    kind: ItemKind = ItemKind.CONCEPT
    category: str = ""
    definition: Definition = field(default_factory=Definition)
    aliases: tuple[str, ...] = ()
    algorithms: list[Algorithm] = field(default_factory=list)

    def all_names(self) -> tuple[str, ...]:
        return (self.name,) + self.aliases


@dataclass(frozen=True, slots=True)
class Relation:
    """A typed, directed relation ``source --kind--> target`` (by id)."""

    source: int
    kind: RelationKind
    target: int


class Ontology:
    """The knowledge body: items plus typed relations.

    Items are indexed by id and by every name/alias (lower-cased).  The
    class is a plain in-memory store; graph analytics live in
    :mod:`repro.ontology.graph` and :mod:`repro.ontology.distance`.
    """

    def __init__(self, domain: str = "Data Structure") -> None:
        self.domain = domain
        self._items: dict[int, Item] = {}
        self._by_name: dict[str, int] = {}
        self._relations: list[Relation] = []
        self._relation_set: set[Relation] = set()

    # ------------------------------------------------------------- storage

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: int | str) -> bool:
        if isinstance(key, int):
            return key in self._items
        return key.lower() in self._by_name

    def items(self) -> Iterator[Item]:
        """All items in id order."""
        for item_id in sorted(self._items):
            yield self._items[item_id]

    def relations(self) -> tuple[Relation, ...]:
        return tuple(self._relations)

    def add_item(self, item: Item) -> Item:
        """Register an item; ids and names must be unique."""
        if item.item_id in self._items:
            raise OntologyError(f"duplicate item id {item.item_id}")
        for name in item.all_names():
            key = name.lower()
            if key in self._by_name:
                raise OntologyError(f"duplicate item name {name!r}")
        self._items[item.item_id] = item
        for name in item.all_names():
            self._by_name[name.lower()] = item.item_id
        return item

    def add_relation(self, source: int | str, kind: RelationKind, target: int | str) -> Relation:
        """Add a typed relation; both endpoints must exist."""
        relation = Relation(self.resolve(source).item_id, kind, self.resolve(target).item_id)
        if relation in self._relation_set:
            return relation
        self._relations.append(relation)
        self._relation_set.add(relation)
        return relation

    # -------------------------------------------------------------- lookup

    def get(self, item_id: int) -> Item:
        item = self._items.get(item_id)
        if item is None:
            raise OntologyError(f"no item with id {item_id}")
        return item

    def find(self, name: str) -> Item | None:
        """Item by name or alias (case-insensitive), or None."""
        item_id = self._by_name.get(name.lower())
        return self._items[item_id] if item_id is not None else None

    def resolve(self, key: int | str) -> Item:
        """Item by id or by name; raises when missing."""
        if isinstance(key, int):
            return self.get(key)
        item = self.find(key)
        if item is None:
            raise OntologyError(f"no item named {key!r}")
        return item

    def term_index(self) -> dict[str, int]:
        """Every name and alias (lower-case) mapped to its item id."""
        return dict(self._by_name)

    def items_of_kind(self, kind: ItemKind) -> list[Item]:
        return [item for item in self.items() if item.kind == kind]

    # ----------------------------------------------------------- relations

    def relations_from(self, key: int | str, kind: RelationKind | None = None) -> list[Relation]:
        source = self.resolve(key).item_id
        return [
            r for r in self._relations
            if r.source == source and (kind is None or r.kind == kind)
        ]

    def relations_to(self, key: int | str, kind: RelationKind | None = None) -> list[Relation]:
        target = self.resolve(key).item_id
        return [
            r for r in self._relations
            if r.target == target and (kind is None or r.kind == kind)
        ]

    def parents(self, key: int | str) -> list[Item]:
        """IS-A parents of an item."""
        return [self.get(r.target) for r in self.relations_from(key, RelationKind.IS_A)]

    def ancestors(self, key: int | str) -> list[Item]:
        """All transitive IS-A ancestors, nearest first (BFS order)."""
        start = self.resolve(key).item_id
        seen: list[int] = []
        frontier = [start]
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                for relation in self.relations_from(node, RelationKind.IS_A):
                    if relation.target not in seen and relation.target != start:
                        seen.append(relation.target)
                        next_frontier.append(relation.target)
            frontier = next_frontier
        return [self.get(item_id) for item_id in seen]

    def operations_of(self, key: int | str, inherit: bool = True) -> list[Item]:
        """Operations supported by a concept, optionally via IS-A chains."""
        concept = self.resolve(key)
        sources = [concept] + (self.ancestors(concept.item_id) if inherit else [])
        operations: dict[int, Item] = {}
        for source in sources:
            for relation in self.relations_from(source.item_id, RelationKind.HAS_OPERATION):
                operations.setdefault(relation.target, self.get(relation.target))
        return list(operations.values())

    def has_operation(self, concept: int | str, operation: int | str, inherit: bool = True) -> bool:
        """Does ``concept`` support ``operation`` (directly or inherited)?"""
        target = self.resolve(operation).item_id
        return any(op.item_id == target for op in self.operations_of(concept, inherit=inherit))

    def concepts_with_operation(self, operation: int | str, inherit: bool = True) -> list[Item]:
        """All concepts supporting ``operation`` — the QA template
        "Which data structure has the method X?"."""
        result = []
        for item in self.items_of_kind(ItemKind.CONCEPT):
            if self.has_operation(item.item_id, operation, inherit=inherit):
                result.append(item)
        return result

    def properties_of(self, key: int | str, inherit: bool = True) -> list[Item]:
        """Properties of a concept (LIFO, FIFO, ...), optionally inherited."""
        concept = self.resolve(key)
        sources = [concept] + (self.ancestors(concept.item_id) if inherit else [])
        properties: dict[int, Item] = {}
        for source in sources:
            for relation in self.relations_from(source.item_id, RelationKind.HAS_PROPERTY):
                properties.setdefault(relation.target, self.get(relation.target))
        return list(properties.values())

    def validate(self) -> list[str]:
        """Consistency problems (dangling relations, IS-A cycles)."""
        problems = []
        for relation in self._relations:
            if relation.source not in self._items or relation.target not in self._items:
                problems.append(f"dangling relation {relation}")
        # IS-A cycles would make inheritance loop forever conceptually.
        for item in self.items():
            seen = {item.item_id}
            frontier = [item.item_id]
            while frontier:
                node = frontier.pop()
                for relation in self.relations_from(node, RelationKind.IS_A):
                    if relation.target == item.item_id:
                        problems.append(f"is-a cycle through {item.name!r}")
                        frontier = []
                        break
                    if relation.target not in seen:
                        seen.add(relation.target)
                        frontier.append(relation.target)
        return problems


def next_free_id(ontology: Ontology, start: int = 1) -> int:
    """Smallest unused id >= start (helper for builders)."""
    current = start
    while current in ontology:
        current += 1
    return current
