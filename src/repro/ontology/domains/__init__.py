"""Built-in domain ontologies."""

from .data_structures import build_data_structure_ontology, default_ontology

__all__ = ["build_data_structure_ontology", "default_ontology"]
