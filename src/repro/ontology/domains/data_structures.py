"""The built-in Data Structure knowledge ontology (paper sections 4.1/4.3).

Ids reproduce the paper where it pins them down: Figure 5 and section 4.3
give **stack = 3, tree = 4, push = 32, pop = 33**, and section 4.4 quotes
the stored definition of *stack* verbatim — both are reproduced here
exactly and asserted by tests.

The ontology covers the classic undergraduate Data Structures course:
containers, their parts, operations, properties (LIFO/FIFO/...), and
algorithms, wired with typed relations so that the Semantic Agent's
distance evaluation can separate sense from nonsense ("stack has push"
vs "tree has pop").
"""

from __future__ import annotations

from functools import lru_cache

from ..builder import OntologyBuilder
from ..model import Ontology

# The paper's verbatim stack definition (section 4.4).
STACK_DESCRIPTION = (
    "A stack is a Last In, First Out (LIFO) data structure in which all "
    "insertions and deletions are restricted to one end called a top. "
    "There are three basic stack operations: push, pop, and stack top."
)
STACK_TOP_SYMBOL = (
    "A stack is a linear list in which all additions and deletions are "
    "restricted to one end which is called the top."
)

PUSH_ALGORITHM_C = """void push(Stack *s, int value) {
    if (s->count == s->capacity) { grow(s); }
    s->items[s->count] = value;
    s->count = s->count + 1;
}"""

POP_ALGORITHM_C = """int pop(Stack *s) {
    s->count = s->count - 1;
    return s->items[s->count];
}"""


def build_data_structure_ontology() -> Ontology:
    """Construct the full Data Structure knowledge body."""
    b = OntologyBuilder("Data Structure")

    # ------------------------------------------------------------ concepts
    b.concept(
        "data structure", item_id=1, category="abstract",
        description="A data structure is a way of organizing data so that it can be used efficiently.",
        aliases=("structure",),
    )
    b.concept(
        "array", item_id=2, category="container",
        description="An array is a contiguous block of cells accessed by an index in constant time.",
    )
    b.concept(
        "stack", item_id=3, category="container",
        description=STACK_DESCRIPTION,
        symbols={"top": STACK_TOP_SYMBOL},
    )
    b.concept(
        "tree", item_id=4, category="container",
        description="A tree is a hierarchical data structure of nodes in which every node except the root has one parent.",
    )
    b.concept(
        "queue", item_id=5, category="container",
        description="A queue is a First In, First Out (FIFO) data structure in which insertions happen at the rear and deletions at the front.",
        symbols={
            "front": "The front of a queue is the end where elements are removed.",
            "rear": "The rear of a queue is the end where elements are added.",
        },
    )
    b.concept(
        "linked list", item_id=6, category="container",
        description="A linked list is a linear collection of nodes in which every node points to the next node.",
    )
    b.concept(
        "heap", item_id=7, category="container",
        description="A heap is a complete binary tree in which every node keeps the heap order with its children.",
    )
    b.concept(
        "graph", item_id=8, category="container",
        description="A graph is a set of vertices together with a set of edges that connect pairs of vertices.",
    )
    b.concept(
        "hash table", item_id=9, category="container",
        description="A hash table stores keys in buckets chosen by a hash function for constant expected lookup time.",
        aliases=("hash",),
    )
    b.concept(
        "binary tree", item_id=10, category="container",
        description="A binary tree is a tree in which every node has at most two children.",
    )
    b.concept(
        "binary search tree", item_id=11, category="container",
        description="A binary search tree is a binary tree in which every key in the left subtree is smaller and every key in the right subtree is larger.",
        aliases=("bst",),
    )
    b.concept(
        "avl tree", item_id=12, category="container",
        description="An AVL tree is a binary search tree in which the heights of the two subtrees of any node differ by at most one.",
        aliases=("avl",),
    )
    b.concept(
        "deque", item_id=13, category="container",
        description="A deque is a linear list in which additions and deletions happen at both ends.",
    )
    b.concept(
        "priority queue", item_id=14, category="container",
        description="A priority queue is a queue in which the element with the highest priority is removed first.",
    )
    b.concept(
        "list", item_id=15, category="container",
        description="A list is an ordered collection of elements that supports insertion, deletion, and traversal.",
    )
    b.concept(
        "set", item_id=16, category="container",
        description="A set is a collection of distinct elements that supports membership lookup.",
    )
    # Parts.
    b.concept("node", item_id=17, category="part",
              description="A node is one record of a linked structure, holding data and links.")
    b.concept("pointer", item_id=18, category="part",
              description="A pointer holds the address of another node or cell.")
    b.concept("element", item_id=19, category="part",
              description="An element is one data value stored in a data structure.",
              aliases=("item",))
    b.concept("index", item_id=20, category="part",
              description="An index is the integer position of a cell in an array.")
    b.concept("key", item_id=21, category="part",
              description="A key is the value by which an element is identified and compared.")
    b.concept("root", item_id=22, category="part",
              description="The root is the topmost node of a tree.")
    b.concept("leaf", item_id=23, category="part",
              description="A leaf is a tree node that has no children.")
    b.concept("edge", item_id=24, category="part",
              description="An edge connects two vertices of a graph.")
    b.concept("vertex", item_id=25, category="part",
              description="A vertex is one point of a graph.")
    b.concept("bucket", item_id=26, category="part",
              description="A bucket is one slot of a hash table that receives the keys hashing to it.")
    b.concept("top", item_id=27, category="part",
              description=STACK_TOP_SYMBOL)
    b.concept("front", item_id=28, category="part",
              description="The front of a queue is the end where elements are removed.")
    b.concept("rear", item_id=29, category="part",
              description="The rear of a queue is the end where elements are added.")

    # ---------------------------------------------------------- operations
    b.operation("insert", item_id=30,
                description="Insert places a new element into a data structure.")
    b.operation("delete", item_id=31,
                description="Delete removes an element from a data structure.",
                aliases=("remove",))
    b.operation("push", item_id=32,
                description="Push places a new element on the top of a stack.")
    b.operation("pop", item_id=33,
                description="Pop removes the element at the top of a stack.")
    b.operation("peek", item_id=34,
                description="Peek reads the next element without removing it.",
                aliases=("stack top",))
    b.operation("enqueue", item_id=35,
                description="Enqueue adds an element at the rear of a queue.")
    b.operation("dequeue", item_id=36,
                description="Dequeue removes the element at the front of a queue.")
    b.operation("traverse", item_id=37,
                description="Traverse visits every element of a data structure once.",
                aliases=("traversal", "visit"))
    b.operation("search", item_id=38,
                description="Search locates an element with a given key.",
                aliases=("find",))
    b.operation("sort", item_id=39,
                description="Sort arranges the elements into order.")
    b.operation("access", item_id=40,
                description="Access reads the element at a given position.")
    b.operation("lookup", item_id=41,
                description="Lookup retrieves the value stored under a key.",
                aliases=("retrieve",))
    b.operation("append", item_id=42,
                description="Append adds an element at the tail of a list.")
    b.operation("prepend", item_id=43,
                description="Prepend adds an element at the head of a list.")
    b.operation("merge", item_id=44,
                description="Merge combines two structures into one.")
    b.operation("split", item_id=45,
                description="Split divides a structure into two parts.")
    b.operation("rotate", item_id=46,
                description="A rotation rearranges a local group of tree nodes to restore balance.",
                aliases=("rotation",))
    b.operation("balance", item_id=47,
                description="Balance restores the shape invariant of a tree.")
    b.operation("heapify", item_id=48,
                description="Heapify restores the heap order below a node.")
    b.operation("hash function", item_id=49,
                description="The hash function maps a key to a bucket index.",
                aliases=("hashing",))
    b.operation("update", item_id=50,
                description="Update changes the value stored for an existing key.")
    b.operation("swap", item_id=51,
                description="Swap exchanges two elements.")
    b.operation("partition", item_id=52,
                description="Partition splits elements around a chosen pivot.")

    # ---------------------------------------------------------- properties
    b.property("lifo", item_id=60,
               description="Last In, First Out: the newest element leaves first.",
               aliases=("last in first out",))
    b.property("fifo", item_id=61,
               description="First In, First Out: the oldest element leaves first.",
               aliases=("first in first out",))
    b.property("sorted", item_id=62,
               description="The elements are kept in key order.",
               aliases=("ordered",))
    b.property("balanced", item_id=63,
               description="Subtree heights differ by at most a constant.")
    b.property("linear", item_id=64,
               description="The elements form a sequence.")
    b.property("hierarchical", item_id=65,
               description="The elements form parent/child levels.")
    b.property("dynamic", item_id=66,
               description="The structure grows and shrinks at run time.")
    b.property("static", item_id=67,
               description="The capacity is fixed when the structure is created.")
    b.property("contiguous", item_id=68,
               description="The cells occupy one block of memory.")
    b.property("complete", item_id=69,
               description="Every tree level except the last is full.")

    # ---------------------------------------------------------- algorithms
    b.algorithm_item("binary search", item_id=80,
                     description="Binary search halves a sorted array until the key is found.")
    b.algorithm_item("linear search", item_id=81,
                     description="Linear search scans the elements one by one.")
    b.algorithm_item("merge sort", item_id=82,
                     description="Merge sort sorts by splitting the list and merging sorted halves.")
    b.algorithm_item("quick sort", item_id=83,
                     description="Quick sort sorts by partitioning around a pivot.",
                     aliases=("quicksort",))
    b.algorithm_item("heap sort", item_id=84,
                     description="Heap sort sorts by repeatedly removing the heap maximum.")
    b.algorithm_item("dijkstra", item_id=85,
                     description="Dijkstra finds shortest paths from a source vertex.",
                     aliases=("dijkstra algorithm",))

    # ------------------------------------------------------------ taxonomy
    for child, parent in [
        ("array", "data structure"),
        ("list", "data structure"),
        ("tree", "data structure"),
        ("graph", "data structure"),
        ("hash table", "data structure"),
        ("set", "data structure"),
        ("stack", "list"),
        ("queue", "list"),
        ("deque", "list"),
        ("linked list", "list"),
        ("priority queue", "queue"),
        ("binary tree", "tree"),
        ("binary search tree", "binary tree"),
        ("avl tree", "binary search tree"),
        ("heap", "binary tree"),
    ]:
        b.is_a(child, parent)

    # -------------------------------------------------------- capabilities
    b.supports("list", "insert", "delete", "traverse", "search")
    b.supports("array", "access", "search", "sort", "update", "swap")
    b.supports("stack", "push", "pop", "peek")
    b.supports("queue", "enqueue", "dequeue", "peek")
    b.supports("deque", "append", "prepend", "pop", "peek")
    b.supports("tree", "insert", "delete", "traverse", "search")
    b.supports("binary search tree", "lookup")
    b.supports("avl tree", "rotate", "balance")
    b.supports("heap", "insert", "delete", "peek", "merge", "heapify")
    b.supports("hash table", "insert", "delete", "lookup", "hash function", "update")
    b.supports("linked list", "append", "prepend", "insert", "delete", "traverse", "split")
    b.supports("graph", "traverse", "search", "insert", "delete")
    b.supports("set", "insert", "delete", "lookup", "merge")
    b.supports("priority queue", "insert", "peek", "delete")

    # ---------------------------------------------------------- properties
    b.has_property("stack", "lifo", "linear")
    b.has_property("queue", "fifo", "linear")
    b.has_property("array", "static", "linear", "contiguous")
    b.has_property("linked list", "dynamic", "linear")
    b.has_property("list", "linear")
    b.has_property("deque", "linear")
    b.has_property("tree", "hierarchical")
    b.has_property("binary search tree", "sorted")
    b.has_property("avl tree", "balanced")
    b.has_property("heap", "complete")

    # --------------------------------------------------------------- parts
    for part, whole in [
        ("node", "linked list"),
        ("node", "tree"),
        ("pointer", "node"),
        ("element", "data structure"),
        ("index", "array"),
        ("key", "hash table"),
        ("key", "binary search tree"),
        ("root", "tree"),
        ("leaf", "tree"),
        ("edge", "graph"),
        ("vertex", "graph"),
        ("bucket", "hash table"),
        ("top", "stack"),
        ("front", "queue"),
        ("rear", "queue"),
    ]:
        b.part_of(part, whole)

    # ----------------------------------------------------- implementations
    b.implemented_with("stack", "array")
    b.implemented_with("stack", "linked list")
    b.implemented_with("queue", "array")
    b.implemented_with("queue", "linked list")
    b.implemented_with("heap", "array")
    b.implemented_with("hash table", "array")
    b.implemented_with("priority queue", "heap")

    # ------------------------------------------------------ algorithm uses
    b.uses("binary search", "array")
    b.uses("binary search", "sorted")
    b.uses("linear search", "list")
    b.uses("merge sort", "merge")
    b.uses("quick sort", "partition")
    b.uses("quick sort", "array")
    b.uses("merge sort", "split")
    b.uses("heap sort", "heap")
    b.uses("dijkstra", "graph")
    b.uses("dijkstra", "priority queue")

    # --------------------------------------------------- algorithm bodies
    b.attach_algorithm("stack", "push", "c", PUSH_ALGORITHM_C)
    b.attach_algorithm("stack", "pop", "c", POP_ALGORITHM_C)

    return b.build()


@lru_cache(maxsize=1)
def default_ontology() -> Ontology:
    """The shared Data Structure ontology (built once per process)."""
    return build_data_structure_ontology()
