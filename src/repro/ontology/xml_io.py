"""XML serialisation of the knowledge body, in the paper's format.

Section 4.4 shows the concrete XML the system stores::

    <KeyItem id="3" name="stack">
      <Definition>
        <Description>A stack is a Last In, First Out (LIFO) ...</Description>
        <Symbol name="top">A stack is a linear list ...</Symbol>
      </Definition>
      ...

We wrap items in a ``<KnowledgeBody domain="...">`` root (Fig. 5), encode
operations as ``<Operation><SubItem id=.. name=../></Operation>`` blocks,
algorithms as ``<Algorithm type=.. name=..>`` and relations as
``<Relation kind=.. target=../>``.  Reading and writing round-trip.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from .model import (
    Algorithm,
    Definition,
    Item,
    ItemKind,
    Ontology,
    OntologyError,
    Relation,
    RelationKind,
)

_KIND_TAGS = {
    ItemKind.CONCEPT: "KeyItem",
    ItemKind.OPERATION: "SubItem",
    ItemKind.PROPERTY: "PropertyItem",
    ItemKind.ALGORITHM: "AlgorithmItem",
}
_TAG_KINDS = {tag: kind for kind, tag in _KIND_TAGS.items()}


def to_xml(ontology: Ontology) -> str:
    """Serialise a knowledge body to the paper's XML format."""
    root = ET.Element("KnowledgeBody", {"domain": ontology.domain})
    operation_owners = _operation_owners(ontology)
    for item in ontology.items():
        if item.kind == ItemKind.OPERATION and operation_owners.get(item.item_id):
            continue  # rendered inline under its owning concepts
        root.append(_item_element(ontology, item))
    for relation in ontology.relations():
        if relation.kind == RelationKind.HAS_OPERATION:
            continue  # encoded structurally by the Operation blocks
        element = ET.SubElement(root, "Relation")
        element.set("source", ontology.get(relation.source).name)
        element.set("kind", relation.kind.value)
        element.set("target", ontology.get(relation.target).name)
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def _operation_owners(ontology: Ontology) -> dict[int, list[int]]:
    owners: dict[int, list[int]] = {}
    for relation in ontology.relations():
        if relation.kind == RelationKind.HAS_OPERATION:
            owners.setdefault(relation.target, []).append(relation.source)
    return owners


def _item_element(ontology: Ontology, item: Item) -> ET.Element:
    element = ET.Element(_KIND_TAGS[item.kind])
    element.set("id", str(item.item_id))
    element.set("name", item.name)
    if item.category:
        element.set("category", item.category)
    if item.aliases:
        element.set("aliases", ",".join(item.aliases))
    if not item.definition.is_empty():
        definition = ET.SubElement(element, "Definition")
        if item.definition.description:
            description = ET.SubElement(definition, "Description")
            description.text = item.definition.description
        for name, text in item.definition.symbols.items():
            symbol = ET.SubElement(definition, "Symbol", {"name": name})
            symbol.text = text
    if item.kind == ItemKind.CONCEPT:
        operations = [
            ontology.get(r.target)
            for r in ontology.relations_from(item.item_id, RelationKind.HAS_OPERATION)
        ]
        if operations:
            block = ET.SubElement(element, "Operation")
            for operation in operations:
                block.append(_item_element(ontology, operation))
    for algorithm in item.algorithms:
        algo = ET.SubElement(element, "Algorithm", {"type": algorithm.type, "name": algorithm.name})
        algo.text = algorithm.body
    return element


def from_xml(text: str) -> Ontology:
    """Parse the paper's XML format back into an :class:`Ontology`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise OntologyError(f"bad ontology XML: {exc}") from exc
    if root.tag != "KnowledgeBody":
        raise OntologyError(f"expected <KnowledgeBody>, got <{root.tag}>")
    ontology = Ontology(domain=root.get("domain", ""))
    pending_operations: list[tuple[str, str]] = []  # (concept name, op name)
    for child in root:
        if child.tag == "Relation":
            continue
        _read_item(ontology, child, pending_operations, owner=None)
    for concept_name, operation_name in pending_operations:
        ontology.add_relation(concept_name, RelationKind.HAS_OPERATION, operation_name)
    for child in root:
        if child.tag != "Relation":
            continue
        kind = RelationKind(child.get("kind", "related-to"))
        ontology.add_relation(child.get("source", ""), kind, child.get("target", ""))
    return ontology


def _read_item(
    ontology: Ontology,
    element: ET.Element,
    pending_operations: list[tuple[str, str]],
    owner: str | None,
) -> None:
    kind = _TAG_KINDS.get(element.tag)
    if kind is None:
        raise OntologyError(f"unknown ontology element <{element.tag}>")
    item_id = element.get("id")
    name = element.get("name")
    if item_id is None or name is None:
        raise OntologyError(f"<{element.tag}> requires id and name")
    aliases_attr = element.get("aliases", "")
    aliases = tuple(a for a in aliases_attr.split(",") if a)
    definition = Definition()
    algorithms: list[Algorithm] = []
    for child in element:
        if child.tag == "Definition":
            for part in child:
                if part.tag == "Description":
                    definition.description = part.text or ""
                elif part.tag == "Symbol":
                    definition.symbols[part.get("name", "")] = part.text or ""
        elif child.tag == "Operation":
            for sub in child:
                if ontology.find(sub.get("name", "")) is None:
                    _read_item(ontology, sub, pending_operations, owner=name)
                pending_operations.append((name, sub.get("name", "")))
        elif child.tag == "Algorithm":
            algorithms.append(
                Algorithm(
                    name=child.get("name", ""),
                    type=child.get("type", "text"),
                    body=child.text or "",
                )
            )
    item = Item(
        item_id=int(item_id),
        name=name,
        kind=kind,
        category=element.get("category", ""),
        definition=definition,
        aliases=aliases,
    )
    item.algorithms.extend(algorithms)
    ontology.add_item(item)
