"""Knowledge ontology substrate (paper sections 2.2, 4.1, 4.3, Fig. 5).

Object model, XML round-trip in the paper's format, the DDL/DML
translation/interpretation pipeline of Figure 3, graph distances for the
Sentence Distance Evaluation, and the built-in Data Structure domain.
"""

from .builder import OntologyBuilder
from .ddl import Interpreter, Statement, interpret_script, parse_script, render_script, translate
from .distance import DistanceVerdict, SemanticDistanceEvaluator
from .graph import INFINITY, OntologyGraph, PathResult
from .model import (
    Algorithm,
    Definition,
    Item,
    ItemKind,
    Ontology,
    OntologyError,
    Relation,
    RelationKind,
)
from .xml_io import from_xml, to_xml

__all__ = [
    "Algorithm",
    "Definition",
    "DistanceVerdict",
    "INFINITY",
    "Interpreter",
    "Item",
    "ItemKind",
    "Ontology",
    "OntologyBuilder",
    "OntologyError",
    "OntologyGraph",
    "PathResult",
    "Relation",
    "RelationKind",
    "SemanticDistanceEvaluator",
    "Statement",
    "from_xml",
    "interpret_script",
    "parse_script",
    "render_script",
    "to_xml",
    "translate",
]
