"""Durable state: write-ahead event log, snapshots, crash recovery.

Everything the supervision system accumulates — transcripts, the learner
corpus, user profiles, FAQ counts — used to die with the process.  This
package makes the system restartable:

* :mod:`~repro.durability.wal` — an append-only event log of
  length-prefixed, CRC-32-checksummed JSON records in rolling segment
  files.  External inputs (room creation, joins/leaves, posted user
  messages, explicit drains) are journalled in origin-seq order *before*
  supervision runs; agent replies are never logged because deterministic
  replay regenerates them.
* :mod:`~repro.durability.snapshot` — periodic full-state snapshots
  (every ``MergeableStore`` plus room transcripts, the clock and the
  delivery sequence), written atomically and framed with the same CRC
  envelope as log records.
* :mod:`~repro.durability.manager` — the :class:`DurabilityManager`
  journal a :class:`~repro.chatroom.server.ChatServer` writes through,
  plus recovery: load the latest valid snapshot, replay the log tail,
  truncate torn tails, quarantine corrupt records, and report what
  happened in a :class:`RecoveryReport`.
* :mod:`~repro.durability.faults` — the :class:`FaultClock` crash-point
  harness: every write/sync/snapshot boundary is a numbered fault point
  at which a test can kill the process (injected exception or real
  ``os._exit``), proving recovery converges from *any* crash.

See ``docs/durability.md`` for the log format, the recovery contract
and the fsync trade-offs.
"""

from .faults import NO_FAULTS, FaultClock, SimulatedCrash
from .manager import DurabilityManager, RecoveryReport, replay_events
from .snapshot import SnapshotStore, build_snapshot, restore_snapshot
from .wal import EventLog, encode_frame, read_log, scan_segment

__all__ = [
    "NO_FAULTS",
    "FaultClock",
    "SimulatedCrash",
    "DurabilityManager",
    "RecoveryReport",
    "replay_events",
    "SnapshotStore",
    "build_snapshot",
    "restore_snapshot",
    "EventLog",
    "encode_frame",
    "read_log",
    "scan_segment",
]
