"""The durability manager: journal hooks, snapshot cadence, recovery.

``DurabilityManager`` is the object a :class:`ChatServer` journals
through (duck-typed ``journal`` attribute — the chatroom layer never
imports this package).  Exactly the **external inputs** are logged, in
origin-seq order, before they take effect:

========  ====================================================
``room``   a room was created
``join``   a user joined a room
``leave``  a user left a room
``post``   a user/system message was delivered (never agent
           replies — deterministic replay regenerates them)
``drain``  queued supervision was explicitly flushed while
           work was pending (deferred-drain runtimes)
========  ====================================================

A ``post`` event folds in the clock advance that
:meth:`ELearningSystem.say` performs after posting (the ``advance``
field), so one user input is exactly one atomic log record and replay
reproduces every timestamp.

Recovery (:meth:`ELearningSystem.recover` drives it) is
*load-latest-valid-snapshot + replay-log-tail*: restore the snapshot in
place, re-apply ``events[snapshot.wal_count:]`` through the real
``ChatServer`` — which re-runs supervision and regenerates the agent
replies — and report everything unusual in a :class:`RecoveryReport`.
Replay is idempotent: events the snapshot already covers are skipped by
a sequence guard, so a crash *between* "snapshot committed" and "log
synced" (or a duplicated record) cannot double-apply anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .faults import NO_FAULTS
from .snapshot import SnapshotStore, build_snapshot
from .wal import FSYNC_MODES, EventLog


@dataclass(slots=True)
class RecoveryReport:
    """What recovery found and did — the operator-facing audit trail."""

    data_dir: str
    snapshot_path: str | None = None
    snapshot_cursor: int = 0
    snapshots_quarantined: list[str] = field(default_factory=list)
    segments_read: int = 0
    segments_skipped: list[str] = field(default_factory=list)
    events_total: int = 0
    events_replayed: int = 0
    events_skipped: int = 0
    truncated_bytes: int = 0
    quarantined: list[dict] = field(default_factory=list)
    divergences: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing beyond an expected torn tail was found."""
        return not (
            self.quarantined
            or self.segments_skipped
            or self.snapshots_quarantined
            or self.divergences
        )

    def to_dict(self) -> dict:
        return {
            "data_dir": self.data_dir,
            "snapshot_path": self.snapshot_path,
            "snapshot_cursor": self.snapshot_cursor,
            "snapshots_quarantined": list(self.snapshots_quarantined),
            "segments_read": self.segments_read,
            "segments_skipped": list(self.segments_skipped),
            "events_total": self.events_total,
            "events_replayed": self.events_replayed,
            "events_skipped": self.events_skipped,
            "truncated_bytes": self.truncated_bytes,
            "quarantined": list(self.quarantined),
            "divergences": list(self.divergences),
            "clean": self.clean,
        }

    def summary(self) -> str:
        """A short human-readable report (the CLI prints this)."""
        lines = [
            f"data dir: {self.data_dir}",
            f"snapshot: {self.snapshot_path or '(none — full replay)'}"
            f" (cursor {self.snapshot_cursor})",
            f"log: {self.events_total} events in {self.segments_read} segment(s);"
            f" replayed {self.events_replayed}, skipped {self.events_skipped} duplicate(s)",
        ]
        if self.truncated_bytes:
            lines.append(f"torn tail truncated: {self.truncated_bytes} byte(s)")
        for entry in self.quarantined:
            lines.append(
                f"quarantined: {entry['segment']} @ {entry['offset']} ({entry['reason']})"
            )
        if self.segments_skipped:
            lines.append(f"segments not replayed: {', '.join(self.segments_skipped)}")
        if self.snapshots_quarantined:
            lines.append(f"snapshots quarantined: {', '.join(self.snapshots_quarantined)}")
        for divergence in self.divergences:
            lines.append(f"divergence: {divergence}")
        lines.append("recovery: clean" if self.clean else "recovery: degraded (see above)")
        return "\n".join(lines)


class DurabilityManager:
    """Write-ahead journal + snapshot cadence for one data directory."""

    __slots__ = (
        "directory",
        "log",
        "snapshots",
        "snapshot_every",
        "total",
        "since_snapshot",
        "closed",
        "_pending_advance",
    )

    def __init__(
        self,
        data_dir: str | Path,
        fsync: str = "batch",
        snapshot_every: int | None = 256,
        segment_records: int = 1024,
        keep_snapshots: int = 3,
        faults=None,
        resume: tuple[int, int] | None = None,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ValueError(f"unknown fsync policy {fsync!r}; expected one of {FSYNC_MODES}")
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be at least 1 (or None to disable)")
        faults = faults if faults is not None else NO_FAULTS
        self.directory = Path(data_dir)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log = EventLog(
            self.directory, fsync=fsync, segment_records=segment_records, faults=faults
        )
        self.snapshots = SnapshotStore(
            self.directory, fsync=fsync, keep=keep_snapshots, faults=faults
        )
        if resume is None:
            if self.log.existing_segments or self.snapshots.existing():
                raise ValueError(
                    f"data dir {self.directory} already holds durable state; "
                    "open it with ELearningSystem.recover(...) instead"
                )
            self.total = 0
            self.since_snapshot = 0
        else:
            self.total, cursor = resume
            self.since_snapshot = max(0, self.total - cursor)
        self.snapshot_every = snapshot_every
        self.closed = False
        self._pending_advance = 0.0

    # ------------------------------------------------------- journal hooks
    # (the duck-typed ``ChatServer.journal`` protocol)

    def room_created(self, name: str, topic: str, now: float) -> None:
        self._append({"type": "room", "name": name, "topic": topic, "ts": now})

    def user_joined(self, room: str, user: str, role: str, now: float) -> None:
        self._append({"type": "join", "room": room, "user": user, "role": role, "ts": now})

    def user_left(self, room: str, user: str, now: float) -> None:
        self._append({"type": "leave", "room": room, "user": user, "ts": now})

    def message_posted(self, message) -> None:
        from repro.chatroom.messages import MessageKind

        if message.kind is MessageKind.AGENT:
            return  # replay regenerates agent replies deterministically
        advance, self._pending_advance = self._pending_advance, 0.0
        self._append(
            {
                "type": "post",
                "seq": message.seq,
                "room": message.room,
                "sender": message.sender,
                "kind": message.kind.value,
                "text": message.text,
                "ts": message.timestamp,
                "reply_to": message.reply_to,
                "advance": advance,
            }
        )

    def drained(self, now: float) -> None:
        self._append({"type": "drain", "ts": now})

    # ----------------------------------------------------------- snapshots

    def note_advance(self, seconds: float) -> None:
        """Fold the upcoming post-``say`` clock advance into the next
        ``post`` event (one user input = one atomic log record)."""
        self._pending_advance = float(seconds)

    def maybe_snapshot(self, system) -> Path | None:
        """Snapshot when the cadence is due *and* the system is quiescent.

        The quiescence guard matters: snapshotting while supervision is
        still queued would capture transcripts ahead of store state, and
        replay would then re-run supervision the snapshot half-saw.
        """
        if (
            self.closed
            or self.snapshot_every is None
            or self.since_snapshot < self.snapshot_every
            or system.pending_supervision
        ):
            return None
        return self.snapshot(system)

    def snapshot(self, system) -> Path | None:
        """Sync the log, then write one snapshot at the current cursor."""
        if self.closed:
            return None
        self.log.sync()
        path = self.snapshots.write(build_snapshot(system, self.total), self.total)
        self.since_snapshot = 0
        return path

    def close(self) -> None:
        """Sync and close the log.  Idempotent; journalling stops."""
        if self.closed:
            return
        self.closed = True
        self.log.close()

    # ------------------------------------------------------------ internals

    def _append(self, event: dict) -> None:
        if self.closed:
            return
        self.log.append(event)
        self.total += 1
        self.since_snapshot += 1


def replay_events(system, events: list[dict], start: int, report: RecoveryReport) -> None:
    """Re-apply the log tail through the real server.

    Each event seeks the clock to its logged timestamp and goes through
    the ordinary ``ChatServer`` entry points, so supervision re-runs and
    regenerates agent replies exactly as the original process did.
    Events the restored state already covers (sequence guard for posts,
    existence checks for rooms/membership) count as idempotent skips;
    anything that cannot be applied is recorded as a divergence rather
    than aborting recovery — the operator sees it in the report.
    """
    from repro.chatroom.messages import MessageKind, Role
    from repro.chatroom.room import ChatRoomError

    server = system.server
    for position in range(start, len(events)):
        event = events[position]
        kind = event.get("type")
        try:
            if kind == "post":
                if event["seq"] < server.total_messages():
                    report.events_skipped += 1
                    continue
                system.clock.seek(event["ts"])
                message = server.post(
                    event["room"],
                    event["sender"],
                    event["text"],
                    kind=MessageKind(event["kind"]),
                    reply_to=event.get("reply_to"),
                )
                if message.seq != event["seq"]:
                    report.divergences.append(
                        f"event {position}: replayed seq {message.seq}, logged {event['seq']}"
                    )
                advance = event.get("advance") or 0.0
                if advance:
                    system.clock.advance(advance)
            elif kind == "room":
                if event["name"] in server.rooms:
                    report.events_skipped += 1
                    continue
                system.clock.seek(event["ts"])
                server.create_room(event["name"], event.get("topic", ""))
            elif kind == "join":
                if server.get_room(event["room"]).is_member(event["user"]):
                    report.events_skipped += 1
                    continue
                system.clock.seek(event["ts"])
                server.join(event["room"], event["user"], Role(event["role"]))
            elif kind == "leave":
                if not server.get_room(event["room"]).is_member(event["user"]):
                    report.events_skipped += 1
                    continue
                system.clock.seek(event["ts"])
                server.leave(event["room"], event["user"])
            elif kind == "drain":
                system.clock.seek(event["ts"])
                server.drain_supervision()
            else:
                report.divergences.append(f"event {position}: unknown type {kind!r}")
                continue
            report.events_replayed += 1
        except (ChatRoomError, ValueError) as exc:
            report.divergences.append(f"event {position} ({kind}): {exc}")
