"""Crash-point fault injection for the durability layer.

Every boundary where a crash could leave the data directory in a
distinct on-disk state — before a log append, between the two halves of
a frame write (the torn-tail case), after flush, after fsync, around
every snapshot step — calls :meth:`FaultClock.step` with a label.  A
test arms the clock with ``crash_at=k`` and the k-th boundary kills the
process-under-test:

* ``mode="raise"`` raises :class:`SimulatedCrash` — a ``BaseException``
  so no ``except Exception`` handler on the write path can quietly
  absorb the "process death" and keep mutating state that recovery
  will never see.
* ``mode="exit"`` calls ``os._exit`` — a real, no-cleanup process death
  for subprocess-driven tests (no atexit hooks, no buffered flushes).

An *unarmed* clock (``crash_at=None``) counts boundaries without ever
firing: the harness first runs the workload once to learn how many
boundaries exist, then crash-loops over ``crash_at = 1..N``.  Both runs
traverse identical code paths — an active clock makes the log split
every frame write in two (write half, flush, step, write rest) so the
torn-tail boundary produces a *genuine* torn frame on disk, and the
unarmed counting run splits identically to keep the numbering aligned.

Production passes no clock at all and gets :data:`NO_FAULTS`, whose
``active`` flag is false: no splitting, no counting, no overhead beyond
one attribute check per boundary.
"""

from __future__ import annotations

import os

FAULT_MODES = ("raise", "exit")


class SimulatedCrash(BaseException):
    """Injected process death at a durability boundary.

    Deliberately a ``BaseException`` (like ``KeyboardInterrupt``): a
    crash is not an error the write path may handle and continue from.
    """


class FaultClock:
    """Counts durability boundaries; optionally kills the k-th one."""

    __slots__ = ("crash_at", "mode", "exit_code", "count", "fired", "_dead")

    #: Active clocks make the WAL/snapshot writers split writes so the
    #: torn-frame boundary is a real on-disk state (see module docstring).
    active = True

    def __init__(
        self,
        crash_at: int | None = None,
        mode: str = "raise",
        exit_code: int = 23,
    ) -> None:
        if mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {mode!r}; expected one of {FAULT_MODES}")
        if crash_at is not None and crash_at < 1:
            raise ValueError("crash_at counts boundaries from 1")
        self.crash_at = crash_at
        self.mode = mode
        self.exit_code = exit_code
        self.count = 0
        self.fired: list[str] = []
        self._dead = False

    def step(self, label: str) -> None:
        """Record one boundary crossing; crash if it is the armed one."""
        if self._dead:
            return
        self.count += 1
        self.fired.append(label)
        if self.crash_at is not None and self.count == self.crash_at:
            self._dead = True
            if self.mode == "exit":
                os._exit(self.exit_code)
            raise SimulatedCrash(f"{label} (boundary {self.count})")


class _NoFaults:
    """Null clock wired in production: boundaries cost one attr check."""

    __slots__ = ()
    active = False

    def step(self, label: str) -> None:
        return None


#: Shared null instance — the default `faults` everywhere.
NO_FAULTS = _NoFaults()
