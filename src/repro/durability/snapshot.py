"""Full-state snapshots: build, write atomically, restore in place.

A snapshot is one CRC-framed JSON document (the same envelope as a WAL
record, so the same scanner proves it intact) holding everything a
fresh :class:`~repro.core.system.ELearningSystem` needs to resume:

* ``wal_count`` — the replay cursor: how many WAL events the snapshot
  already covers.  Recovery replays only ``events[wal_count:]``.
* the delivery sequence, the simulated clock,
* every room (topic, participants, full transcript),
* the learner corpus as its **columnar document** (arrays +
  vocabularies; restoring rebuilds the posting index from interned ids
  with zero re-tokenisation — see ``docs/corpus.md``),
* the user profiles and the FAQ pairs (their ``to_dict`` rows),
* the merged supervision counters.

Writes are crash-atomic: frame → temp file → flush → fsync → rename.
A snapshot either exists completely and checksums clean, or it is
ignored; ``load_latest`` walks newest-first, quarantines any damaged
snapshot file (renamed ``*.corrupt``) and falls back to the previous
one — worst case the empty state plus a full log replay.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from .faults import NO_FAULTS
from .wal import encode_frame, scan_segment

if TYPE_CHECKING:  # pragma: no cover - hints only
    from .manager import RecoveryReport

SNAPSHOT_FORMAT = "repro-snapshot/1"
SNAPSHOT_GLOB = "snapshot-*.json"
CORRUPT_SUFFIX = ".corrupt"


def build_snapshot(system, wal_count: int) -> dict:
    """Serialise a system's full mutable state as of ``wal_count``."""
    from repro.chatroom.transcript_io import message_to_dict

    server = system.server
    rooms = []
    for room in server.rooms.values():
        rooms.append(
            {
                "name": room.name,
                "topic": room.topic,
                "participants": [
                    {
                        "name": participant.name,
                        "role": participant.role.value,
                        "joined_at": participant.joined_at,
                        "messages_sent": participant.messages_sent,
                    }
                    for participant in room.participants.values()
                ],
                "transcript": [message_to_dict(m) for m in room.transcript],
            }
        )
    resilience = getattr(system, "resilience", None)
    return {
        "format": SNAPSHOT_FORMAT,
        "wal_count": wal_count,
        "next_seq": server.total_messages(),
        "clock": system.clock.now(),
        "rooms": rooms,
        "corpus": system.corpus.to_columnar(),
        "profiles": [profile.to_dict() for profile in system.profiles.all()],
        "faq": [pair.to_dict() for pair in system.faq.pairs()],
        "stats": dataclasses.asdict(system.pipeline.combined_stats()),
        # Dead-lettered items ride in snapshots like any store; deferred
        # rows cover the degraded-mode case where close() snapshots
        # while a breaker still holds analyses parked (zero loss).
        "quarantine": resilience.quarantine.snapshot() if resilience is not None else [],
        "deferred": resilience.deferred_rows() if resilience is not None else [],
    }


def restore_snapshot(system, data: dict) -> None:
    """Load a snapshot document into a freshly constructed system."""
    from repro.chatroom.messages import Participant, Role
    from repro.chatroom.supervisor import SupervisionStats
    from repro.chatroom.transcript_io import message_from_dict

    if data.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"not a {SNAPSHOT_FORMAT} document")
    server = system.server
    server._next_seq = data["next_seq"]
    system.clock.seek(data["clock"])
    for room_data in data["rooms"]:
        room = server.create_room(room_data["name"], room_data.get("topic", ""))
        for entry in room_data["participants"]:
            room.participants[entry["name"]] = Participant(
                name=entry["name"],
                role=Role(entry["role"]),
                joined_at=entry["joined_at"],
                messages_sent=entry["messages_sent"],
            )
        room.transcript = [message_from_dict(m) for m in room_data["transcript"]]
    system.corpus.restore_columnar(data["corpus"])
    system.profiles.restore(data["profiles"])
    system.faq.restore(data["faq"])
    system.pipeline.stats = SupervisionStats(**data["stats"])
    resilience = getattr(system, "resilience", None)
    if resilience is not None:
        resilience.quarantine.restore(data.get("quarantine", []))
        deferred = data.get("deferred", [])
        if deferred:
            from repro.resilience.quarantine import QuarantinedItem, rebuild_item

            # Deferred analyses re-enter the queues (rooms above are
            # already restored); the next drain supervises them —
            # breakers start closed in a recovered system.
            system.runtime.requeue_items(
                [
                    rebuild_item(system.server, QuarantinedItem.from_dict(row))
                    for row in deferred
                ]
            )


class SnapshotStore:
    """Atomic snapshot files of one data directory, named by cursor."""

    __slots__ = ("directory", "fsync", "keep", "_faults")

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "batch",
        keep: int = 3,
        faults=NO_FAULTS,
    ) -> None:
        if keep < 1:
            raise ValueError("must keep at least one snapshot")
        self.directory = Path(directory)
        self.fsync = fsync
        self.keep = keep
        self._faults = faults if faults is not None else NO_FAULTS

    def existing(self) -> list[Path]:
        """Snapshot files, oldest first (cursor order = lexicographic)."""
        return sorted(self.directory.glob(SNAPSHOT_GLOB))

    def write(self, data: dict, cursor: int) -> Path:
        """Write one snapshot crash-atomically; prune old ones.

        Fault points: ``snapshot.begin``, ``snapshot.torn`` (half the
        temp file flushed), ``snapshot.written`` (temp durable, not yet
        renamed), ``snapshot.committed``, ``snapshot.pruned``.
        """
        faults = self._faults
        faults.step("snapshot.begin")
        payload = json.dumps(data, ensure_ascii=False, separators=(",", ":")).encode("utf-8")
        frame = encode_frame(payload)
        final = self.directory / f"snapshot-{cursor:012d}.json"
        temp = final.with_name(final.name + ".tmp")
        with temp.open("wb") as handle:
            if faults.active:
                half = max(1, len(frame) // 2)
                handle.write(frame[:half])
                handle.flush()
                faults.step("snapshot.torn")
                handle.write(frame[half:])
            else:
                handle.write(frame)
            handle.flush()
            if self.fsync != "never":
                os.fsync(handle.fileno())
        faults.step("snapshot.written")
        os.replace(temp, final)
        faults.step("snapshot.committed")
        for stale in self.existing()[: -self.keep]:
            stale.unlink()
        faults.step("snapshot.pruned")
        return final

    def load_latest(self, report: "RecoveryReport") -> dict | None:
        """The newest intact snapshot document, or None.

        Damaged candidates (torn temp files never become visible, but a
        bit-flipped or truncated committed file can) are renamed to
        ``*.corrupt`` and the walk falls back to the next-oldest.
        """
        for path in reversed(self.existing()):
            frames, _end, problem = scan_segment(path.read_bytes())
            document = None
            if problem is None and len(frames) == 1:
                try:
                    candidate = json.loads(frames[0][1].decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    candidate = None
                if isinstance(candidate, dict) and candidate.get("format") == SNAPSHOT_FORMAT:
                    document = candidate
            if document is not None:
                report.snapshot_path = path.name
                report.snapshot_cursor = int(document.get("wal_count", 0))
                return document
            report.snapshots_quarantined.append(path.name)
            path.rename(path.with_name(path.name + CORRUPT_SUFFIX))
        return None
