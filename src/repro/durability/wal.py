"""The write-ahead event log: CRC-framed JSONL in rolling segments.

Frame format (one journalled event)::

    llllllll cccccccc {"type":"post",...}\n
    ^8-hex   ^8-hex   ^payload (UTF-8 JSON) ^terminator
    payload  CRC-32 of
    length   payload bytes

The 18-byte header is fixed-width ASCII hex so segments stay greppable
and editor-openable (each record is still one JSON line), while the
length prefix + checksum let the reader prove exactly how much of a
crashed tail is trustworthy:

* **Torn tail** — the file ends mid-frame (short header, short payload,
  missing terminator).  That is the expected artifact of dying inside a
  ``write()``: every byte before the torn frame is valid, so recovery
  truncates the tail and replays the rest.
* **Corruption** — a *complete* frame whose header is malformed, whose
  CRC does not match, or whose payload is not JSON.  That is not a
  crash artifact (crashes tear the tail; they do not rewrite the
  middle), so recovery quarantines the suspect bytes to a side file and
  refuses to replay anything at or after them — a prefix of the input
  history is recovered, never a gap-filled guess.

Segments roll at ``segment_records`` frames (``wal-00000001.log``,
``wal-00000002.log``, ...).  A reopened log never appends to an old
segment: each process lifetime writes fresh segments, so a torn tail
can only ever be at the end of the newest file written by the crashed
process.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

from .faults import NO_FAULTS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from .manager import RecoveryReport

#: ``"%08x %08x "`` — payload length, space, payload CRC-32, space.
HEADER_LENGTH = 18

SEGMENT_GLOB = "wal-*.log"
QUARANTINE_SUFFIX = ".quarantine"

#: fsync policies accepted by :class:`EventLog` (and ``SystemConfig.fsync``).
FSYNC_MODES = ("always", "batch", "never")


def encode_frame(payload: bytes) -> bytes:
    """Wrap payload bytes in the length/CRC envelope."""
    return b"%08x %08x " % (len(payload), zlib.crc32(payload)) + payload + b"\n"


def scan_segment(data: bytes) -> tuple[list[tuple[int, bytes]], int, tuple | None]:
    """Walk one segment's bytes frame by frame.

    Returns ``(frames, valid_end, problem)``: the ``(offset, payload)``
    of every frame proven intact, the byte offset up to which the
    segment is valid, and — if the walk stopped early — a
    ``(kind, offset, reason)`` triple where ``kind`` is ``"torn"``
    (incomplete final frame, safe to truncate) or ``"corrupt"`` (a
    complete but invalid frame, must be quarantined).
    """
    frames: list[tuple[int, bytes]] = []
    offset = 0
    size = len(data)
    while offset < size:
        if size - offset < HEADER_LENGTH:
            return frames, offset, ("torn", offset, "incomplete frame header")
        header = data[offset : offset + HEADER_LENGTH]
        try:
            length = int(header[0:8], 16)
            crc = int(header[9:17], 16)
            well_formed = header[8:9] == b" " and header[17:18] == b" "
        except ValueError:
            well_formed = False
        if not well_formed:
            return frames, offset, ("corrupt", offset, "malformed frame header")
        end = offset + HEADER_LENGTH + length + 1
        if end > size:
            return frames, offset, ("torn", offset, "incomplete frame payload")
        payload = data[offset + HEADER_LENGTH : end - 1]
        if data[end - 1 : end] != b"\n":
            return frames, offset, ("corrupt", offset, "missing frame terminator")
        if zlib.crc32(payload) != crc:
            return frames, offset, ("corrupt", offset, "crc mismatch")
        frames.append((offset, payload))
        offset = end
    return frames, offset, None


def segment_paths(directory: str | Path) -> list[Path]:
    """Existing segment files, oldest first."""
    return sorted(Path(directory).glob(SEGMENT_GLOB))


def read_log(
    directory: str | Path,
    report: "RecoveryReport | None" = None,
    repair: bool = False,
) -> list[dict]:
    """Decode every trustworthy event in log order.

    With ``repair=True`` (the recovery path) torn tails are truncated
    off the segment file and corrupt bytes are moved to a
    ``<segment>.quarantine`` side file, so a subsequent append-only
    writer starts from a clean log.  Without it the files are left
    untouched (inspection / tests).

    Replay stops at the first corruption: events decoded before it are
    returned, the suspect bytes and any later segments are reported,
    nothing after the damage is replayed (prefix semantics).
    """
    if report is None:
        from .manager import RecoveryReport

        report = RecoveryReport(data_dir=str(directory))
    events: list[dict] = []
    paths = segment_paths(directory)
    for position, path in enumerate(paths):
        data = path.read_bytes()
        frames, valid_end, problem = scan_segment(data)
        decoded: list[dict] = []
        for frame_offset, payload in frames:
            try:
                decoded.append(json.loads(payload.decode("utf-8")))
            except (UnicodeDecodeError, ValueError):
                # A CRC-valid frame that is not JSON was *written*
                # corrupt; same quarantine treatment as a bad CRC.
                problem = ("corrupt", frame_offset, "payload is not valid JSON")
                valid_end = frame_offset
                break
        events.extend(decoded)
        report.segments_read = position + 1
        final = position == len(paths) - 1
        if problem is None:
            continue
        kind, bad_offset, reason = problem
        if kind == "torn" and final:
            # Expected crash artifact: drop the torn tail, keep the rest.
            report.truncated_bytes += len(data) - bad_offset
            if repair:
                with path.open("r+b") as handle:
                    handle.truncate(bad_offset)
        else:
            # Mid-log damage (corrupt frame, or a torn segment that is
            # not the last — i.e. a hole): quarantine and stop replay.
            report.quarantined.append(
                {"segment": path.name, "offset": bad_offset, "reason": reason}
            )
            report.segments_skipped.extend(p.name for p in paths[position + 1 :])
            if repair:
                side = path.with_name(path.name + QUARANTINE_SUFFIX)
                side.write_bytes(data[bad_offset:])
                with path.open("r+b") as handle:
                    handle.truncate(bad_offset)
                # Segments after the damage hold events with a hole in
                # front of them; quarantine them whole so the on-disk
                # log is exactly the replayable prefix (a second
                # recovery must not replay across the gap).
                for later in paths[position + 1 :]:
                    later.rename(later.with_name(later.name + QUARANTINE_SUFFIX))
        break
    report.events_total = len(events)
    return events


class EventLog:
    """Append-only writer over the segment files of one data directory."""

    __slots__ = (
        "directory",
        "fsync",
        "segment_records",
        "_faults",
        "_handle",
        "_in_segment",
        "_next_segment",
    )

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "batch",
        segment_records: int = 1024,
        faults=NO_FAULTS,
    ) -> None:
        if fsync not in FSYNC_MODES:
            raise ValueError(f"unknown fsync policy {fsync!r}; expected one of {FSYNC_MODES}")
        if segment_records < 1:
            raise ValueError("segment_records must be at least 1")
        self.directory = Path(directory)
        self.fsync = fsync
        self.segment_records = segment_records
        self._faults = faults if faults is not None else NO_FAULTS
        self._handle = None
        self._in_segment = 0
        existing = segment_paths(self.directory)
        # Never append to a previous lifetime's segment: its tail may
        # have been repaired, and fresh segments keep torn frames
        # attributable to exactly one writer.
        self._next_segment = 1
        if existing:
            self._next_segment = int(existing[-1].stem.split("-")[1]) + 1

    @property
    def existing_segments(self) -> list[Path]:
        return segment_paths(self.directory)

    def append(self, event: dict) -> None:
        """Frame one event and append it to the current segment.

        Fault points: ``wal.append.begin`` (nothing written),
        ``wal.append.torn`` (half the frame flushed — a genuine torn
        tail), ``wal.append.flushed``, ``wal.append.synced`` (only with
        ``fsync="always"``), and ``wal.segment.rolled`` after a roll.
        """
        faults = self._faults
        faults.step("wal.append.begin")
        if self._handle is None:
            self._open_segment()
        handle = self._handle
        payload = json.dumps(event, ensure_ascii=False, separators=(",", ":")).encode("utf-8")
        frame = encode_frame(payload)
        if faults.active:
            # Split the write so the torn boundary is a real torn frame
            # on disk, not just a counter tick (see faults module docs).
            half = max(1, len(frame) // 2)
            handle.write(frame[:half])
            handle.flush()
            faults.step("wal.append.torn")
            handle.write(frame[half:])
        else:
            handle.write(frame)
        handle.flush()
        faults.step("wal.append.flushed")
        if self.fsync == "always":
            os.fsync(handle.fileno())
            faults.step("wal.append.synced")
        self._in_segment += 1
        if self._in_segment >= self.segment_records:
            self._roll()

    def sync(self) -> None:
        """Flush and (unless ``fsync="never"``) fsync the open segment."""
        if self._handle is None:
            return
        self._handle.flush()
        if self.fsync != "never":
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is None:
            return
        self.sync()
        self._handle.close()
        self._handle = None

    # ------------------------------------------------------------ internals

    def _open_segment(self) -> None:
        path = self.directory / f"wal-{self._next_segment:08d}.log"
        self._next_segment += 1
        self._handle = path.open("ab")
        self._in_segment = 0

    def _roll(self) -> None:
        self.close()
        self._faults.step("wal.segment.rolled")
