"""The User Profile Database (Figure 3).

Tracks each learner's activity so the QA system can analyse "the Corpus
and user profile to collect frequent questions" and instructors can see
who is falling behind the discussing courses (section 1's supervision
questions: do learners understand the context / the indicated issues?).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(slots=True)
class UserProfile:
    """One learner's running profile.

    Attributes:
        name: the learner's handle.
        role: "student", "teacher" or "agent".
        messages: total supervised utterances.
        syntax_errors / semantic_errors / questions: running tallies.
        mistake_counts: error-kind histogram.
        topic_counts: ontology-topic histogram (what they talk about).
        joined_at / last_active: simulated-clock timestamps.
    """

    name: str
    role: str = "student"
    messages: int = 0
    syntax_errors: int = 0
    semantic_errors: int = 0
    questions: int = 0
    mistake_counts: Counter = field(default_factory=Counter)
    topic_counts: Counter = field(default_factory=Counter)
    joined_at: float = 0.0
    last_active: float = 0.0

    @property
    def error_rate(self) -> float:
        """Errors per supervised message."""
        if self.messages == 0:
            return 0.0
        return (self.syntax_errors + self.semantic_errors) / self.messages

    def favourite_topics(self, limit: int = 3) -> list[str]:
        return [topic for topic, _count in self.topic_counts.most_common(limit)]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "role": self.role,
            "messages": self.messages,
            "syntax_errors": self.syntax_errors,
            "semantic_errors": self.semantic_errors,
            "questions": self.questions,
            "mistake_counts": dict(self.mistake_counts),
            "topic_counts": dict(self.topic_counts),
            "joined_at": self.joined_at,
            "last_active": self.last_active,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UserProfile":
        profile = cls(
            name=data["name"],
            role=data.get("role", "student"),
            messages=data.get("messages", 0),
            syntax_errors=data.get("syntax_errors", 0),
            semantic_errors=data.get("semantic_errors", 0),
            questions=data.get("questions", 0),
            joined_at=data.get("joined_at", 0.0),
            last_active=data.get("last_active", 0.0),
        )
        profile.mistake_counts.update(data.get("mistake_counts", {}))
        profile.topic_counts.update(data.get("topic_counts", {}))
        return profile


class UserProfileStore:
    """All user profiles, keyed by name."""

    def __init__(self) -> None:
        self._profiles: dict[str, UserProfile] = {}

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def get_or_create(self, name: str, role: str = "student", now: float = 0.0) -> UserProfile:
        profile = self._profiles.get(name)
        if profile is None:
            profile = UserProfile(name=name, role=role, joined_at=now, last_active=now)
            self._profiles[name] = profile
        return profile

    def get(self, name: str) -> UserProfile | None:
        return self._profiles.get(name)

    def all(self) -> list[UserProfile]:
        return [self._profiles[name] for name in sorted(self._profiles)]

    def record_activity(
        self,
        name: str,
        now: float,
        *,
        syntax_error: bool = False,
        semantic_error: bool = False,
        question: bool = False,
        mistake_kinds: tuple[str, ...] = (),
        topics: tuple[str, ...] = (),
    ) -> UserProfile:
        """Fold one supervised utterance into the user's profile."""
        profile = self.get_or_create(name, now=now)
        profile.messages += 1
        profile.last_active = now
        if syntax_error:
            profile.syntax_errors += 1
        if semantic_error:
            profile.semantic_errors += 1
        if question:
            profile.questions += 1
        profile.mistake_counts.update(mistake_kinds)
        profile.topic_counts.update(topics)
        return profile

    # --------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for profile in self.all():
                handle.write(json.dumps(profile.to_dict(), ensure_ascii=False) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "UserProfileStore":
        store = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    profile = UserProfile.from_dict(json.loads(line))
                    store._profiles[profile.name] = profile
        return store
