"""The User Profile Database (Figure 3).

Tracks each learner's activity so the QA system can analyse "the Corpus
and user profile to collect frequent questions" and instructors can see
who is falling behind the discussing courses (section 1's supervision
questions: do learners understand the context / the indicated issues?).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path


@dataclass(slots=True)
class UserProfile:
    """One learner's running profile.

    Attributes:
        name: the learner's handle.
        role: "student", "teacher" or "agent".
        messages: total supervised utterances.
        syntax_errors / semantic_errors / questions: running tallies.
        mistake_counts: error-kind histogram.
        topic_counts: ontology-topic histogram (what they talk about).
        joined_at / last_active: simulated-clock timestamps.
    """

    name: str
    role: str = "student"
    messages: int = 0
    syntax_errors: int = 0
    semantic_errors: int = 0
    questions: int = 0
    mistake_counts: Counter = field(default_factory=Counter)
    topic_counts: Counter = field(default_factory=Counter)
    joined_at: float = 0.0
    last_active: float = 0.0

    @property
    def error_rate(self) -> float:
        """Errors per supervised message."""
        if self.messages == 0:
            return 0.0
        return (self.syntax_errors + self.semantic_errors) / self.messages

    def favourite_topics(self, limit: int = 3) -> list[str]:
        return [topic for topic, _count in self.topic_counts.most_common(limit)]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "role": self.role,
            "messages": self.messages,
            "syntax_errors": self.syntax_errors,
            "semantic_errors": self.semantic_errors,
            "questions": self.questions,
            "mistake_counts": dict(self.mistake_counts),
            "topic_counts": dict(self.topic_counts),
            "joined_at": self.joined_at,
            "last_active": self.last_active,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "UserProfile":
        profile = cls(
            name=data["name"],
            role=data.get("role", "student"),
            messages=data.get("messages", 0),
            syntax_errors=data.get("syntax_errors", 0),
            semantic_errors=data.get("semantic_errors", 0),
            questions=data.get("questions", 0),
            joined_at=data.get("joined_at", 0.0),
            last_active=data.get("last_active", 0.0),
        )
        profile.mistake_counts.update(data.get("mistake_counts", {}))
        profile.topic_counts.update(data.get("topic_counts", {}))
        return profile


def _apply_activity(
    profile: UserProfile,
    now: float,
    *,
    syntax_error: bool,
    semantic_error: bool,
    question: bool,
    mistake_kinds: tuple[str, ...],
    topics: tuple[str, ...],
) -> None:
    """Bump one utterance's tallies on a profile (or a replica's delta —
    the single place the per-event field list lives; ``merge`` sums the
    same fields as whole deltas).  ``last_active`` is a max, not an
    assignment: a deferred or redriven utterance commits after newer
    traffic, and its (older) timestamp must not roll the profile back."""
    profile.messages += 1
    profile.last_active = max(profile.last_active, now)
    if syntax_error:
        profile.syntax_errors += 1
    if semantic_error:
        profile.semantic_errors += 1
    if question:
        profile.questions += 1
    profile.mistake_counts.update(mistake_kinds)
    profile.topic_counts.update(topics)


class UserProfileStore:
    """All user profiles, keyed by name."""

    def __init__(self) -> None:
        self._profiles: dict[str, UserProfile] = {}

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, name: str) -> bool:
        return name in self._profiles

    def get_or_create(self, name: str, role: str = "student", now: float = 0.0) -> UserProfile:
        profile = self._profiles.get(name)
        if profile is None:
            profile = UserProfile(name=name, role=role, joined_at=now, last_active=now)
            self._profiles[name] = profile
        return profile

    def get(self, name: str) -> UserProfile | None:
        return self._profiles.get(name)

    def all(self) -> list[UserProfile]:
        return [self._profiles[name] for name in sorted(self._profiles)]

    def record_activity(
        self,
        name: str,
        now: float,
        *,
        syntax_error: bool = False,
        semantic_error: bool = False,
        question: bool = False,
        mistake_kinds: tuple[str, ...] = (),
        topics: tuple[str, ...] = (),
    ) -> UserProfile:
        """Fold one supervised utterance into the user's profile."""
        profile = self.get_or_create(name, now=now)
        if now < profile.joined_at:
            # An out-of-order commit (quarantine redrive) can carry the
            # user's true first activity; joined_at folds as a min.
            profile.joined_at = now
        _apply_activity(
            profile,
            now,
            syntax_error=syntax_error,
            semantic_error=semantic_error,
            question=question,
            mistake_kinds=mistake_kinds,
            topics=topics,
        )
        return profile

    # -------------------------------------------------- partition and merge

    def fork(self) -> "ProfileReplica":
        """A shard replica: activity recorded on it stays local until
        :meth:`merge` folds it back in."""
        return ProfileReplica(self)

    def merge(self, replica: "ProfileReplica") -> int:
        """Fold one replica's per-user activity deltas into the store.

        Profile state is built from commutative pieces — tallies and
        histograms sum, ``last_active`` is a max, ``joined_at`` a min —
        so merging replicas in any order yields the same store, equal to
        one store that saw every activity itself.

        Returns the number of user deltas merged.
        """
        for name, delta in replica.pending.items():
            profile = self._profiles.get(name)
            if profile is None:
                self._profiles[name] = delta
                continue
            profile.messages += delta.messages
            profile.syntax_errors += delta.syntax_errors
            profile.semantic_errors += delta.semantic_errors
            profile.questions += delta.questions
            profile.mistake_counts.update(delta.mistake_counts)
            profile.topic_counts.update(delta.topic_counts)
            profile.joined_at = min(profile.joined_at, delta.joined_at)
            profile.last_active = max(profile.last_active, delta.last_active)
        return len(replica.pending)

    def snapshot(self) -> tuple[dict, ...]:
        """Canonical comparable value: every profile, ordered by name."""
        return tuple(profile.to_dict() for profile in self.all())

    def restore(self, profiles: list[dict]) -> None:
        """Replace the store's contents from ``to_dict`` rows (snapshot
        recovery) — in place, so consumers keep their reference."""
        self._profiles = {}
        for data in profiles:
            profile = UserProfile.from_dict(data)
            self._profiles[profile.name] = profile

    # --------------------------------------------------------- persistence

    def save(self, path: str | Path) -> None:
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for profile in self.all():
                handle.write(json.dumps(profile.to_dict(), ensure_ascii=False) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "UserProfileStore":
        store = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    profile = UserProfile.from_dict(json.loads(line))
                    store._profiles[profile.name] = profile
        return store


class ProfileReplica:
    """One worker's shard-local view of a :class:`UserProfileStore`.

    ``record_activity`` accumulates into private per-user *delta*
    profiles (created with ``joined_at`` = first local activity, exactly
    what a fresh profile would get); reads delegate to the base store's
    fork-point snapshot.  Single-owner, like every shard replica: one
    worker writes, the barrier merges.
    """

    __slots__ = ("_base", "base_len", "_pending")

    def __init__(self, base: UserProfileStore) -> None:
        self._base = base
        self.base_len = len(base)
        self._pending: dict[str, UserProfile] = {}

    @property
    def base(self) -> UserProfileStore:
        return self._base

    @property
    def pending(self) -> dict[str, UserProfile]:
        """Buffered per-user deltas, keyed by user name."""
        return self._pending

    def begin_origin(self, seq: int) -> None:
        """Profiles merge commutatively; the origin is irrelevant."""

    def rebase(self) -> None:
        self._pending = {}
        self.base_len = len(self._base)

    def __len__(self) -> int:
        return self.base_len + sum(
            1 for name in self._pending if name not in self._base
        )

    def __contains__(self, name: str) -> bool:
        return name in self._pending or name in self._base

    def record_activity(
        self,
        name: str,
        now: float,
        *,
        syntax_error: bool = False,
        semantic_error: bool = False,
        question: bool = False,
        mistake_kinds: tuple[str, ...] = (),
        topics: tuple[str, ...] = (),
    ) -> UserProfile:
        """Fold one supervised utterance into the user's *local* delta."""
        delta = self._pending.get(name)
        if delta is None:
            delta = UserProfile(name=name, joined_at=now, last_active=now)
            self._pending[name] = delta
        _apply_activity(
            delta,
            now,
            syntax_error=syntax_error,
            semantic_error=semantic_error,
            question=question,
            mistake_kinds=mistake_kinds,
            topics=topics,
        )
        return delta

    def __getattr__(self, name: str):
        # Reads (get, all, ...) see the fork-point snapshot.  The
        # explicit lookup keeps unpickling (which probes special methods
        # before _base is restored) from recursing through delegation.
        try:
            base = object.__getattribute__(self, "_base")
        except AttributeError:
            raise AttributeError(name) from None
        return getattr(base, name)

    def __getstate__(self) -> dict:
        """Explicit pickle surface: the slots, nothing implicit."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
