"""User Profile Database (Figure 3)."""

from .store import UserProfile, UserProfileStore

__all__ = ["UserProfile", "UserProfileStore"]
