"""The e-learning chat system facade (Figure 3, assembled).

``ELearningSystem`` wires every subsystem the paper's architecture diagram
shows: the augmentative chat room with its supervision flow
(Learning_Angel → Semantic Agent → QA), the Distance Learning Ontology,
the Learner Corpus, the User Profile database and the FAQ database.  This
is the public entry point a downstream user starts from::

    from repro import ELearningSystem

    system = ELearningSystem.with_defaults()
    room = system.open_room("ds-101", topic="stacks")
    system.join("ds-101", "alice")
    system.say("ds-101", "alice", "What is Stack?")
    print(room.transcript[-1].text)   # the QA system's answer
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.agents.learning_angel import LearningAngelAgent
from repro.agents.recommender import Recommendation, TeachingMaterialRecommender
from repro.agents.semantic_agent import SemanticAgent
from repro.chatroom.clock import SimulatedClock
from repro.chatroom.events import EventBus
from repro.chatroom.messages import ChatMessage, Role
from repro.chatroom.room import ChatRoom
from repro.chatroom.runtime import DrainBudget, SupervisionRuntime
from repro.chatroom.server import ChatServer
from repro.chatroom.supervisor import SupervisionPipeline, SupervisionPolicy, SupervisionStats
from repro.corpus.generator import CorporaGenerator
from repro.corpus.index import IndexConfig
from repro.corpus.statistics import CorpusReport, StatisticAnalyzer
from repro.corpus.store import LearnerCorpus
from repro.linkgrammar.dictionary import Dictionary
from repro.linkgrammar.lexicon import default_dictionary
from repro.linkgrammar.parser import ParseOptions
from repro.nlp.keywords import KeywordFilter
from repro.ontology.model import Ontology
from repro.ontology.domains import default_ontology
from repro.profiles.store import UserProfileStore
from repro.qa.engine import QASystem
from repro.qa.faq import FAQDatabase
from repro.qa.mining import QAMiner
from repro.resilience.controller import ResilienceController
from repro.resilience.health import HealthReport, build_health
from repro.resilience.quarantine import rebuild_item


@dataclass(slots=True)
class SystemConfig:
    """Construction knobs for :class:`ELearningSystem`.

    Attributes:
        seed_corpus: pre-populate the learner corpus from the ontology
            (the Corpora Generator step of Figure 3).
        policy: supervision reply policy.
        parse_options: link-grammar parser options.
        related_threshold: semantic distance threshold (section 4.3).
        clock_tick: seconds the clock advances per posted message.
        runtime_mode: how supervision is scheduled — ``inline``,
            ``queued`` (default; drain-after-post, byte-identical to
            inline), ``sharded`` (rooms sharded across workers, agent
            work drained in deduplicated batches off the posting path)
            or ``parallel``/``process`` (sharded with shard-local store
            replicas, drained on a thread pool or on per-shard child
            processes and merged at barriers — see docs/runtime.md).
        shards: worker/shard count for the ``sharded``/``parallel``
            modes.
        supervision_batch: items per worker per drain pass.
        auto_drain: drain after every post; None picks the mode default
            (True for inline/queued, False for sharded/parallel).
        max_pending: per-shard supervision queue bound; an overloaded
            shard sheds its oldest pending item (None = unbounded).
        drain_budget: a :class:`repro.chatroom.DrainBudget` that
            auto-fires :meth:`ELearningSystem.drain` from ``say()`` in
            the deferred-drain modes once the pending backlog or the
            virtual time since the last drain crosses its thresholds;
            None (default) leaves draining to the caller.
        corpus_index: learner-corpus index knobs (postings stopword-DF
            tiering — see docs/corpus.md); None uses the defaults.
        corpus_segment_records: freeze cadence for the corpus disk
            segment tier — once the in-RAM tail holds this many records
            a drain barrier seals them into an immutable mmap-backed
            segment file (see docs/corpus.md, "The segment tier").
            None (default) keeps the whole corpus in RAM.
        corpus_segment_dir: directory for the frozen segment files;
            None places them under ``data_dir/segments`` for durable
            systems and in an owned temporary directory otherwise.
        data_dir: durable-state directory (write-ahead event log +
            snapshots — see docs/durability.md); None (default) runs
            fully in-memory.  The directory must be empty or new; open
            an existing one with :meth:`ELearningSystem.recover`.
        fsync: when log/snapshot writes reach the disk — ``always``
            (fsync every appended event), ``batch`` (default; fsync at
            segment rolls, snapshots and close) or ``never`` (leave it
            to the OS page cache).
        snapshot_every: journalled events between periodic snapshots
            (None disables periodic snapshots; ``close()`` still writes
            a final one).
        fault_clock: a :class:`repro.durability.faults.FaultClock` for
            crash-point testing; None (production) runs fault-free.
        retry: a :class:`repro.resilience.RetryPolicy` for the pipeline
            stage guards; None uses the defaults (3 attempts, seeded
            virtual backoff).
        breaker: a :class:`repro.resilience.BreakerPolicy` shared by the
            per-stage circuit breakers; None uses the defaults.
        runtime_faults: a :class:`repro.resilience.RuntimeFaultPlan`
            injecting seeded exceptions/latency into the analysis stages
            (chaos testing); None (production) runs fault-free.
    """

    seed_corpus: bool = True
    policy: SupervisionPolicy = field(default_factory=SupervisionPolicy)
    parse_options: ParseOptions = field(default_factory=ParseOptions)
    related_threshold: float = 2.0
    clock_tick: float = 1.0
    runtime_mode: str = "queued"
    shards: int = 1
    supervision_batch: int = 64
    auto_drain: bool | None = None
    max_pending: int | None = None
    drain_budget: DrainBudget | None = None
    corpus_index: IndexConfig | None = None
    corpus_segment_records: int | None = None
    corpus_segment_dir: str | None = None
    data_dir: str | None = None
    fsync: str = "batch"
    snapshot_every: int | None = 256
    fault_clock: object | None = None
    retry: object | None = None
    breaker: object | None = None
    runtime_faults: object | None = None


class ELearningSystem:
    """Everything in Figure 3, wired together and ready to chat."""

    def __init__(
        self,
        dictionary: Dictionary,
        ontology: Ontology,
        config: SystemConfig | None = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.dictionary = dictionary
        self.ontology = ontology

        # Databases (right-hand side of Fig. 3).  With a segment cadence
        # configured the corpus grows a disk tier: drain barriers freeze
        # the immutable prefix into mmap-backed segment files and only
        # the tail stays resident (docs/corpus.md, lazy import so
        # RAM-only systems never touch the segment machinery).
        if self.config.corpus_segment_records is not None:
            from repro.corpus.segments import SegmentedCorpus

            segment_dir = self.config.corpus_segment_dir
            if segment_dir is None and self.config.data_dir is not None:
                segment_dir = str(Path(self.config.data_dir) / "segments")
            self.corpus = SegmentedCorpus(
                self.config.corpus_index,
                segment_records=self.config.corpus_segment_records,
                directory=segment_dir,
                faults=self.config.fault_clock,
                auto_freeze=False,  # freeze only at drain barriers
            )
        else:
            self.corpus = LearnerCorpus(self.config.corpus_index)
        self.profiles = UserProfileStore()
        self.faq = FAQDatabase()
        if self.config.seed_corpus:
            CorporaGenerator(ontology).populate(self.corpus)

        # Shared NLP stages.
        self.keyword_filter = KeywordFilter(ontology)

        # Agents and QA (left-hand side of Fig. 3).
        self.learning_angel = LearningAngelAgent(
            dictionary,
            corpus=self.corpus,
            keyword_filter=self.keyword_filter,
            options=self.config.parse_options,
        )
        self.semantic_agent = SemanticAgent(
            ontology,
            keyword_filter=self.keyword_filter,
            related_threshold=self.config.related_threshold,
        )
        self.qa = QASystem(
            ontology,
            faq=self.faq,
            corpus=self.corpus,
            keyword_filter=self.keyword_filter,
        )
        self.miner = QAMiner(self.keyword_filter)
        self.recommender = TeachingMaterialRecommender(ontology)

        # Chat substrate.
        self.clock = SimulatedClock(tick=self.config.clock_tick)
        # Drain-budget bookkeeping (docs/runtime.md): virtual timestamp
        # of the last drain, so say() can fire the periodic auto-drain.
        self._last_budget_drain = self.clock.now()
        self._closed = False
        self.bus = EventBus()
        # Fault tolerance (docs/resilience.md): one controller shared by
        # the runtime (admission, quarantine) and every pipeline
        # clone/fork (stage guards).
        self.resilience = ResilienceController(
            retry=self.config.retry,
            breaker=self.config.breaker,
            faults=self.config.runtime_faults,
        )
        self.runtime = SupervisionRuntime(
            mode=self.config.runtime_mode,
            shards=self.config.shards,
            batch_size=self.config.supervision_batch,
            auto_drain=self.config.auto_drain,
            max_pending=self.config.max_pending,
            resilience=self.resilience,
        )
        # Durable state (docs/durability.md): lazy import so in-memory
        # systems never pay for the durability package.
        self.durability = None
        if self.config.data_dir is not None:
            from repro.durability.manager import DurabilityManager

            self.durability = DurabilityManager(
                self.config.data_dir,
                fsync=self.config.fsync,
                snapshot_every=self.config.snapshot_every,
                faults=self.config.fault_clock,
            )
        self.resilience.journal = self.durability
        self._wire_corpus_journal(self.durability)
        self.server = ChatServer(self.clock, self.bus, self.runtime, journal=self.durability)
        self.pipeline = SupervisionPipeline(
            self.learning_angel,
            self.semantic_agent,
            self.qa,
            self.profiles,
            self.config.policy,
        )
        # Must be set before add_supervisor: clones/forks inherit it.
        self.pipeline.resilience = self.resilience
        self.server.add_supervisor(self.pipeline)

    def _wire_corpus_journal(self, durability) -> None:
        """Point a segmented corpus's freeze/compact hooks at the WAL so
        every tier boundary is journalled (no-op for plain corpora or
        in-memory systems)."""
        if durability is not None and hasattr(self.corpus, "freeze_to"):
            self.corpus.on_freeze = durability.corpus_frozen
            self.corpus.on_compact = durability.corpus_compacted

    # ----------------------------------------------------------- factories

    @classmethod
    def with_defaults(cls, config: SystemConfig | None = None) -> "ELearningSystem":
        """The full system over the built-in lexicon and ontology."""
        return cls(default_dictionary(), default_ontology(), config)

    @classmethod
    def recover(
        cls,
        data_dir: str,
        config: SystemConfig | None = None,
        dictionary: Dictionary | None = None,
        ontology: Ontology | None = None,
    ):
        """Resume a durable system from its data directory.

        Recovery = load the newest intact snapshot, then replay the log
        tail through the real server (re-running supervision, so agent
        replies regenerate deterministically).  Torn log tails are
        truncated, corrupt records quarantined to side files, damaged
        snapshots renamed ``*.corrupt`` — every repair is listed in the
        returned report.  Returns ``(system, RecoveryReport)``; the
        system keeps journalling into the same directory.
        """
        from repro.durability.manager import (
            DurabilityManager,
            RecoveryReport,
            replay_events,
        )
        from repro.corpus.segments import SegmentLoadError
        from repro.durability.snapshot import (
            CORRUPT_SUFFIX,
            SnapshotStore,
            restore_snapshot,
        )
        from repro.durability.wal import read_log

        config = config if config is not None else SystemConfig()
        if config.corpus_segment_records is not None and config.corpus_segment_dir is None:
            # The in-memory construction below clears data_dir, so the
            # segment directory must be pinned explicitly to where the
            # crashed system froze its files.
            config = replace(
                config, corpus_segment_dir=str(Path(data_dir) / "segments")
            )
        # Construct in-memory first: journalling must stay off while the
        # snapshot restores and the tail replays (replay is not input).
        system = cls(
            dictionary or default_dictionary(),
            ontology or default_ontology(),
            replace(config, data_dir=None),
        )
        report = RecoveryReport(data_dir=str(data_dir))
        store = SnapshotStore(data_dir, fsync=config.fsync)
        snapshot = store.load_latest(report)
        while snapshot is not None:
            # A snapshot can checksum clean yet reference a segment file
            # that is torn or missing (e.g. the directory was tampered
            # with) — treat it like any damaged snapshot: quarantine and
            # fall back to the next-oldest.
            try:
                system.corpus.validate_columnar(snapshot["corpus"])
                break
            except SegmentLoadError:
                damaged = Path(data_dir) / report.snapshot_path
                report.snapshots_quarantined.append(report.snapshot_path)
                damaged.rename(damaged.with_name(damaged.name + CORRUPT_SUFFIX))
                report.snapshot_path = None
                report.snapshot_cursor = 0
                snapshot = store.load_latest(report)
        if snapshot is not None:
            restore_snapshot(system, snapshot)
        events = read_log(data_dir, report, repair=True)
        replay_events(system, events, report.snapshot_cursor, report)
        system.drain()
        system.config = replace(config, data_dir=str(data_dir))
        manager = DurabilityManager(
            data_dir,
            fsync=config.fsync,
            snapshot_every=config.snapshot_every,
            faults=config.fault_clock,
            resume=(len(events), report.snapshot_cursor),
        )
        system.durability = manager
        system.server.journal = manager
        system.resilience.journal = manager
        system._wire_corpus_journal(manager)
        return system, report

    # ------------------------------------------------------------- actions

    def open_room(self, name: str, topic: str = "") -> ChatRoom:
        """Create a supervised chat room."""
        return self.server.create_room(name, topic)

    def join(self, room: str, user: str, role: Role = Role.STUDENT) -> bool:
        """Add (or re-role) a member; returns whether anything changed."""
        return self.server.join(room, user, role)

    def leave(self, room: str, user: str) -> bool:
        """Remove a member; returns whether the user was actually present."""
        return self.server.leave(room, user)

    def say(self, room: str, user: str, text: str) -> ChatMessage:
        """Post a user message.

        In the default runtime modes supervision has already run by the
        time this returns; under a deferred-drain runtime (``sharded``,
        ``parallel``, ``process``, or ``auto_drain=False``) call
        :meth:`drain` to flush the queued agent work — or set
        ``SystemConfig.drain_budget`` and the system drains itself here
        whenever the backlog or the virtual time since the last drain
        crosses the budget's thresholds.
        """
        durability = self.durability
        if durability is not None:
            # Fold the advance below into the logged post event so one
            # user input is exactly one atomic WAL record and replay
            # reproduces every timestamp.
            durability.note_advance(self.clock.tick)
        try:
            message = self.server.post(room, user, text)
        finally:
            if durability is not None:
                durability.note_advance(0.0)
        self.clock.advance()
        budget = self.config.drain_budget
        if (
            budget is not None
            and not self.runtime.auto_drain
            and budget.due(
                self.pending_supervision, self.clock.now() - self._last_budget_drain
            )
        ):
            # Periodic auto-drain: the deferred modes normally batch work
            # until the caller drains; the budget bounds how stale the
            # stores may grow without the caller thinking about it.
            self.drain()
        maybe_freeze = getattr(self.corpus, "maybe_freeze", None)
        if maybe_freeze is not None and not self.supervision_backlog:
            # Quiescent post (auto-drain runtimes): every delivered
            # message is fully supervised, so the tail prefix is
            # immutable and the freeze cadence may fire here too —
            # deferred-drain runtimes freeze at their drain barriers.
            maybe_freeze()
        if durability is not None:
            durability.maybe_snapshot(self)
        return message

    def drain(self) -> int:
        """Run all queued supervision work; returns items processed."""
        processed = self.server.drain_supervision()
        self._last_budget_drain = self.clock.now()
        # A drain is the corpus tier's freeze barrier: every shard
        # replica has just merged, so the tail prefix is immutable and
        # safe to seal into a disk segment (no-op for plain corpora).
        maybe_freeze = getattr(self.corpus, "maybe_freeze", None)
        if maybe_freeze is not None:
            maybe_freeze()
        if self.durability is not None:
            self.durability.maybe_snapshot(self)
        return processed

    def close(self) -> None:
        """Shut down cleanly: flush queued supervision, write a final
        snapshot (durable systems), release runtime resources.
        Idempotent."""
        if self._closed:
            return
        self._closed = True
        if self.supervision_backlog:
            # Never lose enqueued work to a clean shutdown: the
            # deferred-drain runtimes may still hold supervision items
            # whose corpus/profile/FAQ effects must land before the
            # worker pools (and any final snapshot) go away.  (Deferred
            # items count too — while a breaker is open the drain parks
            # them, and a durable final snapshot carries them as
            # deferred rows.)
            self.drain()
        durability = self.durability
        if durability is not None and not durability.closed:
            durability.snapshot(self)
            durability.close()
        self.runtime.close()

    def __enter__(self) -> "ELearningSystem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def pending_supervision(self) -> int:
        """Messages posted but not yet supervised (deferred-drain modes)."""
        return self.server.pending_supervision

    @property
    def supervision_backlog(self) -> int:
        """Analyses still owed: queued items plus the deferred ledger.

        The quiescence gate for snapshots and clean shutdown — zero
        means every delivered message has been fully supervised,
        quarantined or (durably) parked nowhere at all.
        """
        return self.pending_supervision + len(self.resilience.deferred)

    @property
    def quarantined(self) -> int:
        """Items currently dead-lettered in the quarantine store."""
        return len(self.resilience.quarantine)

    def health(self) -> HealthReport:
        """The component health registry (breakers, queues, quarantine,
        durability) plus the resilience counters — see
        docs/resilience.md and ``python -m repro health``."""
        return build_health(self)

    def redrive(self) -> int:
        """Re-run every quarantined item after the fault healed.

        Drains the quarantine store (journalling a ``requeue`` WAL event
        per row on durable systems), force-closes the breakers, rebuilds
        the original work items and re-queues them at the front of their
        shards, then drains.  Returns the number of items re-driven.
        Once the underlying fault is gone, the post-redrive state equals
        the fault-free run's (asserted by the chaos suite).
        """
        rows = self.resilience.take_redrive_rows()
        if not rows:
            return 0
        durability = self.durability
        if durability is not None:
            for row in rows:
                durability.item_requeued(row.seq)
        self.resilience.reset_breakers()
        items = [rebuild_item(self.server, row) for row in rows]
        self.runtime.requeue_items(items)
        self.drain()
        return len(rows)

    @property
    def supervision_shed(self) -> int:
        """Messages whose agent analysis was shed by queue backpressure
        (delivery always happens; only supervision is skipped)."""
        return self.runtime.shed

    def agent_replies_to(self, message: ChatMessage) -> list[ChatMessage]:
        """Agent messages posted in response to ``message``."""
        room = self.server.get_room(message.room)
        return [
            m
            for m in room.transcript
            if m.reply_to == message.seq and m.kind.value == "agent"
        ]

    # ------------------------------------------------------------- reports

    @property
    def stats(self) -> SupervisionStats:
        """Global supervision counters (merged across shard workers)."""
        return self.pipeline.combined_stats()

    def corpus_report(self) -> CorpusReport:
        """The Learning Statistic Analyzer's aggregate report."""
        return StatisticAnalyzer(self.corpus).report()

    def faq_top(self, limit: int = 10):
        """The most frequent QA pairs (the learner-facing FAQ)."""
        return self.faq.top(limit)

    def recommend_for(self, user: str) -> Recommendation | None:
        """Teaching-material recommendation for a struggling learner
        (Figure 3's "Teaching Material Recommendation" response)."""
        profile = self.profiles.get(user)
        if profile is None:
            return None
        return self.recommender.recommend(profile)
