"""Core facade: the assembled e-learning chat system of Figure 3."""

from .system import ELearningSystem, SystemConfig

__all__ = ["ELearningSystem", "SystemConfig"]
