"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``parse "sentence"``        — link-grammar parse with an ASCII diagram;
* ``check "sentence"``        — full supervision verdict (syntax + semantics);
* ``ask "question"``          — the QA subsystem's answer;
* ``repair "sentence"``       — suggested corrections;
* ``simulate [--rounds N]``   — run a seeded classroom and print reports;
* ``serve [--port N]``        — HTTP front door over the live system;
* ``recover DIR [--json]``    — recover a durable data directory, compact it;
* ``health DIR [--json]``     — recover and print the resilience health registry;
* ``bench [--quick]``         — run the perf harness, write BENCH_parse.json;
* ``export-scorm DIR``        — write the SCORM content package;
* ``ontology [--format x]``   — dump the knowledge body (xml or ddl).
"""

from __future__ import annotations

import argparse
import sys

from repro.agents import SemanticAgent
from repro.linkgrammar import Parser, SentenceRepairer
from repro.linkgrammar.diagram import render
from repro.linkgrammar.lexicon import default_dictionary
from repro.linkgrammar.robust import RobustAnalyzer
from repro.ontology import render_script, to_xml, translate
from repro.ontology.domains import default_ontology
from repro.qa import QASystem


def _cmd_parse(args: argparse.Namespace) -> int:
    parser = Parser(default_dictionary())
    result = parser.parse(args.text)
    print(f"linkages: {result.total_count}   nulls: {result.null_count}   "
          f"cost: {result.best.cost if result.best else '-'}")
    if result.unknown_words:
        print(f"unknown words: {', '.join(result.unknown_words)}")
    if result.best is not None and result.best.links:
        print(render(result.best, show_wall=args.wall))
    return 0 if result.null_count == 0 else 1


def _cmd_check(args: argparse.Namespace) -> int:
    analyzer = RobustAnalyzer(default_dictionary())
    diagnosis = analyzer.analyze(args.text)
    print(f"syntax : {'OK' if diagnosis.is_correct else 'PROBLEMS'}")
    for issue in diagnosis.issues:
        print(f"  [{issue.kind.value}] {issue.message}")
    if diagnosis.is_correct:
        agent = SemanticAgent(default_ontology())
        review = agent.review(args.text)
        print(f"semantic: {review.verdict.value}")
        for pair in review.pairs:
            status = "ok" if pair.holds else "PROBLEM"
            print(f"  {pair.left} ~ {pair.right}: distance={pair.distance} [{status}]")
        for suggestion in review.suggestions:
            print(f"  hint: {suggestion}")
        return 0 if not review.is_anomalous else 1
    return 1


def _cmd_ask(args: argparse.Namespace) -> int:
    qa = QASystem(default_ontology())
    answer = qa.answer(args.text)
    print(f"[{answer.kind.value} via {answer.source}]")
    print(answer.text if answer.answered else "(no answer found)")
    return 0 if answer.answered else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    repairer = SentenceRepairer(default_dictionary())
    repairs = repairer.repair(args.text)
    if not repairs:
        print("no repair needed (or none found)")
        return 0
    for repair in repairs:
        print(f"{repair.text}   <- {repair.edit}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.core.system import ELearningSystem, SystemConfig
    from repro.corpus import StatisticAnalyzer
    from repro.simulation import ClassroomSession

    workers = args.workers if args.workers is not None else args.shards
    config = SystemConfig(
        runtime_mode=args.runtime,
        shards=workers,
        max_pending=args.max_pending,
        data_dir=args.data_dir,
        fsync=args.fsync,
        snapshot_every=args.snapshot_every,
        corpus_segment_records=args.corpus_segment_records,
    )
    system = ELearningSystem.with_defaults(config)
    try:
        session = ClassroomSession(system, learners=args.learners, seed=args.seed)
        session.run(rounds=args.rounds)
        system.drain()  # flush queued agent work under deferred-drain runtimes
    finally:
        system.close()  # release the parallel worker pool
    stats = system.stats
    if args.runtime in ("sharded", "parallel", "process"):
        print(f"runtime={args.runtime} workers={workers} "
              f"worker_messages={system.runtime.worker_loads()}")
    if system.supervision_shed:
        print(f"shed={system.supervision_shed} (max_pending={args.max_pending})")
        for event in system.runtime.shed_events():
            print(f"  shed room={event.room} seq={event.seq} "
                  f"shard={event.shard} reason={event.reason}")
    if system.quarantined:
        for row in system.resilience.quarantine.rows():
            print(f"  quarantined room={row.room} seq={row.seq} "
                  f"stage={row.stage} error={row.error}")
    print(f"messages={stats.messages} sentences={stats.sentences} "
          f"syntax_errors={stats.syntax_errors} "
          f"semantic={stats.semantic_violations + stats.misconceptions} "
          f"questions={stats.questions_answered}/{stats.questions}")
    for kind, count in StatisticAnalyzer(system.corpus).most_common_mistakes(5):
        print(f"  mistake {kind}: {count}")
    for pair in system.faq_top(3):
        print(f"  faq [{pair.count}x] {pair.question}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.chatroom.runtime import DrainBudget
    from repro.core.system import ELearningSystem, SystemConfig
    from repro.serving import ChatGateway, ChatHTTPServer

    budget = None
    if args.drain_pending is not None or args.drain_interval is not None:
        budget = DrainBudget(
            max_pending_posts=args.drain_pending, max_interval=args.drain_interval
        )
    elif args.runtime not in ("inline", "queued"):
        # A deferred-drain runtime behind a network front door must
        # drain itself — nobody is calling drain() from a socket.
        budget = DrainBudget(max_pending_posts=32, max_interval=8.0)
    config = SystemConfig(
        runtime_mode=args.runtime,
        shards=args.shards,
        drain_budget=budget,
        data_dir=args.data_dir,
        fsync=args.fsync,
        snapshot_every=args.snapshot_every,
    )
    system = ELearningSystem.with_defaults(config)
    try:
        for name in args.room or []:
            system.open_room(name)
        gateway = ChatGateway(system)
        httpd = ChatHTTPServer(
            gateway, host=args.host, port=args.port, verbose=args.verbose
        )
        host, port = httpd.server_address[:2]
        print(f"serving on http://{host}:{port} (runtime={args.runtime}, "
              f"rooms={len(system.server.rooms)})")
        try:
            httpd.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            httpd.server_close()
    finally:
        system.close()  # flush queued supervision, final snapshot, pools
    return 0


def _recovered_state(system) -> dict:
    """The machine-readable state summary ``recover --json`` emits."""
    stats = system.stats
    return {
        "rooms": len(system.server.rooms),
        "messages": system.server.total_messages(),
        "corpus": len(system.corpus),
        "profiles": len(system.profiles),
        "faq": len(system.faq),
        "sentences": stats.sentences,
        "syntax_errors": stats.syntax_errors,
        "questions": stats.questions,
        "questions_answered": stats.questions_answered,
        "quarantined": system.quarantined,
    }


def _cmd_recover(args: argparse.Namespace) -> int:
    import json

    from repro.core.system import ELearningSystem, SystemConfig

    system, report = ELearningSystem.recover(
        args.data_dir,
        SystemConfig(
            fsync=args.fsync,
            snapshot_every=args.snapshot_every,
            corpus_segment_records=args.corpus_segment_records,
        ),
    )
    if args.json:
        print(json.dumps(
            {"report": report.to_dict(), "state": _recovered_state(system)},
            indent=2,
        ))
    else:
        print(report.summary())
        stats = system.stats
        print(f"recovered state: rooms={len(system.server.rooms)} "
              f"messages={system.server.total_messages()} "
              f"corpus={len(system.corpus)} profiles={len(system.profiles)} "
              f"faq={len(system.faq)}")
        print(f"supervision: sentences={stats.sentences} "
              f"syntax_errors={stats.syntax_errors} "
              f"questions={stats.questions_answered}/{stats.questions}")
    system.close()  # compacts: the fresh final snapshot covers the log
    return 0 if report.clean else 1


def _cmd_health(args: argparse.Namespace) -> int:
    import json

    from repro.core.system import ELearningSystem, SystemConfig

    system, report = ELearningSystem.recover(
        args.data_dir,
        SystemConfig(fsync=args.fsync, corpus_segment_records=args.corpus_segment_records),
    )
    health = system.health()
    if args.json:
        print(json.dumps(
            {"health": health.to_dict(), "recovery": report.to_dict()}, indent=2
        ))
    else:
        print(health.summary())
        print(f"recovery: {'clean' if report.clean else 'degraded'}")
    # Inspect-only: close the stores without compacting the directory.
    if system.durability is not None:
        system.durability.close()
    system.runtime.close()
    return 0 if health.status == "ok" and report.clean else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.evaluation.perfbench import run_from_args

    return run_from_args(args)


def _cmd_export_scorm(args: argparse.Namespace) -> int:
    from repro.standards import write_package

    package = write_package(default_ontology(), args.directory)
    files = len(list(package.iterdir()))
    print(f"wrote {files} files to {package}")
    return 0


def _cmd_ontology(args: argparse.Namespace) -> int:
    ontology = default_ontology()
    if args.format == "xml":
        print(to_xml(ontology))
    else:
        print(render_script(translate(ontology)), end="")
    return 0


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic chat-room supervision (ICDCSW'05 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    p = commands.add_parser("parse", help="link-grammar parse with diagram")
    p.add_argument("text")
    p.add_argument("--wall", action="store_true", help="show the virtual wall")
    p.set_defaults(func=_cmd_parse)

    p = commands.add_parser("check", help="syntax + semantic supervision verdict")
    p.add_argument("text")
    p.set_defaults(func=_cmd_check)

    p = commands.add_parser("ask", help="answer a question from the ontology")
    p.add_argument("text")
    p.set_defaults(func=_cmd_ask)

    p = commands.add_parser("repair", help="suggest corrections for a sentence")
    p.add_argument("text")
    p.set_defaults(func=_cmd_repair)

    p = commands.add_parser("simulate", help="run a seeded classroom session")
    p.add_argument("--rounds", type=int, default=5)
    p.add_argument("--learners", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--runtime",
        choices=["inline", "queued", "sharded", "parallel", "process"],
        default="queued",
        help="supervision scheduling mode (see docs/runtime.md)",
    )
    p.add_argument("--shards", type=int, default=4,
                   help="shard/worker count for the multi-worker "
                        "runtimes (sharded, parallel, process)")
    p.add_argument("--workers", type=int, default=None,
                   help="alias for --shards (the parallel/process "
                        "runtimes' natural spelling); wins when both "
                        "are given")
    p.add_argument("--max-pending", type=int, default=None,
                   help="per-shard supervision queue bound; overloaded "
                        "shards shed their oldest pending message")
    p.add_argument("--data-dir", default=None,
                   help="durable-state directory (write-ahead log + "
                        "snapshots; see docs/durability.md)")
    p.add_argument("--fsync", choices=["always", "batch", "never"],
                   default="batch",
                   help="when log/snapshot writes reach the disk")
    p.add_argument("--snapshot-every", type=int, default=256,
                   help="journalled events between periodic snapshots")
    p.add_argument("--corpus-segment-records", type=int, default=None,
                   help="corpus disk-tier freeze cadence: drain barriers "
                        "seal this many in-RAM records into mmap-backed "
                        "segment files (see docs/corpus.md)")
    p.set_defaults(func=_cmd_simulate)

    p = commands.add_parser(
        "serve",
        help="HTTP front door: POST messages, long-poll transcripts, SSE "
             "verdict stream (see docs/serving.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="listening port (0 binds an ephemeral port)")
    p.add_argument("--room", action="append", default=None, metavar="NAME",
                   help="pre-create a room at startup (repeatable); rooms "
                        "can also be created over HTTP (POST /rooms)")
    p.add_argument(
        "--runtime",
        choices=["inline", "queued", "sharded", "parallel", "process"],
        default="queued",
        help="supervision scheduling mode behind the front door",
    )
    p.add_argument("--shards", type=int, default=4,
                   help="shard/worker count for the multi-worker runtimes")
    p.add_argument("--drain-pending", type=int, default=None,
                   help="auto-drain once this many supervision items are "
                        "pending (deferred runtimes default to 32)")
    p.add_argument("--drain-interval", type=float, default=None,
                   help="auto-drain once this much virtual time passed "
                        "since the last drain (deferred default: 8.0)")
    p.add_argument("--data-dir", default=None,
                   help="durable-state directory (write-ahead log + "
                        "snapshots; see docs/durability.md)")
    p.add_argument("--fsync", choices=["always", "batch", "never"],
                   default="batch",
                   help="when log/snapshot writes reach the disk")
    p.add_argument("--snapshot-every", type=int, default=256,
                   help="journalled events between periodic snapshots")
    p.add_argument("--verbose", action="store_true",
                   help="log every request line to stderr")
    p.set_defaults(func=_cmd_serve)

    p = commands.add_parser(
        "recover", help="recover a durable data directory and compact it"
    )
    p.add_argument("data_dir", help="directory written by simulate --data-dir")
    p.add_argument("--fsync", choices=["always", "batch", "never"],
                   default="batch",
                   help="fsync policy for the compacting snapshot")
    p.add_argument("--snapshot-every", type=int, default=256,
                   help="snapshot cadence for the recovered system")
    p.add_argument("--corpus-segment-records", type=int, default=None,
                   help="corpus disk-tier freeze cadence; required to "
                        "recover a directory whose snapshots reference "
                        "frozen segments")
    p.add_argument("--json", action="store_true",
                   help="emit the report and state summary as JSON "
                        "(exit code unchanged: 0 iff recovery was clean)")
    p.set_defaults(func=_cmd_recover)

    p = commands.add_parser(
        "health",
        help="recover a data directory and print its resilience health "
             "registry (breakers, quarantine, queues, counters)",
    )
    p.add_argument("data_dir", help="directory written by simulate --data-dir")
    p.add_argument("--fsync", choices=["always", "batch", "never"],
                   default="batch", help="fsync policy while inspecting")
    p.add_argument("--corpus-segment-records", type=int, default=None,
                   help="corpus disk-tier freeze cadence (match the "
                        "directory's simulate run)")
    p.add_argument("--json", action="store_true",
                   help="emit the health registry and recovery report as JSON")
    p.set_defaults(func=_cmd_health)

    p = commands.add_parser("bench", help="run the perf harness deterministically")
    # Imported at parser-build time (not in _cmd_bench) so the flag
    # definitions live in exactly one place; perfbench's module level is
    # stdlib-only, so this costs nothing for the other subcommands.
    from repro.evaluation.perfbench import add_bench_arguments

    add_bench_arguments(p)
    p.set_defaults(func=_cmd_bench)

    p = commands.add_parser("export-scorm", help="write the SCORM content package")
    p.add_argument("directory")
    p.set_defaults(func=_cmd_export_scorm)

    p = commands.add_parser("ontology", help="dump the knowledge body")
    p.add_argument("--format", choices=["xml", "ddl"], default="xml")
    p.set_defaults(func=_cmd_ontology)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
