"""Evaluation harness: detection metrics, latency summaries, accuracy study."""

from .harness import AccuracyRow, run_accuracy_study, score_session
from .metrics import BinaryMetrics, LatencySummary, score_binary, summarize_latencies

__all__ = [
    "AccuracyRow",
    "BinaryMetrics",
    "LatencySummary",
    "run_accuracy_study",
    "score_binary",
    "score_session",
    "summarize_latencies",
]
