"""Deterministic performance harness for the supervision hot path.

``python -m repro bench`` (or ``make bench``) runs a fixed set of
workloads — cold parsing, cached parsing, the mixed-traffic supervision
loop, a seeded classroom session and suggestion search — and writes the
numbers to ``BENCH_parse.json`` so successive PRs can track the perf
trajectory of the parse engine.

The workloads are deterministic (fixed sentences, fixed seeds); only the
wall-clock readings vary by machine, so comparisons are meaningful within
one machine's report history.  Every metric is also exposed
programmatically via :func:`run_report` for tests and tooling.

None of this runs in the default pytest selection (tier-1 stays fast);
the pytest-benchmark suites under ``benchmarks/`` remain the
statistically careful counterpart.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

# Fixed workload: the scalability benchmark's mixed traffic plus extra
# domain sentences exercising questions, negation, capability claims and
# semantic violations.
MIXED_MESSAGES = [
    "We push an element onto the stack.",
    "What is a queue?",
    "The tree doesn't have pop method.",
    "I push the data into a tree.",
]

PARSE_SENTENCES = MIXED_MESSAGES + [
    "A stack supports push.",
    "Push the data onto the stack.",
    "The queue has dequeue operation.",
    "A binary tree is a tree.",
]


def bench_cold_parse(repeats: int = 40) -> dict[str, float]:
    """Per-sentence parse latency with the sentence cache disabled."""
    from repro.linkgrammar import ParseOptions, Parser
    from repro.linkgrammar.lexicon import default_dictionary

    parser = Parser(default_dictionary(), ParseOptions(cache_size=0))
    for sentence in PARSE_SENTENCES:  # warm dictionary tables
        parser.parse(sentence)
    start = time.perf_counter()
    for _ in range(repeats):
        for sentence in PARSE_SENTENCES:
            parser.parse(sentence)
    elapsed = time.perf_counter() - start
    count = repeats * len(PARSE_SENTENCES)
    return {"ms_per_sentence": 1000.0 * elapsed / count, "sentences": count}


def bench_warm_parse(repeats: int = 400) -> dict[str, float]:
    """Per-sentence latency when the LRU sentence cache is hitting."""
    from repro.linkgrammar import ParseOptions, Parser
    from repro.linkgrammar.lexicon import default_dictionary

    parser = Parser(default_dictionary(), ParseOptions())
    for sentence in PARSE_SENTENCES:  # populate the cache
        parser.parse(sentence)
    start = time.perf_counter()
    for _ in range(repeats):
        for sentence in PARSE_SENTENCES:
            parser.parse(sentence)
    elapsed = time.perf_counter() - start
    count = repeats * len(PARSE_SENTENCES)
    info = parser.cache_info()
    hit_rate = info["hits"] / (info["hits"] + info["misses"])
    return {
        "ms_per_sentence": 1000.0 * elapsed / count,
        "sentences": count,
        "cache_hit_rate": hit_rate,
    }


def bench_supervision_throughput(messages: int = 400) -> dict[str, float]:
    """Supervised messages per second on the mixed-traffic loop.

    This mirrors ``benchmarks/test_scalability.py::
    test_supervision_throughput_baseline``: one room, one user, the
    four-message mix cycled, full supervision (syntax, semantics, QA,
    corpus recording) on every message.
    """
    from repro.core.system import ELearningSystem

    system = ELearningSystem.with_defaults()
    system.open_room("tput", topic="t")
    system.join("tput", "u")
    for i in range(8):  # warmup
        system.say("tput", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
    start = time.perf_counter()
    for i in range(messages):
        system.say("tput", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
    elapsed = time.perf_counter() - start
    return {"messages_per_sec": messages / elapsed, "messages": messages}


def bench_classroom(learners: int = 8, rounds: int = 2, seed: int = 21) -> dict[str, float]:
    """Wall-clock of a full seeded classroom session, system build included."""
    from repro.core.system import ELearningSystem
    from repro.simulation import ClassroomSession

    start = time.perf_counter()
    system = ELearningSystem.with_defaults()
    result = ClassroomSession(system, learners=learners, seed=seed).run(rounds=rounds)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "supervised": len(result.supervised),
        "learners": learners,
        "rounds": rounds,
    }


def bench_suggestion_search(queries: int = 300) -> dict[str, float]:
    """Suggestion-search queries per second against the seeded corpus."""
    from repro.core.system import ELearningSystem
    from repro.corpus.search import SuggestionSearch

    system = ELearningSystem.with_defaults()
    search = SuggestionSearch(system.corpus)
    query = "The tree doesn't have pop method."
    keywords = ["tree", "pop"]
    search.find(query, keywords=keywords)  # warmup
    start = time.perf_counter()
    for _ in range(queries):
        search.find(query, keywords=keywords)
    elapsed = time.perf_counter() - start
    return {
        "queries_per_sec": queries / elapsed,
        "corpus_records": len(system.corpus),
        "queries": queries,
    }


def run_report(quick: bool = False) -> dict:
    """Run every workload and return the structured report."""
    scale = 0.1 if quick else 1.0

    def n(value: int) -> int:
        return max(1, int(value * scale))

    return {
        "schema": "repro-bench/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {
            "cold_parse": bench_cold_parse(repeats=n(40)),
            "warm_parse": bench_warm_parse(repeats=n(400)),
            "supervision_throughput": bench_supervision_throughput(messages=n(400)),
            # Quick mode shrinks the session too; only the full run is
            # comparable against the pinned seed baseline.
            "classroom_session": bench_classroom(learners=4, rounds=1) if quick else bench_classroom(),
            "suggestion_search": bench_suggestion_search(queries=n(300)),
        },
    }


def write_report(
    output: str | Path = "BENCH_parse.json",
    quick: bool = False,
    seed_baseline: dict | None = None,
) -> Path:
    """Run the harness and write ``BENCH_parse.json``.

    When the output file already exists and carries a ``seed_baseline``
    section, it is preserved so the before/after comparison survives
    re-runs; pass ``seed_baseline`` explicitly to (re)pin it.
    """
    target = Path(output)
    report = run_report(quick=quick)
    if seed_baseline is None and target.exists():
        try:
            previous = json.loads(target.read_text(encoding="utf-8"))
            seed_baseline = previous.get("seed_baseline")
        except (OSError, ValueError):
            seed_baseline = None
    if seed_baseline:
        report["seed_baseline"] = seed_baseline
        report["speedup"] = _speedups(seed_baseline, report["workloads"])
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target


def _speedups(baseline: dict, current: dict) -> dict[str, float]:
    """Per-workload speedup factors (>1 means faster than the baseline).

    Per-unit metrics (ms/sentence, messages/sec, queries/sec) compare
    across differing iteration counts; total wall-clock metrics only
    compare when the workload shape matches, so a ``--quick`` run's
    shrunken classroom session is not divided against the full-size
    seed baseline.
    """
    speedups: dict[str, float] = {}
    ratios = [
        ("cold_parse", "ms_per_sentence", True, ()),
        ("warm_parse", "ms_per_sentence", True, ()),
        ("supervision_throughput", "messages_per_sec", False, ()),
        ("classroom_session", "seconds", True, ("learners", "rounds")),
        ("suggestion_search", "queries_per_sec", False, ()),
    ]
    for workload, metric, lower_is_better, shape_keys in ratios:
        base_workload = baseline.get(workload, {})
        now_workload = current.get(workload, {})
        base = base_workload.get(metric)
        now = now_workload.get(metric)
        if not base or not now:
            continue
        if any(base_workload.get(key) != now_workload.get(key) for key in shape_keys):
            continue
        speedups[workload] = round(base / now if lower_is_better else now / base, 2)
    return speedups


def add_bench_arguments(parser) -> None:
    """Attach the harness's CLI flags (shared with ``repro bench``)."""
    parser.add_argument("--output", default="BENCH_parse.json")
    parser.add_argument("--quick", action="store_true", help="10%% iteration counts")


def run_from_args(args) -> int:
    """Execute the harness from parsed :func:`add_bench_arguments` flags."""
    target = write_report(output=args.output, quick=args.quick)
    report = json.loads(target.read_text(encoding="utf-8"))
    for name, numbers in sorted(report["workloads"].items()):
        metrics = ", ".join(
            f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(numbers.items())
        )
        print(f"{name}: {metrics}")
    for name, factor in sorted(report.get("speedup", {}).items()):
        print(f"speedup[{name}]: {factor}x vs seed")
    print(f"wrote {target}")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="repro bench", description=__doc__)
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
