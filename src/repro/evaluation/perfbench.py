"""Deterministic performance harness for the supervision hot path.

``python -m repro bench`` (or ``make bench``) runs a fixed set of
workloads — cold parsing, cached parsing, the mixed-traffic supervision
loop, a seeded classroom session, suggestion search, raw post latency,
the multi-room sharded-runtime scale test, the parallel
(shard-replica) drain test, the corpus-scale retrieval test (10k vs
250k records, stopword-heavy queries), the durability recovery test
(WAL replay rate, snapshot-recover wall clock), the resilience test
(throughput under seeded fault rates, degraded-mode post latency while
a breaker is open) and the serving test (concurrent HTTP clients
against the live front door: posts per second, reply-latency
percentiles) — and writes the numbers to
``BENCH_parse.json`` so successive PRs can track the perf trajectory
of the parse engine and the supervision runtime.

The workloads are deterministic (fixed sentences, fixed seeds); only the
wall-clock readings vary by machine, so comparisons are meaningful within
one machine's report history.  Every metric is also exposed
programmatically via :func:`run_report` for tests and tooling.

None of this runs in the default pytest selection (tier-1 stays fast);
the pytest-benchmark suites under ``benchmarks/`` remain the
statistically careful counterpart.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

# Fixed workload: the scalability benchmark's mixed traffic plus extra
# domain sentences exercising questions, negation, capability claims and
# semantic violations.
MIXED_MESSAGES = [
    "We push an element onto the stack.",
    "What is a queue?",
    "The tree doesn't have pop method.",
    "I push the data into a tree.",
]

PARSE_SENTENCES = MIXED_MESSAGES + [
    "A stack supports push.",
    "Push the data onto the stack.",
    "The queue has dequeue operation.",
    "A binary tree is a tree.",
]


def bench_cold_parse(repeats: int = 40) -> dict[str, float]:
    """Per-sentence parse latency with the sentence cache disabled."""
    from repro.linkgrammar import ParseOptions, Parser
    from repro.linkgrammar.lexicon import default_dictionary

    parser = Parser(default_dictionary(), ParseOptions(cache_size=0))
    for sentence in PARSE_SENTENCES:  # warm dictionary tables
        parser.parse(sentence)
    start = time.perf_counter()
    for _ in range(repeats):
        for sentence in PARSE_SENTENCES:
            parser.parse(sentence)
    elapsed = time.perf_counter() - start
    count = repeats * len(PARSE_SENTENCES)
    return {"ms_per_sentence": 1000.0 * elapsed / count, "sentences": count}


def bench_warm_parse(repeats: int = 400) -> dict[str, float]:
    """Per-sentence latency when the LRU sentence cache is hitting."""
    from repro.linkgrammar import ParseOptions, Parser
    from repro.linkgrammar.lexicon import default_dictionary

    parser = Parser(default_dictionary(), ParseOptions())
    for sentence in PARSE_SENTENCES:  # populate the cache
        parser.parse(sentence)
    start = time.perf_counter()
    for _ in range(repeats):
        for sentence in PARSE_SENTENCES:
            parser.parse(sentence)
    elapsed = time.perf_counter() - start
    count = repeats * len(PARSE_SENTENCES)
    info = parser.cache_info()
    hit_rate = info["hits"] / (info["hits"] + info["misses"])
    return {
        "ms_per_sentence": 1000.0 * elapsed / count,
        "sentences": count,
        "cache_hit_rate": hit_rate,
    }


def bench_supervision_throughput(messages: int = 400) -> dict[str, float]:
    """Supervised messages per second on the mixed-traffic loop.

    This mirrors ``benchmarks/test_scalability.py::
    test_supervision_throughput_baseline``: one room, one user, the
    four-message mix cycled, full supervision (syntax, semantics, QA,
    corpus recording) on every message.
    """
    from repro.core.system import ELearningSystem

    system = ELearningSystem.with_defaults()
    system.open_room("tput", topic="t")
    system.join("tput", "u")
    for i in range(8):  # warmup
        system.say("tput", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
    start = time.perf_counter()
    for i in range(messages):
        system.say("tput", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
    elapsed = time.perf_counter() - start
    return {"messages_per_sec": messages / elapsed, "messages": messages}


def bench_classroom(learners: int = 8, rounds: int = 2, seed: int = 21) -> dict[str, float]:
    """Wall-clock of a full seeded classroom session, system build included."""
    from repro.core.system import ELearningSystem
    from repro.simulation import ClassroomSession

    start = time.perf_counter()
    system = ELearningSystem.with_defaults()
    result = ClassroomSession(system, learners=learners, seed=seed).run(rounds=rounds)
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "supervised": len(result.supervised),
        "learners": learners,
        "rounds": rounds,
    }


def bench_suggestion_search(queries: int = 300) -> dict[str, float]:
    """Suggestion-search queries per second against the seeded corpus."""
    from repro.core.system import ELearningSystem
    from repro.corpus.search import SuggestionSearch

    system = ELearningSystem.with_defaults()
    search = SuggestionSearch(system.corpus)
    query = "The tree doesn't have pop method."
    keywords = ["tree", "pop"]
    search.find(query, keywords=keywords)  # warmup
    start = time.perf_counter()
    for _ in range(queries):
        search.find(query, keywords=keywords)
    elapsed = time.perf_counter() - start
    return {
        "queries_per_sec": queries / elapsed,
        "corpus_records": len(system.corpus),
        "queries": queries,
    }


def bench_post_latency(messages: int = 2000) -> dict[str, float]:
    """Per-message cost of posting with supervision deferred.

    Runs the queued runtime with ``auto_drain=False``: ``post`` delivers
    the message and enqueues a work item, nothing else.  Compare
    ``ms_per_post`` against the synchronous pipeline's per-message cost
    (1000 / supervision_throughput) to see the agent work leave the
    user's send path; ``pending_after`` confirms the work was deferred,
    and the drain runs after the clock stops.
    """
    from repro.core.system import ELearningSystem, SystemConfig

    system = ELearningSystem.with_defaults(
        SystemConfig(runtime_mode="queued", auto_drain=False)
    )
    system.open_room("lat", topic="t")
    system.join("lat", "u")
    for i in range(8):  # warmup (room structures, tokenizer)
        system.say("lat", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
    system.drain()
    start = time.perf_counter()
    for i in range(messages):
        system.say("lat", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
    elapsed = time.perf_counter() - start
    pending = system.pending_supervision
    system.drain()
    return {
        "ms_per_post": 1000.0 * elapsed / messages,
        "messages": messages,
        "pending_after": pending,
    }


def bench_multi_room_scale(rooms: int = 16, rounds: int = 12, shards: int = 4) -> dict:
    """Sharded-runtime throughput vs the synchronous pipeline, same load.

    The workload posts the mixed-traffic messages round-robin across
    ``rooms`` rooms — the template-heavy shape of a real class cohort —
    once through the inline (PR 1 synchronous) runtime and once through
    the sharded runtime draining a deduplicated batch per round.  Both
    figures land in the report, plus the shared parse-cache counters
    (the cross-parser store the drain batches lean on).
    """
    from repro.core.system import ELearningSystem, SystemConfig

    def build(config: "SystemConfig") -> "ELearningSystem":
        system = ELearningSystem.with_defaults(config)
        for index in range(rooms):
            system.open_room(f"room-{index}", topic="t")
            system.join(f"room-{index}", "u")
        # Warm every message template through every room so both timed
        # runs measure steady state: the parse cache is shared process-
        # wide (one lru_cached default dictionary), and a partial warmup
        # would bill the first system for cold parses and the repairer's
        # candidate search while the second rides the warmed store.
        for text in MIXED_MESSAGES:
            for index in range(rooms):
                system.say(f"room-{index}", "u", text)
        system.drain()
        return system

    def run(system: "ELearningSystem", drain_per_round: bool) -> float:
        posted = 0
        start = time.perf_counter()
        for i in range(rounds):
            text = MIXED_MESSAGES[i % len(MIXED_MESSAGES)]
            for index in range(rooms):
                system.say(f"room-{index}", "u", text)
                posted += 1
            if drain_per_round:
                system.drain()
        system.drain()
        return posted / (time.perf_counter() - start)

    sync_system = build(SystemConfig(runtime_mode="inline"))
    sync_rate = run(sync_system, drain_per_round=False)
    sharded_system = build(
        SystemConfig(runtime_mode="sharded", shards=shards)
    )
    store = sharded_system.dictionary.shared_cache_store()
    before = store.info()
    sharded_rate = run(sharded_system, drain_per_round=True)
    after = store.info()
    # hits/misses are deltas over the sharded timed run (the store is
    # process-wide, so absolute counters would aggregate every prior
    # workload); entry counts are absolute.
    cache_info = {
        "hits": after["hits"] - before["hits"],
        "misses": after["misses"] - before["misses"],
        "parse_entries": after["parse_entries"],
        "count_entries": after["count_entries"],
        "max_entries": after["max_entries"],
    }
    return {
        "rooms": rooms,
        "rounds": rounds,
        "shards": shards,
        "messages": rooms * rounds,
        "sync_messages_per_sec": sync_rate,
        "sharded_messages_per_sec": sharded_rate,
        "sharded_speedup_vs_sync": round(sharded_rate / sync_rate, 2),
        "worker_messages": sharded_system.runtime.worker_loads(),
        "shared_cache": cache_info,
    }


#: Error-heavy classroom traffic for the parallel-drain workload: half
#: the templates are genuinely faulty (word salad, agreement errors,
#: semantic misuse), the shape of a novice cohort.  Faulty sentences are
#: the expensive ones — repair parsing plus a corpus-dependent
#: suggestion search — and the shared-store drain modes must re-run them
#: per room, which is exactly the cost the snapshot-isolated ``parallel``
#: mode removes.
ERROR_HEAVY_MESSAGES = [
    "We push an element onto the stack.",
    "stack the holds data quickly the.",
    "What is a queue?",
    "The stacks is full.",
    "I push the data into a tree.",
    "tree the has node quickly the.",
    "the push stack data element.",
    "Does the stack have the pop operation?",
]


def bench_parallel_drain(rooms: int = 16, rounds: int = 12, workers: int = 4) -> dict:
    """Shard-replica (``parallel``) drain throughput vs the cooperative
    ``sharded`` drain, same rooms, same error-heavy traffic, same worker
    count.

    Both systems shard 16 rooms across 4 workers and drain once per
    posted round.  The ``sharded`` mode's workers share the corpus, so a
    faulty sentence (whose repair and suggestion search read the live
    corpus) must be re-analysed for every room it was posted to.  The
    ``parallel`` mode freezes each drain cycle against the barrier
    snapshot: its shared memo legitimately dedups *every* repeated
    sentence — faulty ones included — and its workers run on a thread
    pool (real core parallelism on free-threaded builds).  The merged
    state is asserted equal to the cooperative modes by
    ``tests/chatroom/test_parallel_runtime.py``; this workload prices
    the difference.
    """
    from repro.core.system import ELearningSystem, SystemConfig

    def build(config: "SystemConfig") -> "ELearningSystem":
        system = ELearningSystem.with_defaults(config)
        for index in range(rooms):
            system.open_room(f"room-{index}", topic="t")
            system.join(f"room-{index}", "u")
        # Same steady-state discipline as multi_room_scale: warm every
        # template through every room so neither timed run bills cold
        # parses against the process-wide shared cache store.
        for text in ERROR_HEAVY_MESSAGES:
            for index in range(rooms):
                system.say(f"room-{index}", "u", text)
            system.drain()
        return system

    def run(system: "ELearningSystem") -> float:
        posted = 0
        start = time.perf_counter()
        for i in range(rounds):
            text = ERROR_HEAVY_MESSAGES[i % len(ERROR_HEAVY_MESSAGES)]
            for index in range(rooms):
                system.say(f"room-{index}", "u", text)
                posted += 1
            system.drain()
        return posted / (time.perf_counter() - start)

    sharded_system = build(SystemConfig(runtime_mode="sharded", shards=workers))
    sharded_rate = run(sharded_system)
    with build(SystemConfig(runtime_mode="parallel", shards=workers)) as parallel_system:
        parallel_rate = run(parallel_system)
        worker_messages = parallel_system.runtime.worker_loads()
    return {
        "rooms": rooms,
        "rounds": rounds,
        "workers": workers,
        "messages": rooms * rounds,
        "sharded_messages_per_sec": sharded_rate,
        "parallel_messages_per_sec": parallel_rate,
        "parallel_speedup_vs_sharded": round(parallel_rate / sharded_rate, 2),
        "worker_messages": worker_messages,
    }


def bench_process_drain(rooms: int = 16, rounds: int = 12, workers: int = 2) -> dict:
    """Child-process (``process``) drain throughput vs the thread-pool
    ``parallel`` drain, same rooms, same error-heavy traffic, same
    worker count.

    Both modes run the identical barrier-cycle protocol; the variable
    is where the cycle executes.  ``parallel`` pays the GIL (its pool
    threads serialize all Python-level analysis work); ``process`` pays
    the boundary instead — pickling the per-cycle batch and merged-delta
    both ways — and buys real core parallelism.  On a single-core host
    the boundary tax is all loss, so the report records ``cores``: the
    schema gate only expects a process speedup when the machine can
    actually provide one (>= 2 cores).  Merged-state parity with the
    cooperative modes is asserted by
    ``tests/chatroom/test_process_runtime.py``; this workload prices
    the IPC amortisation (children warm once; per cycle only batches
    and deltas cross).
    """
    import os

    from repro.core.system import ELearningSystem, SystemConfig

    def build(config: "SystemConfig") -> "ELearningSystem":
        system = ELearningSystem.with_defaults(config)
        for index in range(rooms):
            system.open_room(f"room-{index}", topic="t")
            system.join(f"room-{index}", "u")
        for text in ERROR_HEAVY_MESSAGES:
            for index in range(rooms):
                system.say(f"room-{index}", "u", text)
            system.drain()
        return system

    def run(system: "ELearningSystem") -> float:
        posted = 0
        start = time.perf_counter()
        for i in range(rounds):
            text = ERROR_HEAVY_MESSAGES[i % len(ERROR_HEAVY_MESSAGES)]
            for index in range(rooms):
                system.say(f"room-{index}", "u", text)
                posted += 1
            system.drain()
        return posted / (time.perf_counter() - start)

    with build(SystemConfig(runtime_mode="parallel", shards=workers)) as thread_system:
        thread_rate = run(thread_system)
    with build(SystemConfig(runtime_mode="process", shards=workers)) as process_system:
        process_rate = run(process_system)
        worker_messages = process_system.runtime.worker_loads()
    return {
        "rooms": rooms,
        "rounds": rounds,
        "workers": workers,
        "cores": os.cpu_count() or 1,
        "messages": rooms * rounds,
        "thread_messages_per_sec": thread_rate,
        "process_messages_per_sec": process_rate,
        "process_speedup_vs_thread": round(process_rate / thread_rate, 2),
        "worker_messages": worker_messages,
    }


#: Stopword backbone of the synthetic corpus-scale workload: every
#: record carries half of these, so their document frequencies cross the
#: default ``IndexConfig.stopword_df_cap`` long before the small corpus
#: is fully built — exactly the "the"-style postings the tiered
#: retrieval must keep out of the union.
_SCALE_STOPWORDS = ("the", "a", "is", "of", "to", "in", "on", "it")


def _build_scale_corpus(records: int, seed: int = 11, store_factory=None):
    """A synthetic learner corpus of ``records`` analysed utterances.

    Each record mixes four stopwords (DF ~ records/2: far past the
    stopword cap at any realistic size) with four content words drawn
    from a vocabulary that grows with the corpus, so content-term
    document frequencies stay roughly *flat* across scales — the shape
    of real chat traffic, where new sessions keep minting new topical
    words while the function words repeat forever.  Tokens are passed
    pre-split to ``add`` so the build measures indexing, not the
    tokenizer.

    ``store_factory`` lets the memory workload build the *same* synthetic
    corpus into the pre-columnar reference layout for comparison.
    """
    from random import Random

    from repro.corpus.records import Correctness, CorpusRecord
    from repro.corpus.store import LearnerCorpus

    if store_factory is None:
        store_factory = LearnerCorpus
    rng = Random(seed)
    vocab = max(200, records // 25)  # keeps content DF ~constant across scales
    verdict_cycle = [Correctness.CORRECT] * 7 + [
        Correctness.SYNTAX_ERROR,
        Correctness.SEMANTIC_ERROR,
        Correctness.QUESTION,
    ]
    corpus = store_factory()
    for i in range(records):
        tokens = tuple(rng.sample(_SCALE_STOPWORDS, 4)) + tuple(
            f"w{rng.randrange(vocab)}" for _ in range(4)
        )
        corpus.add(
            CorpusRecord(
                record_id=corpus.next_id(),
                user=f"user{i % 200}",
                room="scale",
                text=" ".join(tokens),
                timestamp=float(i),
                pattern="simple",
                verdict=verdict_cycle[i % len(verdict_cycle)],
                keywords=[f"topic{rng.randrange(64)}"],
            ),
            tokens=tokens,
        )
    return corpus


def bench_corpus_scale(
    records_small: int = 10_000,
    records_large: int = 250_000,
    repeats: int = 8,
) -> dict:
    """Suggestion-search latency at two corpus sizes, stopword-heavy queries.

    The flat-retrieval claim of the ``CorpusIndex`` tiering (see
    docs/corpus.md): with delta-compacted postings, DF-capped stopword
    demotion and the budgeted fallback walk, an unconstrained suggestion
    search over a 250k-record corpus must stay within ~the same latency
    as over a 10k-record corpus — the pre-tier behaviour walked every
    "the" posting and degraded linearly.  Queries alternate between
    pure stopword-tier text (exercising the capped fallback + early
    cut) and stopword-heavy text with one rare content word (exercising
    the rare-first union that skips the capped tier).  Query content
    words are drawn from the vocabulary prefix both corpora share, so
    the two measurements run the identical query list.
    """
    from random import Random

    from repro.corpus.search import SuggestionSearch

    qrng = Random(29)
    queries: list[str] = []
    for i in range(16):
        words = qrng.sample(_SCALE_STOPWORDS, 5)
        if i % 2:
            words.append(f"w{qrng.randrange(200)}")
        queries.append(" ".join(words))

    def measure(records: int) -> tuple[float, dict]:
        corpus = _build_scale_corpus(records)
        search = SuggestionSearch(corpus)
        for query in queries:  # warm tokenizer + index dict internals
            search.find(query)
        start = time.perf_counter()
        for _ in range(repeats):
            for query in queries:
                search.find(query)
        elapsed = time.perf_counter() - start
        return 1000.0 * elapsed / (repeats * len(queries)), corpus.index.stats()

    ms_small, _ = measure(records_small)
    ms_large, stats_large = measure(records_large)
    return {
        "records_small": records_small,
        "records_large": records_large,
        "queries": repeats * len(queries),
        "ms_per_query_small": ms_small,
        "ms_per_query_large": ms_large,
        "latency_ratio_large_vs_small": round(ms_large / ms_small, 2),
        "capped_tokens_large": stats_large["capped_tokens"],
        "index_payload_bytes_large": stats_large["payload_bytes"],
    }


def bench_corpus_memory(
    records: int = 250_000,
    repeats: int = 8,
    segmented_records: int = 1_000_000,
    segment_records: int = 65_536,
) -> dict:
    """Columnar record storage vs object records vs the disk segment
    tier: bytes/record, resident set and suggestion-query latency.

    Builds the ``corpus_scale`` synthetic corpus three ways — into the
    columnar :class:`LearnerCorpus` (interned vocabularies, flat column
    arrays, compacted postings), into the pre-columnar
    :class:`~repro.corpus.reference.ReferenceCorpus` (one record object
    per utterance, ``frozenset`` caches, boxed-int posting lists), and
    at ``segmented_records`` (default 10^6, 4× the in-RAM sizes) into a
    :class:`~repro.corpus.segments.SegmentedCorpus` frozen to disk at
    the ``segment_records`` cadence — and prices the layouts:

    * **memory** — deep heap bytes per record of each in-RAM layout
      (the schema gate requires the columnar store to be ≥ 3× smaller
      than object records);
    * **latency** — ms/query of the streaming suggestion search over
      the columnar store vs the tuple-decoding reference search over
      the object store, identical stopword-heavy query list (the gate
      requires the streaming path within 1.2× of the reference);
    * **residency** — heap bytes per *frozen* record of the fully
      frozen segmented corpus (mmapped segment files are reclaimable
      page cache, not resident).  The schema gates require
      ``resident_ratio_vs_columnar`` ≤ 0.2 (a frozen record costs at
      most a fifth of its in-RAM columnar footprint),
      ``residency_growth_ratio`` < 1.0 (resident bytes net of the
      shared vocabularies — which any layout keeps on the heap — grow
      *sublinearly* in frozen records: a second segmented build at the
      in-RAM comparison size anchors the growth curve), and the
      cross-tier query latency within 1.5× of the in-RAM columnar
      search at a quarter the records.

    The object-record reference is built, measured and released first
    (it dwarfs everything else), then the columnar and segmented
    corpora are held together and their timed rounds *interleaved* —
    each columnar round is immediately followed by a segmented round —
    so the 1.5× latency gate compares medians taken under the same
    machine and heap state rather than minutes apart.
    """
    from random import Random

    from repro.corpus.reference import ReferenceCorpus, ReferenceSuggestionSearch
    from repro.corpus.search import SuggestionSearch
    from repro.corpus.segments import SegmentedCorpus

    qrng = Random(29)
    queries: list[str] = []
    for i in range(16):
        words = qrng.sample(_SCALE_STOPWORDS, 5)
        if i % 2:
            words.append(f"w{qrng.randrange(200)}")
        queries.append(" ".join(words))

    def timed_round(search) -> float:
        start = time.perf_counter()
        for _ in range(repeats):
            for query in queries:
                search.find(query)
        return time.perf_counter() - start

    def median_ms(rounds: list[float]) -> float:
        rounds = sorted(rounds)
        return 1000.0 * rounds[len(rounds) // 2] / (repeats * len(queries))

    def measure(build_search, corpus) -> float:
        # Median of 5 timed rounds: a single noisy round (CPU
        # frequency, co-tenant load) must not decide a latency gate.
        search = build_search(corpus)
        for query in queries:  # warm caches + dict internals
            search.find(query)
        return median_ms([timed_round(search) for _ in range(5)])

    reference = _build_scale_corpus(records, store_factory=ReferenceCorpus)
    reference_bytes = reference.memory_bytes()
    ms_reference = measure(ReferenceSuggestionSearch, reference)
    del reference

    def build_segmented(count: int) -> SegmentedCorpus:
        corpus = _build_scale_corpus(
            count,
            store_factory=lambda: SegmentedCorpus(
                segment_records=segment_records, auto_freeze=True
            ),
        )
        corpus.freeze()  # seal the tail: every record priced as frozen
        return corpus

    def tier_resident(stats: dict) -> int:
        # What the segment tier actually controls: columns, texts,
        # postings and caches.  The shared vocabularies stay on the
        # heap in *any* layout (a plain corpus fed the same records
        # holds the identical vocabularies), and this synthetic
        # workload grows its vocabulary linearly with the corpus by
        # construction — so the sublinearity gate measures residency
        # net of vocab, while the headline per-frozen-record figure
        # keeps vocab in.
        return stats["resident_bytes"] - stats["vocab_bytes"]

    # Anchor point for the sublinearity gate: the same segmented build
    # at the in-RAM comparison size.
    anchor = build_segmented(records)
    anchor_resident = tier_resident(anchor.memory_stats())
    anchor.close()

    # The columnar-vs-segmented latency gate compares two measurements,
    # so both corpora are alive at once and their rounds *interleave*:
    # each pair of rounds runs under the same machine and heap state
    # (resident cost of holding both: the 3-way memory gates above/below
    # prove the pair together is far smaller than the reference corpus
    # this function just released).
    columnar = _build_scale_corpus(records)
    columnar_bytes = columnar.memory_stats()["total_bytes"]
    segmented = build_segmented(segmented_records)
    seg_stats = segmented.memory_stats()
    columnar_search = SuggestionSearch(columnar)
    segmented_search = SuggestionSearch(segmented)
    for query in queries:  # warm both before the first timed pair
        columnar_search.find(query)
        segmented_search.find(query)
    columnar_rounds: list[float] = []
    segmented_rounds: list[float] = []
    for _ in range(5):
        columnar_rounds.append(timed_round(columnar_search))
        segmented_rounds.append(timed_round(segmented_search))
    ms_columnar = median_ms(columnar_rounds)
    ms_segmented = median_ms(segmented_rounds)
    del columnar
    segmented.close()
    frozen = seg_stats["frozen_records"]
    per_frozen = seg_stats["resident_bytes"] / frozen
    growth = (tier_resident(seg_stats) / anchor_resident) / (
        segmented_records / records
    )

    return {
        "records": records,
        "queries": repeats * len(queries),
        "bytes_per_record_columnar": round(columnar_bytes / records, 1),
        "bytes_per_record_objects": round(reference_bytes / records, 1),
        "memory_ratio_objects_vs_columnar": round(reference_bytes / columnar_bytes, 2),
        "ms_per_query_columnar": ms_columnar,
        "ms_per_query_reference": ms_reference,
        "latency_ratio_columnar_vs_reference": round(ms_columnar / ms_reference, 2),
        "records_segmented": segmented_records,
        "records_frozen": frozen,
        "segments": seg_stats["segments"],
        "segment_disk_bytes": seg_stats["disk_bytes"],
        "bytes_resident_per_frozen_record": round(per_frozen, 2),
        "resident_ratio_vs_columnar": round(per_frozen / (columnar_bytes / records), 4),
        "residency_growth_ratio": round(growth, 3),
        "ms_per_query_segmented": ms_segmented,
        "latency_ratio_segmented_vs_columnar": round(ms_segmented / ms_columnar, 2),
    }


def bench_recovery(messages: int = 240) -> dict:
    """Durability pricing: WAL replay rate and snapshot-recover latency.

    Runs the mixed-traffic loop through a durable system with periodic
    snapshots disabled and ``fsync="never"`` (the write-ahead cost is
    priced by comparing ``post_latency`` runs, not here), then abandons
    the process state without a final snapshot — the on-disk shape of a
    crash.  Two recoveries are timed:

    * **replay-only** — no snapshot exists, so recovery re-runs the full
      supervision pipeline over every journalled message
      (``replay_messages_per_sec`` is the disaster-case rebuild rate);
    * **snapshot + empty tail** — after the first recovery compacts into
      a snapshot, a second recovery restores columnar state directly
      (``snapshot_recover_seconds`` is the ordinary restart cost, and it
      must not scale with supervision work — the restore never
      re-tokenises).

    ``wal_bytes`` / ``snapshot_bytes`` track the durability footprint of
    the same workload in both representations.
    """
    import shutil
    import tempfile
    from dataclasses import replace

    from repro.core.system import ELearningSystem, SystemConfig

    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-recovery-"))
    config = SystemConfig(snapshot_every=None, fsync="never")
    try:
        data_dir = workdir / "state"
        system = ELearningSystem.with_defaults(replace(config, data_dir=str(data_dir)))
        system.open_room("rec", topic="t")
        system.join("rec", "u")
        for i in range(messages):
            system.say("rec", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
        system.durability.close()  # sync the log, write NO snapshot:
        system.runtime.close()  # the on-disk shape of a crash
        wal_bytes = sum(p.stat().st_size for p in data_dir.glob("wal-*.log"))

        start = time.perf_counter()
        recovered, report = ELearningSystem.recover(str(data_dir), config)
        replay_seconds = time.perf_counter() - start
        events_replayed = report.events_replayed
        recovered.close()  # compact: the final snapshot now covers the log
        snapshot_bytes = max(
            p.stat().st_size for p in data_dir.glob("snapshot-*.json")
        )

        start = time.perf_counter()
        again, _ = ELearningSystem.recover(str(data_dir), config)
        snapshot_recover_seconds = time.perf_counter() - start
        again.runtime.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "messages": messages,
        "events_replayed": events_replayed,
        "replay_messages_per_sec": messages / replay_seconds,
        "snapshot_recover_seconds": snapshot_recover_seconds,
        "wal_bytes": wal_bytes,
        "snapshot_bytes": snapshot_bytes,
    }


def bench_resilience(messages: int = 240) -> dict:
    """Fault-tolerance pricing (docs/resilience.md).

    Three throughput runs of the mixed-traffic loop — fault-free, and
    with seeded faults injected into 1% / 5% of the guarded stage
    crossings (each absorbed by retries, occasionally a quarantine) —
    price what the retry/breaker machinery costs when things go wrong.
    A fourth run holds the parser stage hard-down behind a tripped
    breaker with an effectively infinite cooldown and measures the
    degraded-mode cost of a post: delivery plus a deferred-ledger
    append, no analysis — it must be far cheaper than a fault-free
    supervised message (``degraded_ms_per_post`` vs
    ``fault_free_ms_per_message``), or degraded mode would not be
    degrading gracefully.
    """
    from repro.core.system import ELearningSystem, SystemConfig
    from repro.resilience import BreakerPolicy, RuntimeFaultPlan

    def throughput(plan) -> float:
        system = ELearningSystem.with_defaults(SystemConfig(runtime_faults=plan))
        system.open_room("res", topic="t")
        system.join("res", "u")
        for i in range(8):  # warmup
            system.say("res", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
        start = time.perf_counter()
        for i in range(messages):
            system.say("res", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
        elapsed = time.perf_counter() - start
        return messages / elapsed

    fault_free = throughput(None)
    faulty_1pct = throughput(RuntimeFaultPlan(rate=0.01, seed=43))
    faulty_5pct = throughput(RuntimeFaultPlan(rate=0.05, seed=43))

    # Degraded mode: trip the parser breaker, then price a deferred post.
    plan = RuntimeFaultPlan(permanent=("parser",))
    system = ELearningSystem.with_defaults(
        SystemConfig(runtime_faults=plan, breaker=BreakerPolicy(cooldown=1_000_000_000))
    )
    system.open_room("res", topic="t")
    system.join("res", "u")
    for i in range(8):  # enough traffic to trip the breaker open
        system.say("res", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
    assert system.resilience.breakers["parser"].state == "open"
    start = time.perf_counter()
    for i in range(messages):
        system.say("res", "u", MIXED_MESSAGES[i % len(MIXED_MESSAGES)])
    degraded_elapsed = time.perf_counter() - start

    return {
        "messages": messages,
        "fault_free_messages_per_sec": fault_free,
        "faulty_1pct_messages_per_sec": faulty_1pct,
        "faulty_5pct_messages_per_sec": faulty_5pct,
        "throughput_ratio_1pct": faulty_1pct / fault_free,
        "throughput_ratio_5pct": faulty_5pct / fault_free,
        "fault_free_ms_per_message": 1000.0 / fault_free,
        "degraded_ms_per_post": 1000.0 * degraded_elapsed / messages,
    }


#: Question traffic for the serving workload: every one of these draws a
#: QA reply (asserted by the schema gate via ``replies_observed``), so
#: reply latency is measurable on every post.
SERVING_QUESTIONS = [
    "What is a queue?",
    "What is Stack?",
    "Does the stack have the pop operation?",
    "What is a binary tree?",
]


def bench_serving(clients: int = 4, posts_per_client: int = 25) -> dict:
    """HTTP front-door throughput and reply latency under concurrency.

    Boots the real serving stack — ``ELearningSystem`` behind a
    :class:`~repro.serving.ChatGateway` and a live
    :class:`~repro.serving.ChatHTTPServer` on an ephemeral port — and
    drives it with ``clients`` concurrent threads, each on its own
    keep-alive connection posting questions to its own room.  Every post
    is followed by a seq-cursor transcript read that long-polls until
    the QA reply (``reply_to`` = the posted seq) is visible, so
    ``reply_p50_ms`` / ``reply_p95_ms`` price the full round trip the
    paper's learner experiences: HTTP admission, supervision, the
    agent's reply, and the indexed read back out.  ``posts_per_sec`` is
    aggregate across all clients, admission lock included.
    """
    import http.client
    import threading

    from repro.core.system import ELearningSystem
    from repro.serving import ChatGateway, ChatHTTPServer

    system = ELearningSystem.with_defaults()
    gateway = ChatGateway(system)
    httpd = ChatHTTPServer(gateway)
    threading.Thread(target=httpd.serve_forever, daemon=True).start()
    host, port = httpd.server_address[:2]

    def req(conn, method: str, path: str, body: dict | None = None) -> dict:
        conn.request(method, path, json.dumps(body) if body is not None else None)
        response = conn.getresponse()
        payload = json.loads(response.read())
        if response.status >= 400:
            raise RuntimeError(f"{method} {path} -> {response.status}: {payload}")
        return payload

    barrier = threading.Barrier(clients + 1)
    latencies: list[list[float]] = [[] for _ in range(clients)]
    errors: list[Exception] = []

    def client(index: int) -> None:
        try:
            conn = http.client.HTTPConnection(host, port, timeout=60)
            room, user = f"serve-{index}", f"learner-{index}"
            req(conn, "POST", "/rooms", {"name": room, "topic": "bench"})
            req(conn, "POST", f"/rooms/{room}/join", {"user": user})
            # Warm the parse caches outside the timed window.
            req(conn, "POST", f"/rooms/{room}/messages",
                {"user": user, "text": SERVING_QUESTIONS[0]})
            barrier.wait()
            for i in range(posts_per_client):
                text = SERVING_QUESTIONS[(index + i) % len(SERVING_QUESTIONS)]
                started = time.perf_counter()
                posted = req(conn, "POST", f"/rooms/{room}/messages",
                             {"user": user, "text": text})
                seq = posted["message"]["seq"]
                cursor = seq
                while True:
                    page = req(conn, "GET",
                               f"/rooms/{room}/transcript?since={cursor}&wait=10")
                    if any(m["kind"] == "agent" and m["reply_to"] == seq
                           for m in page["messages"]):
                        break
                    cursor = page["next"]
                latencies[index].append(1000.0 * (time.perf_counter() - started))
            conn.close()
        except Exception as exc:
            errors.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=client, args=(i,)) for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()  # all clients warmed: the timed window opens together
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    httpd.shutdown()
    httpd.server_close()
    system.close()
    if errors:
        raise errors[0]
    observed = sorted(ms for per_client in latencies for ms in per_client)
    messages = clients * posts_per_client

    def percentile(p: float) -> float:
        return observed[min(len(observed) - 1, int(p * len(observed)))]

    return {
        "clients": clients,
        "messages": messages,
        "posts_per_sec": messages / elapsed,
        "reply_p50_ms": percentile(0.50),
        "reply_p95_ms": percentile(0.95),
        "replies_observed": len(observed),
    }


def run_report(quick: bool = False) -> dict:
    """Run every workload and return the structured report."""
    scale = 0.1 if quick else 1.0

    def n(value: int) -> int:
        return max(1, int(value * scale))

    return {
        "schema": "repro-bench/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": {
            "cold_parse": bench_cold_parse(repeats=n(40)),
            "warm_parse": bench_warm_parse(repeats=n(400)),
            "supervision_throughput": bench_supervision_throughput(messages=n(400)),
            # Quick mode shrinks the session too; only the full run is
            # comparable against the pinned seed baseline.
            "classroom_session": bench_classroom(learners=4, rounds=1) if quick else bench_classroom(),
            "suggestion_search": bench_suggestion_search(queries=n(300)),
            "post_latency": bench_post_latency(messages=n(2000)),
            "multi_room_scale": bench_multi_room_scale(rounds=max(2, n(12))),
            "parallel_drain": bench_parallel_drain(rounds=max(2, n(12))),
            "process_drain": bench_process_drain(rounds=max(2, n(12))),
            "corpus_scale": bench_corpus_scale(
                records_small=n(10_000), records_large=n(250_000)
            ),
            "corpus_memory": bench_corpus_memory(
                records=n(250_000), segmented_records=n(1_000_000)
            ),
            "recovery": bench_recovery(messages=n(240)),
            "resilience": bench_resilience(messages=n(240)),
            # Always >= 4 concurrent clients (the acceptance floor);
            # quick mode shrinks only the per-client post count.
            "serving": bench_serving(posts_per_client=max(2, n(25))),
        },
    }


#: Metric keys every workload must carry for the report to be comparable
#: across PRs (the ``repro-bench/1`` shape; extended, never replaced).
REQUIRED_WORKLOAD_METRICS: dict[str, tuple[str, ...]] = {
    "cold_parse": ("ms_per_sentence", "sentences"),
    "warm_parse": ("ms_per_sentence", "sentences", "cache_hit_rate"),
    "supervision_throughput": ("messages_per_sec", "messages"),
    "classroom_session": ("seconds", "supervised", "learners", "rounds"),
    "suggestion_search": ("queries_per_sec", "corpus_records", "queries"),
    "post_latency": ("ms_per_post", "messages", "pending_after"),
    "multi_room_scale": (
        "rooms",
        "shards",
        "messages",
        "sync_messages_per_sec",
        "sharded_messages_per_sec",
        "sharded_speedup_vs_sync",
        "shared_cache",
    ),
    "parallel_drain": (
        "rooms",
        "workers",
        "messages",
        "sharded_messages_per_sec",
        "parallel_messages_per_sec",
        "parallel_speedup_vs_sharded",
    ),
    "process_drain": (
        "rooms",
        "workers",
        "cores",
        "messages",
        "thread_messages_per_sec",
        "process_messages_per_sec",
        "process_speedup_vs_thread",
    ),
    "corpus_scale": (
        "records_small",
        "records_large",
        "queries",
        "ms_per_query_small",
        "ms_per_query_large",
        "latency_ratio_large_vs_small",
    ),
    "corpus_memory": (
        "records",
        "bytes_per_record_columnar",
        "bytes_per_record_objects",
        "memory_ratio_objects_vs_columnar",
        "ms_per_query_columnar",
        "ms_per_query_reference",
        "latency_ratio_columnar_vs_reference",
        "records_segmented",
        "records_frozen",
        "segments",
        "bytes_resident_per_frozen_record",
        "resident_ratio_vs_columnar",
        "residency_growth_ratio",
        "ms_per_query_segmented",
        "latency_ratio_segmented_vs_columnar",
    ),
    "recovery": (
        "messages",
        "events_replayed",
        "replay_messages_per_sec",
        "snapshot_recover_seconds",
        "wal_bytes",
        "snapshot_bytes",
    ),
    "resilience": (
        "messages",
        "fault_free_messages_per_sec",
        "faulty_1pct_messages_per_sec",
        "faulty_5pct_messages_per_sec",
        "throughput_ratio_1pct",
        "throughput_ratio_5pct",
        "fault_free_ms_per_message",
        "degraded_ms_per_post",
    ),
    "serving": (
        "clients",
        "messages",
        "posts_per_sec",
        "reply_p50_ms",
        "reply_p95_ms",
        "replies_observed",
    ),
}

#: Workloads the seed commit predates; a pinned baseline need not (and
#: cannot) carry them.
_POST_SEED_WORKLOADS = frozenset(
    {
        "post_latency",
        "multi_room_scale",
        "parallel_drain",
        "process_drain",
        "corpus_scale",
        "corpus_memory",
        "recovery",
        "resilience",
        "serving",
    }
)


def validate_report(report: dict) -> None:
    """Check a bench report against the ``repro-bench/1`` schema.

    Raises ``ValueError`` with every problem found, so a malformed
    ``BENCH_parse.json`` (dropped workload, renamed metric, clobbered
    baseline) fails fast in tier-1 instead of surfacing as an
    uncomparable report several PRs later.
    """
    problems: list[str] = []
    if report.get("schema") != "repro-bench/1":
        problems.append(f"schema is {report.get('schema')!r}, expected 'repro-bench/1'")
    for key in ("python", "machine"):
        if not isinstance(report.get(key), str):
            problems.append(f"missing or non-string {key!r}")
    workloads = report.get("workloads")
    if not isinstance(workloads, dict):
        problems.append("missing 'workloads' mapping")
        workloads = {}
    for name, metrics in REQUIRED_WORKLOAD_METRICS.items():
        numbers = workloads.get(name)
        if not isinstance(numbers, dict):
            problems.append(f"workloads[{name!r}] missing")
            continue
        for metric in metrics:
            if metric not in numbers:
                problems.append(f"workloads[{name!r}] lacks metric {metric!r}")
    baseline = report.get("seed_baseline")
    if baseline is not None:
        if not isinstance(baseline, dict):
            problems.append("'seed_baseline' is not a mapping")
        else:
            for name, metrics in REQUIRED_WORKLOAD_METRICS.items():
                if name in _POST_SEED_WORKLOADS:
                    continue
                numbers = baseline.get(name)
                if not isinstance(numbers, dict):
                    problems.append(f"seed_baseline[{name!r}] missing")
                    continue
                for metric in metrics:
                    if metric not in numbers:
                        problems.append(f"seed_baseline[{name!r}] lacks metric {metric!r}")
    speedup = report.get("speedup")
    if speedup is not None and not all(
        isinstance(value, (int, float)) for value in speedup.values()
    ):
        problems.append("'speedup' carries non-numeric entries")
    if problems:
        raise ValueError("invalid repro-bench/1 report: " + "; ".join(problems))


def write_report(
    output: str | Path = "BENCH_parse.json",
    quick: bool = False,
    seed_baseline: dict | None = None,
) -> Path:
    """Run the harness and write ``BENCH_parse.json``.

    When the output file already exists and carries a ``seed_baseline``
    section, it is preserved so the before/after comparison survives
    re-runs; pass ``seed_baseline`` explicitly to (re)pin it.
    """
    target = Path(output)
    report = run_report(quick=quick)
    if seed_baseline is None and target.exists():
        try:
            previous = json.loads(target.read_text(encoding="utf-8"))
            seed_baseline = previous.get("seed_baseline")
        except (OSError, ValueError):
            seed_baseline = None
    if seed_baseline:
        report["seed_baseline"] = seed_baseline
        report["speedup"] = _speedups(seed_baseline, report["workloads"])
    validate_report(report)  # never write a malformed report
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target


def _speedups(baseline: dict, current: dict) -> dict[str, float]:
    """Per-workload speedup factors (>1 means faster than the baseline).

    Per-unit metrics (ms/sentence, messages/sec, queries/sec) compare
    across differing iteration counts; total wall-clock metrics only
    compare when the workload shape matches, so a ``--quick`` run's
    shrunken classroom session is not divided against the full-size
    seed baseline.
    """
    speedups: dict[str, float] = {}
    ratios = [
        ("cold_parse", "ms_per_sentence", True, ()),
        ("warm_parse", "ms_per_sentence", True, ()),
        ("supervision_throughput", "messages_per_sec", False, ()),
        ("classroom_session", "seconds", True, ("learners", "rounds")),
        ("suggestion_search", "queries_per_sec", False, ()),
    ]
    for workload, metric, lower_is_better, shape_keys in ratios:
        base_workload = baseline.get(workload, {})
        now_workload = current.get(workload, {})
        base = base_workload.get(metric)
        now = now_workload.get(metric)
        if not base or not now:
            continue
        if any(base_workload.get(key) != now_workload.get(key) for key in shape_keys):
            continue
        speedups[workload] = round(base / now if lower_is_better else now / base, 2)
    return speedups


def add_bench_arguments(parser) -> None:
    """Attach the harness's CLI flags (shared with ``repro bench``)."""
    parser.add_argument("--output", default="BENCH_parse.json")
    parser.add_argument("--quick", action="store_true", help="10%% iteration counts")


def run_from_args(args) -> int:
    """Execute the harness from parsed :func:`add_bench_arguments` flags."""
    target = write_report(output=args.output, quick=args.quick)
    report = json.loads(target.read_text(encoding="utf-8"))
    for name, numbers in sorted(report["workloads"].items()):
        metrics = ", ".join(
            f"{key}={value:.3f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(numbers.items())
        )
        print(f"{name}: {metrics}")
    for name, factor in sorted(report.get("speedup", {}).items()):
        print(f"speedup[{name}]: {factor}x vs seed")
    print(f"wrote {target}")
    return 0


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="repro bench", description=__doc__)
    add_bench_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
