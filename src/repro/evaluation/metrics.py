"""Detection metrics and latency summaries.

The paper leaves "evaluating the accuracy of the proposed Semantic Agent"
to future work (section 5); this module provides the scoring the study
needs: binary precision/recall/F1 against injected ground truth, per-class
breakdowns, and latency percentile summaries for the throughput benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class BinaryMetrics:
    """Precision / recall / F1 over binary detections."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 1.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def accuracy(self) -> float:
        total = (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )
        return (self.true_positives + self.true_negatives) / total if total else 1.0

    def row(self) -> str:
        return (
            f"P={self.precision:.3f} R={self.recall:.3f} "
            f"F1={self.f1:.3f} acc={self.accuracy:.3f} "
            f"(tp={self.true_positives} fp={self.false_positives} "
            f"fn={self.false_negatives} tn={self.true_negatives})"
        )


def score_binary(pairs: Iterable[tuple[bool, bool]]) -> BinaryMetrics:
    """Score (truth, predicted) pairs."""
    tp = fp = fn = tn = 0
    for truth, predicted in pairs:
        if truth and predicted:
            tp += 1
        elif not truth and predicted:
            fp += 1
        elif truth and not predicted:
            fn += 1
        else:
            tn += 1
    return BinaryMetrics(tp, fp, fn, tn)


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Percentile summary of a latency sample (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    maximum: float

    def row(self, unit: float = 1e3, label: str = "ms") -> str:
        return (
            f"n={self.count} mean={self.mean * unit:.2f}{label} "
            f"p50={self.p50 * unit:.2f}{label} p90={self.p90 * unit:.2f}{label} "
            f"p99={self.p99 * unit:.2f}{label} max={self.maximum * unit:.2f}{label}"
        )


def summarize_latencies(samples: Sequence[float]) -> LatencySummary:
    """Percentiles by nearest-rank over a latency sample."""
    if not samples:
        return LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(samples)

    def percentile(fraction: float) -> float:
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    return LatencySummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=percentile(0.50),
        p90=percentile(0.90),
        p99=percentile(0.99),
        maximum=ordered[-1],
    )
