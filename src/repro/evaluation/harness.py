"""The accuracy-study harness (experiment A2: the paper's future work).

Runs seeded classroom sessions at varying error rates and scores the
supervisors against the injected ground truth, producing the table rows
EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import ELearningSystem
from repro.simulation.learners import LearnerProfile
from repro.simulation.workload import ClassroomResult, ClassroomSession

from .metrics import BinaryMetrics, score_binary


@dataclass(frozen=True, slots=True)
class AccuracyRow:
    """One row of the accuracy study."""

    syntax_error_rate: float
    semantic_error_rate: float
    seed: int
    sentences: int
    syntax: BinaryMetrics
    semantic: BinaryMetrics
    questions_answer_rate: float

    def render(self) -> str:
        return (
            f"rate(syn={self.syntax_error_rate:.2f}, sem={self.semantic_error_rate:.2f}) "
            f"seed={self.seed} n={self.sentences} | syntax {self.syntax.row()} | "
            f"semantic {self.semantic.row()} | QA answer-rate={self.questions_answer_rate:.2f}"
        )


def score_session(result: ClassroomResult) -> tuple[BinaryMetrics, BinaryMetrics, float]:
    """Score one classroom result: (syntax metrics, semantic metrics, QA rate).

    Questions are excluded from detection scoring (they are routed to QA);
    syntax scoring treats any injected syntax class as positive; semantic
    scoring runs over syntactically clean statements only, mirroring the
    paper's staging (the Semantic Agent only sees parseable sentences).
    """
    statements = [s for s in result.supervised if not s.utterance.is_question]
    syntax_pairs = [(s.truth_syntax_error, s.flagged_syntax) for s in statements]
    semantic_pairs = [
        (s.truth_semantic_error, s.flagged_semantic)
        for s in statements
        if not s.truth_syntax_error
    ]
    answer_rate = (
        result.questions_answered / result.questions_asked
        if result.questions_asked
        else 1.0
    )
    return score_binary(syntax_pairs), score_binary(semantic_pairs), answer_rate


def run_accuracy_study(
    error_rates: list[tuple[float, float]],
    seeds: list[int],
    learners: int = 6,
    rounds: int = 10,
) -> list[AccuracyRow]:
    """Sweep error rates × seeds; one fresh system per cell."""
    rows: list[AccuracyRow] = []
    for syntax_rate, semantic_rate in error_rates:
        for seed in seeds:
            system = ELearningSystem.with_defaults()
            profile = LearnerProfile(
                question_rate=0.15,
                syntax_error_rate=syntax_rate,
                semantic_error_rate=semantic_rate,
                chitchat_rate=0.05,
            )
            session = ClassroomSession(
                system, learners=learners, profile=profile, seed=seed
            )
            result = session.run(rounds=rounds)
            syntax_metrics, semantic_metrics, answer_rate = score_session(result)
            rows.append(
                AccuracyRow(
                    syntax_error_rate=syntax_rate,
                    semantic_error_rate=semantic_rate,
                    seed=seed,
                    sentences=len(result.supervised),
                    syntax=syntax_metrics,
                    semantic=semantic_metrics,
                    questions_answer_rate=answer_rate,
                )
            )
    return rows
