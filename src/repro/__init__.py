"""repro — reproduction of "An Intelligent Semantic Agent for Supervising
Chat Rooms in e-Learning System" (Wang, Wang & Huang, ICDCSW'05).

The package implements the paper's complete system from scratch: a link
grammar parser with fault tolerance (Learning_Angel), an ontology-based
Semantic Agent with sentence-distance evaluation, a template-driven QA
subsystem with FAQ accumulation, the learner corpus and user-profile
databases, and a deterministic supervised chat-room substrate.

Quickstart::

    from repro import ELearningSystem

    system = ELearningSystem.with_defaults()
    system.open_room("ds-101", topic="stacks")
    system.join("ds-101", "alice")
    message = system.say("ds-101", "alice", "What is Stack?")
    for reply in system.agent_replies_to(message):
        print(f"{reply.sender}: {reply.text}")
"""

from .core.system import ELearningSystem, SystemConfig

__version__ = "1.0.0"

__all__ = ["ELearningSystem", "SystemConfig", "__version__"]
