"""Sentence tokenisation for the chat-room parser.

Chat messages are informal: mixed case, contractions, stray punctuation.
The tokenizer lower-cases tokens (dictionary lookups are case-insensitive),
splits off sentence-final punctuation (which also signals the sentence
pattern: ``?`` marks questions for the classifier), and keeps contractions
such as ``doesn't`` as single tokens because the lexicon defines them
directly — the paper's worked example "The tree doesn't have pop method."
depends on this.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_TOKEN_RE = re.compile(r"[A-Za-z]+(?:'[A-Za-z]+)?(?:-[A-Za-z]+)*|\d+(?:\.\d+)?|[.?!,;:]")

TERMINATORS = frozenset({".", "?", "!"})


@dataclass(frozen=True, slots=True)
class TokenizedSentence:
    """A tokenised sentence.

    Attributes:
        words: lower-cased word tokens, punctuation removed.
        terminator: final punctuation mark ("." / "?" / "!") or "" if none.
        raw: the original text.
    """

    words: tuple[str, ...]
    terminator: str
    raw: str

    @property
    def is_question_marked(self) -> bool:
        """True when the sentence ends in a question mark."""
        return self.terminator == "?"

    def __len__(self) -> int:
        return len(self.words)


def tokenize(text: str) -> TokenizedSentence:
    """Tokenise one sentence of chat text.

    >>> tokenize("The tree doesn't have pop method.").words
    ('the', 'tree', "doesn't", 'have', 'pop', 'method')
    >>> tokenize("What is Stack?").terminator
    '?'
    """
    tokens = _TOKEN_RE.findall(text)
    terminator = ""
    while tokens and tokens[-1] in TERMINATORS:
        terminator = tokens[-1]
        tokens.pop()
    words = tuple(token.lower() for token in tokens if token not in {",", ";", ":"} | TERMINATORS)
    return TokenizedSentence(words=words, terminator=terminator, raw=text)


def split_sentences(text: str) -> list[str]:
    """Split a chat message into sentences on terminal punctuation.

    >>> split_sentences("I see. What is Stack?")
    ['I see.', 'What is Stack?']
    """
    parts = re.split(r"(?<=[.?!])\s+", text.strip())
    return [part for part in (p.strip() for p in parts) if part]
