"""The formula language of link-grammar dictionaries.

A word's linking requirement is a boolean-like expression over connectors:

* ``&`` — both sides must be satisfied, in order (near links first);
* ``or`` — exactly one side is satisfied;
* ``(...)`` — grouping, or the empty formula ``()``;
* ``{...}`` — optional sub-formula (equivalent to ``(... or ())``);
* ``[...]`` — cost bracket: satisfying the bracketed formula adds 1 to the
  disjunct cost, demoting unlikely usages when ranking parses.

``&`` binds tighter than ``or``, as in the CMU dictionaries.  The paper
(section 2.1) uses exactly this notation, e.g. ``D- & (S+ or O-)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator

from .connector import Connector, ConnectorError


class FormulaError(ValueError):
    """Raised when a formula expression cannot be parsed."""


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class for formula AST nodes."""

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants, pre-order."""
        yield self


@dataclass(frozen=True, slots=True)
class Leaf(Expr):
    """A single connector requirement."""

    connector: Connector

    def __str__(self) -> str:
        return str(self.connector)


@dataclass(frozen=True, slots=True)
class Empty(Expr):
    """The empty formula ``()``: satisfied by linking nothing."""

    def __str__(self) -> str:
        return "()"


@dataclass(frozen=True, slots=True)
class And(Expr):
    """Conjunction: every operand must be satisfied, left to right."""

    parts: tuple[Expr, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        return "(" + " & ".join(str(p) for p in self.parts) + ")"

    def walk(self) -> Iterator[Expr]:
        yield self
        for part in self.parts:
            yield from part.walk()


@dataclass(frozen=True, slots=True)
class Or(Expr):
    """Disjunction: exactly one operand is satisfied."""

    parts: tuple[Expr, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        return "(" + " or ".join(str(p) for p in self.parts) + ")"

    def walk(self) -> Iterator[Expr]:
        yield self
        for part in self.parts:
            yield from part.walk()


@dataclass(frozen=True, slots=True)
class Opt(Expr):
    """Optional sub-formula ``{...}``."""

    inner: Expr

    def __str__(self) -> str:
        return "{" + str(self.inner) + "}"

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.inner.walk()


@dataclass(frozen=True, slots=True)
class Cost(Expr):
    """Cost bracket ``[...]``: adds 1 to the cost of any satisfaction."""

    inner: Expr

    def __str__(self) -> str:
        return "[" + str(self.inner) + "]"

    def walk(self) -> Iterator[Expr]:
        yield self
        yield from self.inner.walk()


_TOKEN_RE = re.compile(
    r"""
    (?P<connector>@?[A-Z]+[a-z*]*[+-])
  | (?P<or>\bor\b)
  | (?P<and>&)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise FormulaError(f"unexpected character {text[pos]!r} at offset {pos} in formula {text!r}")
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            tokens.append((kind, match.group()))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser for the formula language."""

    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._index = 0

    def _peek(self) -> str | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index][0]
        return None

    def _next(self) -> tuple[str, str]:
        if self._index >= len(self._tokens):
            raise FormulaError(f"unexpected end of formula: {self._source!r}")
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str) -> None:
        got, text = self._next()
        if got != kind:
            raise FormulaError(f"expected {kind}, got {text!r} in formula {self._source!r}")

    def parse(self) -> Expr:
        expr = self._parse_or()
        if self._index != len(self._tokens):
            leftover = self._tokens[self._index][1]
            raise FormulaError(f"trailing input {leftover!r} in formula {self._source!r}")
        return expr

    def _parse_or(self) -> Expr:
        parts = [self._parse_and()]
        while self._peek() == "or":
            self._next()
            parts.append(self._parse_and())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def _parse_and(self) -> Expr:
        parts = [self._parse_unit()]
        while self._peek() == "and":
            self._next()
            parts.append(self._parse_unit())
        if len(parts) == 1:
            return parts[0]
        return And(tuple(parts))

    def _parse_unit(self) -> Expr:
        kind, text = self._next()
        if kind == "connector":
            try:
                return Leaf(Connector.parse(text))
            except ConnectorError as exc:
                raise FormulaError(str(exc)) from exc
        if kind == "lparen":
            if self._peek() == "rparen":
                self._next()
                return Empty()
            inner = self._parse_or()
            self._expect("rparen")
            return inner
        if kind == "lbrace":
            inner = self._parse_or()
            self._expect("rbrace")
            return Opt(inner)
        if kind == "lbracket":
            inner = self._parse_or()
            self._expect("rbracket")
            return Cost(inner)
        raise FormulaError(f"unexpected token {text!r} in formula {self._source!r}")


def parse_formula(text: str) -> Expr:
    """Parse a dictionary formula into its AST.

    >>> str(parse_formula("{@A-} & D- & (S+ or O-)"))
    '({@A-} & D- & (S+ or O-))'
    """
    tokens = _tokenize(text)
    if not tokens:
        raise FormulaError("empty formula")
    return _Parser(tokens, text).parse()
