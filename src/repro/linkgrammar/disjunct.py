"""Disjunctive form of link-grammar formulas.

The paper (section 2.1) describes the alternate representation used by the
parsing algorithm: each word carries a set of *disjuncts*

    ``((L1, L2, ..., Lm)(Rn, R(n-1), ..., R1))``

where the ``Li`` connect leftward and the ``Rj`` rightward.  Within one
disjunct the connectors of each side are ordered by partner distance; we
store both tuples **farthest-partner-first**, which lets the parser consume
the head of each tuple when linking a word to the far boundary of a region.

A formula is converted to disjuncts by enumerating all the ways it can be
satisfied (the paper: "Enumerating all ways that the formula can be
satisfied translates a formula into a set of disjuncts").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

from .connector import Connector, LEFT, RIGHT
from .formula import And, Cost, Empty, Expr, Leaf, Opt, Or


@dataclass(frozen=True, slots=True)
class Disjunct:
    """One way a word's linking requirements may be satisfied.

    Attributes:
        left: connectors linking leftward, farthest partner first.
        right: connectors linking rightward, farthest partner first.
        cost: total cost collected from ``[...]`` brackets on the
            satisfied branches; low-cost parses are preferred.
    """

    left: tuple[Connector, ...] = field(default_factory=tuple)
    right: tuple[Connector, ...] = field(default_factory=tuple)
    cost: int = 0

    def __str__(self) -> str:
        lefts = ", ".join(str(c) for c in reversed(self.left))
        rights = ", ".join(str(c) for c in self.right)
        suffix = f" [cost={self.cost}]" if self.cost else ""
        return f"(({lefts})({rights})){suffix}"

    @property
    def connector_count(self) -> int:
        """Total number of connectors in this disjunct."""
        return len(self.left) + len(self.right)

    def in_formula_order(self) -> tuple[Connector, ...]:
        """All connectors in formula (near-to-far, lefts then rights) order."""
        return tuple(reversed(self.left)) + tuple(reversed(self.right))


def _satisfactions(expr: Expr) -> list[tuple[tuple[Connector, ...], int]]:
    """All (ordered connector sequence, cost) ways of satisfying ``expr``.

    Sequences are in formula order: near partners before far partners,
    reading the formula left to right (the "ordering" meta-rule).
    """
    if isinstance(expr, Empty):
        return [((), 0)]
    if isinstance(expr, Leaf):
        return [((expr.connector,), 0)]
    if isinstance(expr, Opt):
        return [((), 0)] + _satisfactions(expr.inner)
    if isinstance(expr, Cost):
        return [(seq, cost + 1) for seq, cost in _satisfactions(expr.inner)]
    if isinstance(expr, Or):
        result: list[tuple[tuple[Connector, ...], int]] = []
        for part in expr.parts:
            result.extend(_satisfactions(part))
        return result
    if isinstance(expr, And):
        combined: list[tuple[tuple[Connector, ...], int]] = [((), 0)]
        for part in expr.parts:
            part_ways = _satisfactions(part)
            combined = [
                (seq + part_seq, cost + part_cost)
                for seq, cost in combined
                for part_seq, part_cost in part_ways
            ]
        return combined
    raise TypeError(f"unknown formula node: {expr!r}")


def expand(expr: Expr) -> tuple[Disjunct, ...]:
    """Expand a formula into its set of disjuncts.

    Duplicate satisfactions keep only the cheapest cost.  The result is
    sorted by (cost, connector count, text) so parse enumeration is
    deterministic.
    """
    best: dict[tuple[tuple[Connector, ...], tuple[Connector, ...]], int] = {}
    for sequence, cost in _satisfactions(expr):
        lefts_near_first = tuple(c for c in sequence if c.direction == LEFT)
        rights_near_first = tuple(c for c in sequence if c.direction == RIGHT)
        key = (tuple(reversed(lefts_near_first)), tuple(reversed(rights_near_first)))
        if key not in best or cost < best[key]:
            best[key] = cost
    disjuncts = [Disjunct(left=left, right=right, cost=cost) for (left, right), cost in best.items()]
    disjuncts.sort(key=lambda d: (d.cost, d.connector_count, str(d)))
    return tuple(disjuncts)


@lru_cache(maxsize=4096)
def expand_cached(expr: Expr) -> tuple[Disjunct, ...]:
    """Memoised :func:`expand`; formula ASTs are immutable and hashable."""
    return expand(expr)
