"""Concrete sentence repair: from diagnosis to suggested corrections.

The paper's abstract promises that the system "can thus give some
correction suggestions to users"; beyond pointing at corpus model
sentences, this module proposes *edits to the learner's own sentence*:

* delete an unlinkable word;
* insert a determiner before a bare singular noun;
* replace a word with another inflection of the same base (fixing
  subject-verb agreement and number errors);
* swap adjacent words (fixing local word-order slips).

Candidates are generated around the diagnosed trouble spots, re-parsed,
and only candidates that parse strictly better (fewer nulls, then lower
cost) are offered, best first.  The search is bounded, so repair stays
interactive-fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import ParseCacheStore
from .dictionary import Dictionary
from .lexicon.builder import pluralize, verb_forms
from .parser import ParseOptions, Parser
from .tokenizer import TokenizedSentence, tokenize


@dataclass(frozen=True, slots=True)
class Repair:
    """One suggested correction.

    Attributes:
        text: the repaired sentence.
        edit: human-readable description of the edit.
        null_count: nulls of the repaired parse (0 = fully grammatical).
        cost: parse cost of the repaired parse.
    """

    text: str
    edit: str
    null_count: int
    cost: int

    def sort_key(self) -> tuple[int, int, int]:
        return (self.null_count, self.cost, len(self.text))


class SentenceRepairer:
    """Bounded search over single-edit repairs of a faulty sentence."""

    def __init__(
        self,
        dictionary: Dictionary,
        max_candidates: int = 60,
        max_results: int = 3,
        options: ParseOptions | None = None,
        cache_store: ParseCacheStore | None = None,
    ) -> None:
        self.dictionary = dictionary
        # Repair only reads null_count / linkage presence / best cost,
        # and enumeration stops at max(max_linkages * 4, 256) linkages
        # *before* cost-sorting — so every ``max_linkages`` up to 64
        # enumerates the identical 256-linkage window and produces
        # identical repairs.  Callers that share a cache store pass
        # their own options so both components carry the same key
        # fingerprint and really share; above 64 the window (and hence
        # possibly the best cost) changes, which LearningAngelAgent
        # guards against by falling back to the default options.
        self.parser = Parser(
            dictionary, options or ParseOptions(max_linkages=8), cache_store=cache_store
        )
        self.max_candidates = max_candidates
        self.max_results = max_results
        self._variant_cache: dict[str, tuple[str, ...]] = {}

    # ----------------------------------------------------------------- API

    def repair(self, text: str | TokenizedSentence) -> list[Repair]:
        """Suggest up to ``max_results`` single-edit corrections.

        Accepts raw or pre-tokenised input.  Returns an empty list when
        the sentence is already fully grammatical or nothing parses
        better.
        """
        sentence = tokenize(text) if isinstance(text, str) else text
        baseline = self.parser.parse(sentence)
        base_cost = baseline.best.cost if baseline.best else 0
        base_key = (baseline.null_count, base_cost)
        if baseline.null_count == 0 and not baseline.unknown_words and base_cost == 0:
            return []
        words = list(sentence.words)
        terminator = sentence.terminator
        if not words:
            return []
        trouble = self._trouble_spots(baseline, len(words))
        repairs: list[Repair] = []
        seen: set[str] = set()
        for candidate, edit in self._candidates(words, terminator, trouble):
            if candidate in seen or candidate.lower() == sentence.raw.lower():
                continue
            seen.add(candidate)
            result = self.parser.parse(candidate)
            if result.unknown_words:
                continue
            # A repair must be *fully* grammatical — a partial improvement
            # would still draw a Learning_Angel warning.
            key = (result.null_count, result.best.cost if result.best else 0)
            if result.null_count == 0 and result.linkages and key < base_key:
                repairs.append(
                    Repair(
                        text=candidate,
                        edit=edit,
                        null_count=0,
                        cost=result.best.cost if result.best else 0,
                    )
                )
            if len(seen) >= self.max_candidates:
                break
        repairs.sort(key=Repair.sort_key)
        return repairs[: self.max_results]

    # ------------------------------------------------------------ internal

    def _trouble_spots(self, baseline, n_words: int) -> list[int]:
        """Word positions to edit around: null words (or everywhere when
        the parse collapsed)."""
        best = baseline.best
        offset = 1 if baseline.has_wall else 0
        if best is None or len(best.null_words) > max(1, n_words // 2):
            return list(range(n_words))
        positions = sorted(
            index - offset for index in best.null_words if index - offset >= 0
        )
        # Include neighbours: the unlinkable word is sometimes fine and its
        # neighbour is the real problem (agreement).
        expanded: list[int] = []
        for position in positions:
            for candidate in (position - 1, position, position + 1):
                if 0 <= candidate < n_words and candidate not in expanded:
                    expanded.append(candidate)
        return expanded or list(range(n_words))

    def _candidates(self, words: list[str], terminator: str, trouble: list[int]):
        """Yield (candidate sentence, edit description) pairs."""

        def render(tokens: list[str]) -> str:
            sentence = " ".join(tokens)
            return (sentence[:1].upper() + sentence[1:] + terminator) if sentence else ""

        for position in trouble:
            word = words[position]
            # 1. Delete the word.
            reduced = words[:position] + words[position + 1 :]
            if reduced:
                yield render(reduced), f"remove '{word}'"
            # 2. Replace with an inflectional variant.
            for variant in self._variants(word):
                changed = list(words)
                changed[position] = variant
                yield render(changed), f"change '{word}' to '{variant}'"
            # 3. Insert a determiner before the word.
            if word not in ("a", "an", "the"):
                for determiner in ("the", "a"):
                    inserted = words[:position] + [determiner] + words[position:]
                    yield render(inserted), f"insert '{determiner}' before '{word}'"
            # 4. Swap with the next word.
            if position + 1 < len(words):
                swapped = list(words)
                swapped[position], swapped[position + 1] = (
                    swapped[position + 1],
                    swapped[position],
                )
                yield render(swapped), f"swap '{word}' and '{words[position + 1]}'"

    def _variants(self, word: str) -> tuple[str, ...]:
        """Other known inflections sharing this word's base."""
        cached = self._variant_cache.get(word)
        if cached is not None:
            return cached
        variants: list[str] = []
        lower = word.lower()
        if lower in _CLOSED_CLASS_WORDS:
            # Function words only swap via the explicit table below;
            # morphology rules misfire on them ("the" -> "thing").
            unique = tuple(
                swap_to
                for swap_from, swap_to in _CLOSED_CLASS_SWAPS
                if lower == swap_from and self.dictionary.is_known(swap_to)
            )
            self._variant_cache[word] = unique
            return unique
        # Noun number: singular <-> plural.
        plural = pluralize(lower)
        if plural != lower and self.dictionary.is_known(plural):
            variants.append(plural)
        if lower.endswith("s"):
            singular = lower[:-1]
            if self.dictionary.is_known(singular) and pluralize(singular) == lower:
                variants.append(singular)
        # Verb forms of this word (as base) and bases this word inflects.
        third, past, participle, gerund = verb_forms(lower)
        for form in (third, past, participle, gerund):
            if form != lower and self.dictionary.is_known(form):
                variants.append(form)
        for swap_from, swap_to in _CLOSED_CLASS_SWAPS:
            if lower == swap_from and self.dictionary.is_known(swap_to):
                variants.append(swap_to)
        unique = tuple(dict.fromkeys(variants))
        self._variant_cache[word] = unique
        return unique


_CLOSED_CLASS_WORDS = frozenset(
    {
        "a", "an", "the", "this", "that", "these", "those", "is", "are",
        "was", "were", "has", "have", "does", "do", "did", "doesn't",
        "don't", "not", "to", "of", "in", "on", "at", "into", "onto",
        "from", "with", "by", "for", "and", "or", "we", "i", "you",
        "they", "he", "she", "it",
    }
)

_CLOSED_CLASS_SWAPS = [
    ("is", "are"), ("are", "is"), ("was", "were"), ("were", "was"),
    ("has", "have"), ("have", "has"), ("does", "do"), ("do", "does"),
    ("doesn't", "don't"), ("don't", "doesn't"), ("a", "an"), ("an", "a"),
    ("this", "these"), ("these", "this"), ("that", "those"), ("those", "that"),
]
