"""Fault-tolerant grammar analysis on top of the core parser.

The paper's Learning_Angel needs more than accept/reject: non-native
learners produce noisy English, so the "enhanced" parser must localise
problems and describe them (section 4.2's *Label analysis & filter*,
section 5's fault-tolerance discussion).  This module turns raw
:class:`~repro.linkgrammar.parser.ParseResult` objects into structured
:class:`GrammarDiagnosis` reports:

* unknown words (out of the restricted domain vocabulary, section 4.1);
* null words — positions the best linkage could not incorporate;
* meta-rule violations, if a candidate linkage breaks planarity,
  connectivity, ordering or exclusion (should not happen for parser
  output; checked as a safety net and exposed for adversarial tests);
* heuristic repair hints (e.g. a bare singular noun missing a determiner).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .cache import ParseCacheStore
from .dictionary import Dictionary
from .parser import ParseOptions, ParseResult, Parser
from .tokenizer import TokenizedSentence


class ErrorKind(Enum):
    """Categories of syntax problems the supervisor reports."""

    UNKNOWN_WORD = "unknown-word"
    UNLINKED_WORD = "unlinked-word"
    NO_PARSE = "no-parse"
    META_RULE = "meta-rule-violation"
    EMPTY = "empty-sentence"
    STYLE = "style"


@dataclass(frozen=True, slots=True)
class SyntaxIssue:
    """One localised syntax problem.

    Attributes:
        kind: the issue category.
        word: surface form involved, or "" for sentence-level issues.
        position: index into the *sentence* tokens (wall excluded), or -1.
        message: human-readable explanation for the learner.
    """

    kind: ErrorKind
    word: str
    position: int
    message: str


@dataclass(frozen=True, slots=True)
class GrammarDiagnosis:
    """Full syntax report for one sentence.

    Attributes:
        result: the underlying parse result.
        issues: localised problems, sentence order.
        is_correct: True when the sentence parsed fully with known words.
    """

    result: ParseResult
    issues: tuple[SyntaxIssue, ...] = field(default_factory=tuple)

    @property
    def is_correct(self) -> bool:
        """True when nothing worse than a style hint was found."""
        return all(issue.kind == ErrorKind.STYLE for issue in self.issues)

    @property
    def style_only(self) -> bool:
        """True when the only findings are style hints (missing article)."""
        return bool(self.issues) and self.is_correct

    @property
    def error_kinds(self) -> tuple[ErrorKind, ...]:
        return tuple(dict.fromkeys(issue.kind for issue in self.issues))

    def summary(self) -> str:
        """One-line summary suitable for a chat-room agent reply."""
        if self.is_correct:
            return "No syntax problems found."
        parts = [issue.message for issue in self.issues]
        return " ".join(parts)


class RobustAnalyzer:
    """Parses sentences and produces :class:`GrammarDiagnosis` reports."""

    def __init__(
        self,
        dictionary: Dictionary,
        options: ParseOptions | None = None,
        cache_store: ParseCacheStore | None = None,
    ) -> None:
        self.dictionary = dictionary
        self.parser = Parser(dictionary, options or ParseOptions(), cache_store=cache_store)

    def analyze(self, text: str | TokenizedSentence) -> GrammarDiagnosis:
        """Parse ``text`` (raw or pre-tokenised) and collect localised
        syntax issues."""
        result = self.parser.parse(text)
        issues: list[SyntaxIssue] = []
        offset = 1 if result.has_wall else 0
        tokens = result.sentence.words

        if not tokens:
            issues.append(
                SyntaxIssue(ErrorKind.EMPTY, "", -1, "The sentence contains no words.")
            )
            return GrammarDiagnosis(result=result, issues=tuple(issues))

        for position, token in enumerate(tokens):
            if not self.dictionary.is_known(token):
                issues.append(
                    SyntaxIssue(
                        ErrorKind.UNKNOWN_WORD,
                        token,
                        position,
                        f"The word '{token}' is not in the course vocabulary.",
                    )
                )

        best = result.best
        if best is None:
            issues.append(
                SyntaxIssue(
                    ErrorKind.NO_PARSE,
                    "",
                    -1,
                    "The sentence could not be parsed at all.",
                )
            )
            return GrammarDiagnosis(result=result, issues=tuple(issues))

        if result.null_count > max(1, len(tokens) // 2):
            # The parse collapsed: most words could not be linked, so
            # per-word localisation would be noise.  Report once.
            issues.append(
                SyntaxIssue(
                    ErrorKind.NO_PARSE,
                    "",
                    -1,
                    "The sentence structure could not be understood; "
                    "please try a simpler sentence.",
                )
            )
            issues.sort(key=lambda issue: (issue.position, issue.kind.value))
            return GrammarDiagnosis(result=result, issues=tuple(issues))

        if result.null_count > 0:
            for index in sorted(best.null_words):
                position = index - offset
                if position < 0:
                    # The virtual wall went unlinked: the sentence has no
                    # recognisable head (declarative, question, imperative).
                    issues.append(
                        SyntaxIssue(
                            ErrorKind.UNLINKED_WORD,
                            "",
                            -1,
                            "The sentence does not start like a statement, "
                            "question, or instruction.",
                        )
                    )
                    continue
                word = tokens[position]
                issues.append(
                    SyntaxIssue(
                        ErrorKind.UNLINKED_WORD,
                        word,
                        position,
                        f"The word '{word}' does not fit the grammar of the "
                        f"rest of the sentence{self._hint(word, position, tokens)}.",
                    )
                )

        if not issues and result.null_count == 0 and best.cost > 0:
            # Parsed cleanly but only by paying formula costs — typically a
            # dropped article ("The tree doesn't have pop method").  The
            # paper tolerates these (the Semantic Agent still runs), but
            # the supervisor notes them as style hints.
            issues.append(
                SyntaxIssue(
                    ErrorKind.STYLE,
                    "",
                    -1,
                    "The sentence reads like learner English "
                    "(an article such as 'a' or 'the' may be missing).",
                )
            )

        violations = best.validate()
        if violations:
            issues.append(
                SyntaxIssue(
                    ErrorKind.META_RULE,
                    "",
                    -1,
                    "Linkage violates meta-rules: " + ", ".join(violations) + ".",
                )
            )

        issues.sort(key=lambda issue: (issue.position, issue.kind.value))
        return GrammarDiagnosis(result=result, issues=tuple(issues))

    def _hint(self, word: str, position: int, tokens: tuple[str, ...]) -> str:
        """A short repair hint appended to an unlinked-word message."""
        entry = self.dictionary.lookup_exact(word)
        if entry is None:
            return ""
        heads_minus = {c.head for d in entry.disjuncts for c in d.left}
        if "D" in heads_minus and (position == 0 or tokens[position - 1] not in _DETERMINERS):
            return " (did you forget 'a' or 'the' before it?)"
        heads_plus = {c.head for d in entry.disjuncts for c in d.right}
        if "S" in heads_plus:
            return " (check the verb that should follow it)"
        if "S" in heads_minus:
            return " (check subject-verb agreement)"
        return ""


_DETERMINERS = frozenset(
    {"a", "an", "the", "this", "that", "these", "those", "my", "your", "its",
     "our", "their", "every", "each", "some", "any", "no", "one", "two", "three"}
)
