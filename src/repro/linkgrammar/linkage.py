"""Linkages: complete link structures over a sentence.

A linkage assigns every linked word one of its disjuncts and draws labelled
links between word pairs so that (paper, section 2.1):

* **Planarity** — links drawn above the sentence do not cross;
* **Connectivity** — the links connect all (linked) words together;
* **Ordering** — each word's links on a side, read near-to-far, use its
  disjunct connectors in formula order;
* **Exclusion** — no two links connect the same pair of words.

The *enhanced* parser of the paper tolerates unlinked ("null") words, which
is how grammar errors are localised; a linkage therefore also records which
word positions are null.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .connector import Connector, link_label
from .disjunct import Disjunct


@dataclass(frozen=True, slots=True)
class Link:
    """A single labelled link between word positions ``left`` < ``right``."""

    left: int
    right: int
    label: str
    left_connector: Connector | None = None
    right_connector: Connector | None = None

    def __post_init__(self) -> None:
        if self.left >= self.right:
            raise ValueError(f"link endpoints out of order: {self.left} >= {self.right}")

    @classmethod
    def from_connectors(cls, left: int, right: int, plus: Connector, minus: Connector) -> "Link":
        """Build a link from the matched connector pair."""
        return cls(
            left=left,
            right=right,
            label=link_label(plus, minus),
            left_connector=plus,
            right_connector=minus,
        )

    def crosses(self, other: "Link") -> bool:
        """True if this link and ``other`` would cross when drawn above."""
        a, b = sorted((self, other), key=lambda link: (link.left, link.right))
        return a.left < b.left < a.right < b.right

    def spans(self) -> tuple[int, int]:
        return (self.left, self.right)


@dataclass(frozen=True, slots=True)
class Linkage:
    """A parse of a sentence: links plus per-word disjunct assignments.

    Attributes:
        words: the sentence tokens, including the virtual wall at index 0.
        links: the labelled links, sorted by (left, right).
        disjuncts: per word, the satisfied disjunct or None for null words.
        cost: total disjunct cost (from ``[...]`` brackets in formulas).
        null_words: indices of words left unlinked by the robust parser.
    """

    words: tuple[str, ...]
    links: tuple[Link, ...]
    disjuncts: tuple[Disjunct | None, ...] = field(default_factory=tuple)
    cost: int = 0
    null_words: frozenset[int] = frozenset()

    @property
    def null_count(self) -> int:
        """Number of unlinked words (0 for a fully grammatical parse)."""
        return len(self.null_words)

    @property
    def total_link_length(self) -> int:
        """Sum of link spans; shorter totals are preferred as tie-breaks."""
        return sum(link.right - link.left for link in self.links)

    def sort_key(self) -> tuple[int, int, int]:
        """Canonical ranking: fewest nulls, lowest cost, shortest links."""
        return (self.null_count, self.cost, self.total_link_length)

    def links_at(self, index: int) -> list[Link]:
        """All links touching the word at ``index``."""
        return [link for link in self.links if index in (link.left, link.right)]

    def partner_labels(self, index: int) -> list[tuple[str, int]]:
        """(label, partner index) pairs for the word at ``index``."""
        result = []
        for link in self.links:
            if link.left == index:
                result.append((link.label, link.right))
            elif link.right == index:
                result.append((link.label, link.left))
        return result

    def is_planar(self) -> bool:
        """Meta-rule check: no two links cross."""
        for i, first in enumerate(self.links):
            for second in self.links[i + 1 :]:
                if first.crosses(second):
                    return False
        return True

    def is_connected(self) -> bool:
        """Meta-rule check: links connect all non-null words together."""
        linked = [i for i in range(len(self.words)) if i not in self.null_words]
        if len(linked) <= 1:
            return True
        adjacency: dict[int, set[int]] = {i: set() for i in linked}
        for link in self.links:
            adjacency.setdefault(link.left, set()).add(link.right)
            adjacency.setdefault(link.right, set()).add(link.left)
        seen = {linked[0]}
        stack = [linked[0]]
        while stack:
            node = stack.pop()
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return all(word in seen for word in linked)

    def satisfies_exclusion(self) -> bool:
        """Meta-rule check: no duplicated word pair among the links."""
        pairs = [link.spans() for link in self.links]
        return len(pairs) == len(set(pairs))

    def satisfies_ordering(self) -> bool:
        """Meta-rule check: per-word link distances respect disjunct order.

        For every linked word, the partners on each side, sorted by the
        order the connectors appear in the disjunct (farthest first), must
        be monotonically decreasing in distance.
        """
        for index, disjunct in enumerate(self.disjuncts):
            if disjunct is None:
                continue
            left_partners = sorted(
                (link.left for link in self.links if link.right == index),
                reverse=False,
            )
            right_partners = sorted(
                (link.right for link in self.links if link.left == index),
                reverse=True,
            )
            multi_left = sum(1 for c in disjunct.left if c.multi)
            multi_right = sum(1 for c in disjunct.right if c.multi)
            if not multi_left and len(left_partners) != len(disjunct.left):
                return False
            if not multi_right and len(right_partners) != len(disjunct.right):
                return False
            if multi_left and len(left_partners) < len(disjunct.left):
                return False
            if multi_right and len(right_partners) < len(disjunct.right):
                return False
        return True

    def validate(self) -> list[str]:
        """All violated meta-rules, by name; empty when fully valid."""
        violations = []
        if not self.is_planar():
            violations.append("planarity")
        if not self.is_connected():
            violations.append("connectivity")
        if not self.satisfies_ordering():
            violations.append("ordering")
        if not self.satisfies_exclusion():
            violations.append("exclusion")
        return violations

    def link_summary(self) -> str:
        """Compact one-line rendering, e.g. ``D(the,cat) S(cat,chased)``."""
        parts = []
        for link in sorted(self.links, key=lambda l: (l.left, l.right)):
            parts.append(f"{link.label}({self.words[link.left]},{self.words[link.right]})")
        return " ".join(parts)
