"""Link-grammar dictionaries: words and their linking requirements.

A dictionary maps word forms to formulas (see :mod:`repro.linkgrammar.formula`)
and expands them to disjuncts on demand.  Dictionaries can be built
programmatically (:meth:`Dictionary.define`) or loaded from the classic
dictionary text format used by the CMU parser, e.g.::

    % words and their linking requirements (Fig. 1 of the paper)
    a the: D+;
    cat mouse: {@A-} & D- & (S+ or O-);
    John: S+ or O-;
    ran: S-;
    chased: S- & O+;

Entries are ``word [word ...]: formula;`` and ``%`` starts a comment.
Two special word names configure behaviour:

* ``<UNKNOWN>`` — formula assigned to out-of-vocabulary tokens, letting the
  fault-tolerant parser keep going while flagging the token;
* ``<WALL>`` — the left wall, a virtual 0th word whose connectors anchor
  the sentence head (declaratives, questions, imperatives).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .cache import ParseCacheStore
from .disjunct import Disjunct, expand_cached
from .formula import Expr, FormulaError, Or, parse_formula
from .interning import ParseTables

UNKNOWN_WORD = "<UNKNOWN>"
WALL_WORD = "<WALL>"


class DictionaryError(ValueError):
    """Raised for malformed dictionary sources or duplicate definitions."""


@dataclass(slots=True)
class WordEntry:
    """A dictionary entry: a word form, its formula and its disjuncts."""

    word: str
    formula: Expr
    disjuncts: tuple[Disjunct, ...] = field(default_factory=tuple)

    @classmethod
    def from_formula(cls, word: str, formula: Expr) -> "WordEntry":
        # expand_cached: identical formulas (shared across word lists and
        # across dictionary rebuilds) expand to disjuncts exactly once.
        return cls(word=word, formula=formula, disjuncts=expand_cached(formula))


class Dictionary:
    """A mutable mapping from word forms to linking requirements.

    Lookups are case-insensitive (chat text is noisy); words are stored
    lower-cased.  Redefining a word merges the new formula with ``or`` so
    lexicon layers can extend earlier ones.
    """

    #: Entry bound of the per-dictionary shared parse cache.  Larger than
    #: a private parser cache (256): the shared store also absorbs the
    #: repairer's candidate parses without evicting hot chat sentences.
    SHARED_CACHE_ENTRIES = 2048

    def __init__(self, name: str = "anonymous") -> None:
        self.name = name
        self._entries: dict[str, WordEntry] = {}
        self._version = 0
        self._tables: ParseTables | None = None
        self._tables_version = -1
        self._tables_lock = threading.Lock()
        self._shared_cache: ParseCacheStore | None = None

    def __getstate__(self) -> dict:
        """Pickle only the lexicon itself.

        The interned parse tables, their build lock and the shared parse
        cache are process-local machinery: the tables hold identity-keyed
        connector match tables that would be both large and useless in
        another process, the lock is unpicklable by definition, and a
        cache full of another process's hot sentences is dead weight.
        All three are rebuilt lazily on the other side from the entries
        and the generation counter, exactly as they were built here.
        """
        state = self.__dict__.copy()
        state["_tables"] = None
        state["_tables_version"] = -1
        state["_shared_cache"] = None
        del state["_tables_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._tables_lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, word: str) -> bool:
        return word.lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def words(self) -> list[str]:
        """All defined word forms, sorted."""
        return sorted(self._entries)

    def define(self, words: str | Iterable[str], formula: str | Expr) -> None:
        """Define (or extend) one or more word forms with a formula.

        Args:
            words: a single word, a space-separated string of words, or an
                iterable of words — mirroring the file format's word lists.
            formula: formula source text or a pre-parsed AST.
        """
        if isinstance(words, str):
            word_list = words.split()
        else:
            word_list = list(words)
        if not word_list:
            raise DictionaryError("no words given")
        expr = parse_formula(formula) if isinstance(formula, str) else formula
        for word in word_list:
            key = word.lower()
            existing = self._entries.get(key)
            if existing is None:
                self._entries[key] = WordEntry.from_formula(key, expr)
            else:
                merged = Or((existing.formula, expr))
                self._entries[key] = WordEntry.from_formula(key, merged)
        self._version += 1

    def lookup(self, word: str) -> WordEntry | None:
        """The entry for ``word``, or the ``<UNKNOWN>`` entry, or None."""
        entry = self._entries.get(word.lower())
        if entry is not None:
            return entry
        return self._entries.get(UNKNOWN_WORD.lower())

    def lookup_exact(self, word: str) -> WordEntry | None:
        """The entry for ``word`` with no unknown-word fallback."""
        return self._entries.get(word.lower())

    def is_known(self, word: str) -> bool:
        """True if ``word`` is defined (ignoring the unknown-word fallback)."""
        return word.lower() in self._entries

    @property
    def wall_entry(self) -> WordEntry | None:
        """The left-wall entry, if this dictionary defines one."""
        return self._entries.get(WALL_WORD.lower())

    @property
    def version(self) -> int:
        """Generation counter, bumped by every :meth:`define`.

        Consumers that cache derived structures (the parse tables below,
        the parser's sentence cache) key them by this counter so a
        mutated dictionary never serves stale answers.
        """
        return self._version

    @property
    def tables(self) -> ParseTables:
        """The interned-connector parse tables for the current generation.

        Built lazily on first parse and rebuilt only when the dictionary
        changes; every parse session of the same generation shares one
        instance.
        """
        if self._tables is None or self._tables_version != self._version:
            # Parallel-mode pool threads may race the first build after a
            # generation bump; the lock keeps it to one rebuild.  Assign
            # the tables before the version so a lock-free reader never
            # pairs fresh version with stale tables.
            with self._tables_lock:
                if self._tables is None or self._tables_version != self._version:
                    self._tables = ParseTables.build(
                        {word: entry.disjuncts for word, entry in self._entries.items()}
                    )
                    self._tables_version = self._version
        return self._tables

    def shared_cache_store(self, max_entries: int | None = None) -> ParseCacheStore:
        """The dictionary-scoped :class:`ParseCacheStore` shared by consumers.

        Created lazily on first request and handed to every later caller,
        so all parsers that opt in (Learning_Angel's analyzer, the
        sentence repairer, any future component) hit one store.  The
        store purges itself whenever this dictionary's generation moves,
        so sharing never serves stale parses.
        """
        if self._shared_cache is None:
            self._shared_cache = ParseCacheStore(
                self.SHARED_CACHE_ENTRIES if max_entries is None else max_entries
            )
        return self._shared_cache

    def disjunct_count(self) -> int:
        """Total number of disjuncts across all entries (a size metric).

        The ablation benchmark uses this to measure the dictionary
        maintenance cost of the paper's rejected Semantic-Link-Grammar
        methodology against the ontology methodology.
        """
        return sum(len(entry.disjuncts) for entry in self._entries.values())

    def merge(self, other: "Dictionary") -> None:
        """Fold every entry of ``other`` into this dictionary."""
        for key, entry in other._entries.items():
            self.define(key, entry.formula)

    @classmethod
    def from_text(cls, source: str, name: str = "text") -> "Dictionary":
        """Parse the classic dictionary file format.

        Entries are ``word [word ...]: formula;``; ``%`` comments run to
        end of line; whitespace (including newlines) is free-form.
        """
        dictionary = cls(name=name)
        stripped_lines = []
        for line in source.splitlines():
            comment = line.find("%")
            stripped_lines.append(line if comment < 0 else line[:comment])
        body = "\n".join(stripped_lines)
        for index, raw_entry in enumerate(body.split(";")):
            entry = raw_entry.strip()
            if not entry:
                continue
            if ":" not in entry:
                raise DictionaryError(f"entry {index} has no ':' separator: {entry!r}")
            words_part, _, formula_part = entry.partition(":")
            words = words_part.split()
            if not words:
                raise DictionaryError(f"entry {index} defines no words: {entry!r}")
            if not formula_part.strip():
                raise DictionaryError(f"entry {index} has an empty formula: {entry!r}")
            try:
                dictionary.define(words, formula_part.strip())
            except FormulaError as exc:
                raise DictionaryError(f"entry {index} ({words_part.strip()!r}): {exc}") from exc
        return dictionary

    def to_text(self) -> str:
        """Serialise back to the dictionary file format (sorted by word)."""
        lines = [f"% dictionary {self.name!r}: {len(self)} words"]
        for word in self.words():
            lines.append(f"{word}: {self._entries[word].formula};")
        return "\n".join(lines) + "\n"
