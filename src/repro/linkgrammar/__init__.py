"""Link-grammar substrate: dictionary, parser, linkages, diagnostics.

This package is a from-scratch Python implementation of the link grammar
formalism (Sleator & Temperley, CMU-CS-91-196) that the paper's
Learning_Angel agent builds on, extended with the fault tolerance the paper
calls for: null-word parsing, unknown-word handling and error localisation.
"""

from .cache import ParseCacheStore
from .connector import Connector, connectors_match, link_label, subscripts_match
from .dictionary import Dictionary, DictionaryError, UNKNOWN_WORD, WALL_WORD, WordEntry
from .disjunct import Disjunct, expand
from .formula import FormulaError, parse_formula
from .interning import InternedDisjunct, ParseTables
from .linkage import Link, Linkage
from .parser import ParseOptions, ParseResult, Parser
from .repair import Repair, SentenceRepairer
from .tokenizer import TokenizedSentence, split_sentences, tokenize

__all__ = [
    "Connector",
    "connectors_match",
    "link_label",
    "subscripts_match",
    "InternedDisjunct",
    "ParseTables",
    "Dictionary",
    "DictionaryError",
    "UNKNOWN_WORD",
    "WALL_WORD",
    "WordEntry",
    "Disjunct",
    "expand",
    "FormulaError",
    "parse_formula",
    "Link",
    "Linkage",
    "ParseCacheStore",
    "ParseOptions",
    "ParseResult",
    "Parser",
    "Repair",
    "SentenceRepairer",
    "TokenizedSentence",
    "split_sentences",
    "tokenize",
]
