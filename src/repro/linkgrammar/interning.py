"""Dictionary-scoped connector interning and O(1) match tables.

The region-counting parser probes connector pairs constantly: every memo
key, pruning check and anchoring decision used to hash ``Connector``
dataclasses and re-run the padded string comparison of
:func:`~repro.linkgrammar.connector.subscripts_match`.  Profiling the
supervision pipeline showed those string probes dominating parse time.

This module precomputes, once per dictionary generation:

* an **integer id** for every distinct connector appearing in any entry's
  disjuncts (ids are dense, so plain lists serve as id-indexed tables);
* a **match table** — for each ``+`` connector id, the frozenset of ``-``
  connector ids it can link with (and the transpose), so a match probe is
  one set-membership test instead of a string walk;
* **interned disjuncts** per word entry — each disjunct re-expressed as
  tuples of connector ids, keeping a reference to its source
  :class:`~repro.linkgrammar.disjunct.Disjunct` for linkage output.

Tables are owned by :class:`~repro.linkgrammar.dictionary.Dictionary`
(see ``Dictionary.tables``), which rebuilds them when its entries change;
parse sessions only ever see one consistent generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .connector import Connector, RIGHT, subscripts_match
from .disjunct import Disjunct

_EMPTY_IDS: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class InternedDisjunct:
    """A disjunct re-expressed over interned connector ids.

    Attributes:
        left: ids of the left connectors, farthest partner first.
        right: ids of the right connectors, farthest partner first.
        left_set: ``left`` as a frozenset — power pruning checks disjunct
            viability with one C-level subset test per side.
        right_set: ``right`` as a frozenset.
        source: the original :class:`Disjunct` (cost and linkage output).
    """

    left: tuple[int, ...]
    right: tuple[int, ...]
    left_set: frozenset[int]
    right_set: frozenset[int]
    source: Disjunct


class ParseTables:
    """Interned connectors, match table and interned disjuncts.

    Build with :meth:`ParseTables.build`; instances are immutable in use
    (the parser only reads them) and valid for exactly one dictionary
    generation.
    """

    __slots__ = (
        "_ids",
        "connectors",
        "multi",
        "match_right",
        "match_left",
        "_words",
    )

    def __init__(self) -> None:
        self._ids: dict[Connector, int] = {}
        #: id -> the original connector (for building links).
        self.connectors: list[Connector] = []
        #: id -> True for ``@`` multi-connectors.
        self.multi: list[bool] = []
        #: plus id -> frozenset of minus ids it matches (empty for minus ids).
        self.match_right: list[frozenset[int]] = []
        #: minus id -> frozenset of plus ids it matches (empty for plus ids).
        self.match_left: list[frozenset[int]] = []
        #: defining word -> interned disjuncts, same order as the entry's.
        self._words: dict[str, tuple[InternedDisjunct, ...]] = {}

    # ------------------------------------------------------------ building

    @classmethod
    def build(cls, entries: dict[str, tuple[Disjunct, ...]]) -> "ParseTables":
        """Intern every entry's connectors and precompute the match table.

        Args:
            entries: defining word -> that word's expanded disjuncts.
        """
        tables = cls()
        for word, disjuncts in entries.items():
            interned = []
            for d in disjuncts:
                left = tuple(tables._intern(c) for c in d.left) or _EMPTY_IDS
                right = tuple(tables._intern(c) for c in d.right) or _EMPTY_IDS
                interned.append(
                    InternedDisjunct(
                        left=left,
                        right=right,
                        left_set=frozenset(left),
                        right_set=frozenset(right),
                        source=d,
                    )
                )
            tables._words[word] = tuple(interned)
        tables._compute_matches()
        return tables

    def _intern(self, connector: Connector) -> int:
        known = self._ids.get(connector)
        if known is not None:
            return known
        next_id = len(self.connectors)
        self._ids[connector] = next_id
        self.connectors.append(connector)
        self.multi.append(connector.multi)
        return next_id

    def _compute_matches(self) -> None:
        """Fill ``match_right``/``match_left`` by exhaustive head-grouped
        comparison (the only place the string matching rule still runs)."""
        by_head_plus: dict[str, list[int]] = {}
        by_head_minus: dict[str, list[int]] = {}
        for cid, connector in enumerate(self.connectors):
            bucket = by_head_plus if connector.direction == RIGHT else by_head_minus
            bucket.setdefault(connector.head, []).append(cid)
        empty: frozenset[int] = frozenset()
        self.match_right = [empty] * len(self.connectors)
        self.match_left = [empty] * len(self.connectors)
        left_sets: dict[int, set[int]] = {}
        for head, plus_ids in by_head_plus.items():
            minus_ids = by_head_minus.get(head, ())
            for plus_id in plus_ids:
                plus_sub = self.connectors[plus_id].subscript
                matched = frozenset(
                    minus_id
                    for minus_id in minus_ids
                    if subscripts_match(plus_sub, self.connectors[minus_id].subscript)
                )
                self.match_right[plus_id] = matched
                for minus_id in matched:
                    left_sets.setdefault(minus_id, set()).add(plus_id)
        for minus_id, plus_set in left_sets.items():
            self.match_left[minus_id] = frozenset(plus_set)

    # ------------------------------------------------------------- queries

    def interned(self, word: str) -> tuple[InternedDisjunct, ...]:
        """The interned disjuncts of a defining word (empty if unknown)."""
        return self._words.get(word, ())

    def matches(self, plus_id: int, minus_id: int) -> bool:
        """O(1) probe: can these two interned connectors link?"""
        return minus_id in self.match_right[plus_id]

    def id_of(self, connector: Connector) -> int | None:
        """The interned id of ``connector``, or None if never seen."""
        return self._ids.get(connector)

    def __len__(self) -> int:
        return len(self.connectors)
