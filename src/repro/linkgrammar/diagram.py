"""ASCII rendering of linkages, in the style of the paper's Figure 2.

Links are drawn as labelled arcs above the sentence::

        +------O------+
    +-D-+--S--+   +-D-+
    |   |     |   |   |
   the cat chased a mouse

Planarity guarantees arcs can always be stacked without crossing; shorter
links sit lower.
"""

from __future__ import annotations

from .linkage import Linkage


def render(linkage: Linkage, show_wall: bool = False) -> str:
    """Render a linkage as a multi-line ASCII diagram.

    Args:
        linkage: the linkage to draw.
        show_wall: include the virtual wall word and its links.

    Returns:
        The diagram text (no trailing newline).
    """
    words = list(linkage.words)
    links = list(linkage.links)
    offset = 0
    if not show_wall and words and words[0].startswith("<"):
        offset = 1
        links = [link for link in links if link.left >= 1]
    visible = words[offset:]
    if not visible:
        return "(empty)"

    # Column center for each word in the rendered line.
    starts: list[int] = []
    cursor = 0
    for word in visible:
        starts.append(cursor)
        cursor += len(word) + 1
    centers = [start + max(len(word) // 2, 0) for start, word in zip(starts, visible)]
    width = cursor - 1 if cursor else 0

    def col(index: int) -> int:
        return centers[index - offset]

    # Assign each link a height: shorter spans lower, nested inside longer.
    ordered = sorted(links, key=lambda l: (l.right - l.left, l.left))
    heights: dict[tuple[int, int], int] = {}
    for link in ordered:
        needed = 1
        for other in ordered:
            if other is link:
                continue
            key = (other.left, other.right)
            if key not in heights:
                continue
            if link.left <= other.left and other.right <= link.right:
                needed = max(needed, heights[key] + 1)
        heights[(link.left, link.right)] = needed

    max_height = max(heights.values(), default=0)
    rows = [[" "] * max(width, 1) for _ in range(max_height + 1)]

    def put(row: int, column: int, text: str) -> None:
        for i, ch in enumerate(text):
            position = column + i
            if 0 <= position < len(rows[row]):
                rows[row][position] = ch

    for link in ordered:
        height = heights[(link.left, link.right)]
        row = max_height - height
        left_col, right_col = col(link.left), col(link.right)
        put(row, left_col, "+")
        put(row, right_col, "+")
        for column in range(left_col + 1, right_col):
            if rows[row][column] == " ":
                rows[row][column] = "-"
        label = link.label
        label_start = left_col + 1 + max((right_col - left_col - 1 - len(label)) // 2, 0)
        put(row, label_start, label)
        # Verticals dropping to the word row.
        for below in range(row + 1, max_height + 1):
            for column in (left_col, right_col):
                if rows[below][column] == " ":
                    rows[below][column] = "|"
                elif rows[below][column] == "-":
                    rows[below][column] = "|"

    word_line = [" "] * max(width, 1)
    for start, word in zip(starts, visible):
        for i, ch in enumerate(word):
            word_line[start + i] = ch

    null_marks = [" "] * max(width, 1)
    for index in sorted(linkage.null_words):
        if index < offset:
            continue
        center = col(index)
        if center < len(null_marks):
            null_marks[center] = "^"

    lines = ["".join(row).rstrip() for row in rows]
    lines.append("".join(word_line).rstrip())
    if any(mark != " " for mark in null_marks):
        lines.append("".join(null_marks).rstrip() + "  (^ = unlinked word)")
    return "\n".join(line for line in lines if line.strip() or line is lines[-1])
