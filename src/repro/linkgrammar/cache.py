"""Shared, dictionary-generation-scoped parse result caching.

PR 1 gave every :class:`~repro.linkgrammar.parser.Parser` a private LRU
pair (whole-sentence results + linkage counts).  That left one cold-start
per component: Learning_Angel's analyzer and the sentence repairer each
re-parsed the same learner sentences into separate stores, and repair
candidates re-parsed by different components never shared work.

:class:`ParseCacheStore` extracts those LRUs into a standalone store that
any number of parsers can attach to.  Correctness guarantees:

* **Generation scoping** — the store remembers the dictionary generation
  it was filled under and drops every entry the moment a parser of a
  newer generation touches it, so a mutated dictionary never serves
  stale parses (counters survive the purge; only entries go).
* **Options fingerprinting** — parse results depend on the parse knobs
  (null tolerance, linkage cap, wall, pruning), so every key carries the
  owning parser's :meth:`~repro.linkgrammar.parser.ParseOptions`
  fingerprint.  Parsers with different knobs can share one store safely;
  they simply occupy disjoint key spaces.  Components that want real
  sharing (the analyzer and the repairer) are wired with identical
  options.

The store is a bounded LRU guarded by a single lock: the ``parallel``
supervision runtime drains shards on a thread pool whose workers all
attach to one shared store, and the get/move-to-end and put/evict pairs
must be atomic for the LRU bookkeeping to survive concurrent access.
Cached values are deterministic functions of their keys, so whichever
thread fills an entry first, every reader sees the same parse.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable


class ParseCacheStore:
    """A bounded LRU pair (sentence results + counts) shared by parsers.

    Args:
        max_entries: per-cache entry bound; 0 disables storage (gets
            always miss, puts are dropped).
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._parse: OrderedDict[Hashable, Any] = OrderedDict()
        self._count: OrderedDict[Hashable, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._generation: int | None = None
        self._lock = threading.Lock()

    def __reduce__(self) -> tuple:
        """Pickle as an *empty* store of the same bound.

        The LRU contents are process-local by design — entries hold live
        parse results keyed partly by object identity, the lock cannot
        cross a process, and a child process warms its own cache against
        its own dictionary generation.  Only the configuration travels.
        """
        return (type(self), (self.max_entries,))

    # ------------------------------------------------------------ scoping

    def sync_generation(self, version: int) -> None:
        """Scope the store to dictionary generation ``version``.

        Entries from an older generation are purged wholesale — cheaper
        and simpler than carrying the version in every key, and a
        redefined word invalidates arbitrary sentences anyway.
        """
        with self._lock:
            if self._generation != version:
                self._parse.clear()
                self._count.clear()
                self._generation = version

    # ----------------------------------------------------------- parse API

    def get_parse(self, key: Hashable) -> Any | None:
        with self._lock:
            got = self._parse.get(key)
            if got is None:
                self.misses += 1
                return None
            self._parse.move_to_end(key)
            self.hits += 1
            return got

    def put_parse(self, key: Hashable, value: Any) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            self._parse[key] = value
            if len(self._parse) > self.max_entries:
                self._parse.popitem(last=False)

    # ----------------------------------------------------------- count API

    def get_count(self, key: Hashable) -> int | None:
        with self._lock:
            got = self._count.get(key)
            if got is None:
                self.misses += 1
                return None
            self._count.move_to_end(key)
            self.hits += 1
            return got

    def put_count(self, key: Hashable, value: int) -> None:
        if self.max_entries <= 0:
            return
        with self._lock:
            self._count[key] = value
            if len(self._count) > self.max_entries:
                self._count.popitem(last=False)

    # ------------------------------------------------------------- utility

    @property
    def parse_entries(self) -> int:
        return len(self._parse)

    @property
    def count_entries(self) -> int:
        return len(self._count)

    def info(self) -> dict[str, int]:
        """Counters and sizes, for the perf harness report."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "parse_entries": len(self._parse),
            "count_entries": len(self._count),
            "max_entries": self.max_entries,
        }

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._parse.clear()
            self._count.clear()
            self.hits = 0
            self.misses = 0
