"""Lexicon construction helpers: morphology and grammar frames.

The paper restricts discourse to domain-specific sentences (section 4.1:
"Vocabulary set is limited; word usage has patterns"), which makes a
generated lexicon practical: content words are declared once with a part
of speech and frame, and this module derives inflected forms and their
link-grammar formulas.

Connector inventory (see DESIGN.md section 6):

==========  ==========================================================
``W*``      wall to sentence head: ``Wd`` declarative subject, ``Wq``
            yes/no-question auxiliary, ``Ws`` WH-subject/determiner,
            ``Wh`` WH-adverb, ``Wi`` imperative verb
``S``       subject noun to finite verb (``Ss``/``Sp`` agreement)
``SI``      inverted subject: auxiliary to subject in questions
``O``       verb to object noun
``D``       determiner to noun (``Ds``/``Dp`` agreement)
``A``       attributive adjective to noun
``AN``      noun modifier to head noun ("pop method", "method push")
``M``       noun to prepositional modifier ("top of the stack")
``MV``      verb to prepositional/adverbial modifier
``J``       preposition to its object noun
``I``       auxiliary/modal to infinitive verb
``TO``      verb to "to"-infinitive
``P*``      copula complements: ``Pa`` adjective, ``Pg`` gerund,
            ``Pv`` passive participle
``N``       auxiliary to "not"
``E``       adverb to following verb
``EA``      intensifier to adjective
``Q``       WH-adverb to auxiliary ("how do ...")
``R``       noun to relative pronoun
==========  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Morphology
# --------------------------------------------------------------------------

_IRREGULAR_PLURALS = {
    "child": "children",
    "datum": "data",
    "vertex": "vertices",
    "index": "indices",
    "matrix": "matrices",
    "analysis": "analyses",
    "leaf": "leaves",
    "half": "halves",
    "foot": "feet",
    "man": "men",
    "woman": "women",
    "person": "people",
}

# base -> (third person singular, past, past participle, gerund)
_IRREGULAR_VERBS = {
    "be": ("is", "was", "been", "being"),
    "have": ("has", "had", "had", "having"),
    "do": ("does", "did", "done", "doing"),
    "go": ("goes", "went", "gone", "going"),
    "hold": ("holds", "held", "held", "holding"),
    "keep": ("keeps", "kept", "kept", "keeping"),
    "put": ("puts", "put", "put", "putting"),
    "take": ("takes", "took", "taken", "taking"),
    "give": ("gives", "gave", "given", "giving"),
    "get": ("gets", "got", "got", "getting"),
    "make": ("makes", "made", "made", "making"),
    "find": ("finds", "found", "found", "finding"),
    "build": ("builds", "built", "built", "building"),
    "grow": ("grows", "grew", "grown", "growing"),
    "know": ("knows", "knew", "known", "knowing"),
    "run": ("runs", "ran", "run", "running"),
    "see": ("sees", "saw", "seen", "seeing"),
    "say": ("says", "said", "said", "saying"),
    "set": ("sets", "set", "set", "setting"),
    "mean": ("means", "meant", "meant", "meaning"),
    "begin": ("begins", "began", "begun", "beginning"),
    "swap": ("swaps", "swapped", "swapped", "swapping"),
    "pop": ("pops", "popped", "popped", "popping"),
    "map": ("maps", "mapped", "mapped", "mapping"),
    "drop": ("drops", "dropped", "dropped", "dropping"),
    "split": ("splits", "split", "split", "splitting"),
    "chase": ("chases", "chased", "chased", "chasing"),
    "store": ("stores", "stored", "stored", "storing"),
    "write": ("writes", "wrote", "written", "writing"),
    "read": ("reads", "read", "read", "reading"),
    "understand": ("understands", "understood", "understood", "understanding"),
}

_VOWELS = "aeiou"


def pluralize(noun: str) -> str:
    """The regular (or known-irregular) plural of a noun."""
    irregular = _IRREGULAR_PLURALS.get(noun)
    if irregular is not None:
        return irregular
    if noun.endswith(("s", "x", "z", "ch", "sh")):
        return noun + "es"
    if noun.endswith("y") and len(noun) > 1 and noun[-2] not in _VOWELS:
        return noun[:-1] + "ies"
    return noun + "s"


def verb_forms(base: str) -> tuple[str, str, str, str]:
    """(third-singular, past, past-participle, gerund) forms of ``base``."""
    irregular = _IRREGULAR_VERBS.get(base)
    if irregular is not None:
        return irregular
    if base.endswith(("s", "x", "z", "ch", "sh", "o")):
        third = base + "es"
    elif base.endswith("y") and len(base) > 1 and base[-2] not in _VOWELS:
        third = base[:-1] + "ies"
    else:
        third = base + "s"
    if base.endswith("e"):
        past = base + "d"
        gerund = base[:-1] + "ing"
    elif base.endswith("y") and len(base) > 1 and base[-2] not in _VOWELS:
        past = base[:-1] + "ied"
        gerund = base + "ing"
    else:
        past = base + "ed"
        gerund = base + "ing"
    return third, past, past, gerund


# --------------------------------------------------------------------------
# Grammar frames
# --------------------------------------------------------------------------

_NOUN_LEFT = "{@AN-} & {@A-}"
_NOUN_RIGHT = "{M+} & {R+}"


def _noun_roles(number: str) -> str:
    """Role alternatives for a head noun: subject, inverted subject,
    object, prepositional object, or fronted object of a WH question
    ("What operations does the deque support?" — the noun carries the
    wall link via its WH determiner and a ``Bf`` link to the verb)."""
    return f"(({{Wd-}} & S{number}+) or SI{number}- or O- or J- or Bf+)"


# Nouns acting as modifiers are bare: no determiner of their own.  Both
# compound orders are covered by AN ("the pop method" and "the method
# push" — in each, the final noun is the parse head).
_MODIFIER_READING = "({@A-} & AN+)"


def singular_count_noun() -> str:
    """Frame for a singular count noun.

    As a head noun the determiner is *preferred but not required*:
    learners drop articles ("The tree doesn't have pop method"), and the
    paper routes such sentences to the Semantic Agent rather than
    rejecting them.  A missing determiner costs 1, so correctly-articled
    parses win ranking.  As a modifier or apposed name the noun is bare.
    """
    head = f"{_NOUN_LEFT} & (Ds- or [()]) & {_NOUN_RIGHT} & {_noun_roles('s')}"
    return f"({head}) or {_MODIFIER_READING}"


def plural_count_noun() -> str:
    """Frame for a plural count noun (determiner optional, no cost)."""
    return f"{_NOUN_LEFT} & {{Dp-}} & {_NOUN_RIGHT} & {_noun_roles('p')}"


def mass_noun() -> str:
    """Frame for a mass or proper-like noun ("data", "memory", "LIFO")."""
    head = f"{_NOUN_LEFT} & {{Ds-}} & {_NOUN_RIGHT} & {_noun_roles('s')}"
    return f"({head}) or {_MODIFIER_READING}"


def proper_noun() -> str:
    """Frame for a proper noun (also usable as a bare modifier:
    "the dijkstra algorithm")."""
    return f"({_noun_roles('s')}) or {_MODIFIER_READING}"


def transitive_verb_entries(base: str) -> dict[str, str]:
    """Dictionary formulas for all forms of a transitive verb."""
    third, past, participle, gerund = verb_forms(base)
    entries = {
        base: (
            "{@E-} & ((Sp- & O+ & {@MV+}) or (Wi- & O+ & {@MV+}) "
            "or (I- & O+ & {@MV+}) or (I- & Bf-))"
        ),
        third: "{@E-} & Ss- & O+ & {@MV+}",
        past: "{@E-} & S- & O+ & {@MV+}",
        gerund: "Pg- & O+ & {@MV+}",
    }
    # Past participle doubles as passive complement ("the data is pushed").
    passive = "Pv- & {@MV+}"
    if participle == past:
        entries[past] = f"({entries[past]}) or ({passive})"
    else:
        entries[participle] = passive
    return entries


def intransitive_verb_entries(base: str) -> dict[str, str]:
    """Dictionary formulas for all forms of an intransitive verb."""
    third, past, participle, gerund = verb_forms(base)
    entries = {
        base: "{@E-} & ((Sp- & {@MV+}) or (Wi- & {@MV+}) or (I- & {@MV+}))",
        third: "{@E-} & Ss- & {@MV+}",
        past: "{@E-} & S- & {@MV+}",
        gerund: "Pg- & {@MV+}",
    }
    if participle != past and participle not in entries:
        entries[participle] = "Pv- & {@MV+}"
    return entries


def optionally_transitive_verb_entries(base: str) -> dict[str, str]:
    """Verb that may take an object ("the stack overflows / pop the item")."""
    third, past, participle, gerund = verb_forms(base)
    entries = {
        base: (
            "{@E-} & ((Sp- & {O+} & {@MV+}) or (Wi- & {O+} & {@MV+}) "
            "or (I- & {O+} & {@MV+}) or (I- & Bf-))"
        ),
        third: "{@E-} & Ss- & {O+} & {@MV+}",
        past: "{@E-} & S- & {O+} & {@MV+}",
        gerund: "Pg- & {O+} & {@MV+}",
    }
    passive = "Pv- & {@MV+}"
    if participle == past:
        entries[past] = f"({entries[past]}) or ({passive})"
    else:
        entries[participle] = passive
    return entries


def adjective_entry() -> str:
    """Frame for an adjective: attributive or predicative."""
    return "{EA-} & (A+ or Pa-)"


def preposition_entry() -> str:
    """Frame for a preposition attaching to nouns or verbs."""
    return "(M- or MV-) & J+"


@dataclass(slots=True)
class LexiconSpec:
    """Declarative lexicon: content words by class, expanded on demand."""

    count_nouns: list[str] = field(default_factory=list)
    mass_nouns: list[str] = field(default_factory=list)
    proper_nouns: list[str] = field(default_factory=list)
    transitive_verbs: list[str] = field(default_factory=list)
    intransitive_verbs: list[str] = field(default_factory=list)
    optional_verbs: list[str] = field(default_factory=list)
    adjectives: list[str] = field(default_factory=list)
    prepositions: list[str] = field(default_factory=list)

    def entries(self) -> dict[str, str]:
        """Expand the spec to word -> formula text."""
        out: dict[str, str] = {}

        def _add(word: str, formula: str) -> None:
            if word in out:
                out[word] = f"({out[word]}) or ({formula})"
            else:
                out[word] = formula

        for noun in self.count_nouns:
            _add(noun, singular_count_noun())
            _add(pluralize(noun), plural_count_noun())
        for noun in self.mass_nouns:
            _add(noun, mass_noun())
        for noun in self.proper_nouns:
            _add(noun, proper_noun())
        for verb in self.transitive_verbs:
            for word, formula in transitive_verb_entries(verb).items():
                _add(word, formula)
        for verb in self.intransitive_verbs:
            for word, formula in intransitive_verb_entries(verb).items():
                _add(word, formula)
        for verb in self.optional_verbs:
            for word, formula in optionally_transitive_verb_entries(verb).items():
                _add(word, formula)
        for adjective in self.adjectives:
            _add(adjective, adjective_entry())
        for preposition in self.prepositions:
            _add(preposition, preposition_entry())
        return out
