"""Core English lexicon: function words and general classroom vocabulary.

Together with :mod:`repro.linkgrammar.lexicon.domain` this gives the
restricted, domain-specific English the paper assumes (section 4.1).  The
function words are written out by hand (their grammar is idiosyncratic);
content words go through the frames in
:mod:`repro.linkgrammar.lexicon.builder`.

The lexicon also contains the Figure 1 words (cat, mouse, John, ran,
chased) and the vocabulary of every worked example in the paper, so each
quoted sentence parses against the full dictionary.
"""

from __future__ import annotations

from ..dictionary import Dictionary, UNKNOWN_WORD, WALL_WORD
from .builder import LexiconSpec

# --------------------------------------------------------------------------
# Hand-written function words
# --------------------------------------------------------------------------

FUNCTION_WORDS: dict[str, str] = {
    WALL_WORD: "Wd+ or Wq+ or Ws+ or Wh+ or Wi+",
    UNKNOWN_WORD: (
        # Out-of-vocabulary tokens behave like a determinerless noun, at a
        # cost; the analyzer flags them, but the parse survives around them.
        "[[{@AN-} & {@A-} & {D-} & ({Wd-} & S+ or SI- or O- or J- or AN+)]]"
    ),
    # Determiners.
    "a an": "Ds+",
    "the": "D+",
    "this that": "Ds+",
    "these those": "Dp+",
    "my your our their its his her": "D+",
    "every each one another": "Ds+",
    "some any no more most all enough": "D+",
    "many few several both": "Dp+",
    "two three four five six seven eight nine ten": "Dp+ or A+",
    # Pronouns.
    "i you we they": "({Wd-} & Sp+) or SIp- or O- or J-",
    "he she": "({Wd-} & Ss+) or SIs- or O- or J-",
    "it": "({Wd-} & Ss+) or SIs- or O- or J-",
    "me him us them": "O- or J-",
    "there": "({Wd-} & S+) or SI-",
    "something anything nothing everything": "({Wd-} & Ss+) or O- or J-",
    "someone anyone everyone": "({Wd-} & Ss+) or O- or J-",
    # WH words.
    "what": "({Ws-} & S+) or O- or (Ws- & D+)",
    "which": "(Ws- & D+) or (R- & S+)",
    "who": "({Ws-} & Ss+) or (R- & S+)",
    "how why when where": "Wh- & Q+",
    # Relative pronoun reading of "that" merges with the determiner above.
    "that_rel": "R- & S+",
    # Negation.
    "not": "N-",
    # Do-support.
    "do": "(Wq- & SIp+ & I+) or (Sp- & {N+} & I+) or (Q- & SIp+ & I+) or [SIp+ & I+]",
    "does": "(Wq- & SIs+ & I+) or (Ss- & {N+} & I+) or (Q- & SIs+ & I+) or [SIs+ & I+]",
    "did": "(Wq- & SI+ & I+) or (S- & {N+} & I+) or (Q- & SI+ & I+) or [SI+ & I+]",
    "don't": "(Sp- & I+) or (Wq- & SIp+ & I+) or (Wi- & I+)",
    "doesn't": "(Ss- & I+) or (Wq- & SIs+ & I+)",
    "didn't": "(S- & I+) or (Wq- & SI+ & I+)",
    # Modals.
    "can could will would should must may might shall": (
        "(S- & {N+} & I+) or (Wq- & SI+ & I+) or (Q- & SI+ & I+) or [SI+ & I+]"
    ),
    "can't cannot won't wouldn't shouldn't couldn't mustn't": (
        "(S- & I+) or (Wq- & SI+ & I+)"
    ),
    # Copula.
    "is": (
        "(Ss- & {N+} & (Pa+ or Pg+ or Pv+ or O+ or MV+))"
        " or (Wq- & SIs+ & (Pa+ or Pg+ or Pv+ or O+))"
        " or (Q- & SIs+ & {Pa+ or Pg+ or Pv+ or O+ or MV+})"
    ),
    "are": (
        "(Sp- & {N+} & (Pa+ or Pg+ or Pv+ or O+ or MV+))"
        " or (Wq- & SIp+ & (Pa+ or Pg+ or Pv+ or O+))"
        " or (Q- & SIp+ & {Pa+ or Pg+ or Pv+ or O+ or MV+})"
    ),
    "was": "Ss- & {N+} & (Pa+ or Pg+ or Pv+ or O+ or MV+)",
    "were": "Sp- & {N+} & (Pa+ or Pg+ or Pv+ or O+ or MV+)",
    "isn't": "Ss- & (Pa+ or Pg+ or Pv+ or O+ or MV+)",
    "aren't": "Sp- & (Pa+ or Pg+ or Pv+ or O+ or MV+)",
    "wasn't": "Ss- & (Pa+ or Pg+ or Pv+ or O+ or MV+)",
    "weren't": "Sp- & (Pa+ or Pg+ or Pv+ or O+ or MV+)",
    "be": "I- & (Pa+ or Pg+ or Pv+ or O+ or MV+)",
    # Possession / the QA template "Does X have Y".
    "have": "{@E-} & ((Sp- & O+ & {@MV+}) or (I- & O+ & {@MV+}) or (I- & Bf-))",
    "has": "{@E-} & Ss- & O+ & {@MV+}",
    "had": "{@E-} & S- & O+ & {@MV+}",
    # Infinitival and prepositional "to".
    "to": "(TO- & I+) or ((M- or MV-) & J+)",
    # Verbs taking to-infinitives.
    "want need": "Sp- & (O+ or TO+)",
    "wants needs": "Ss- & (O+ or TO+)",
    "wanted needed": "S- & (O+ or TO+)",
    "try tries tried": "S- & (O+ or TO+)",
    # Adverbs.
    "always never usually often sometimes also just only then next now here soon": (
        "E+ or MV-"
    ),
    "quickly slowly correctly carefully efficiently easily first again too": (
        "E+ or MV-"
    ),
    "very really quite": "EA+",
    # Discourse words: stand alone as complete utterances.
    "yes okay ok hello hi thanks right sure exactly": "Wd-",
    "please": "E+ or Wd-",
}

# --------------------------------------------------------------------------
# General classroom vocabulary (content words, via frames)
# --------------------------------------------------------------------------

GENERAL_SPEC = LexiconSpec(
    count_nouns=[
        "question", "answer", "example", "problem", "course", "lesson",
        "exercise", "teacher", "student", "classmate", "way", "thing",
        "part", "end", "side", "number", "name", "kind", "type", "case",
        "step", "result", "reason", "idea", "point", "word", "sentence",
        "program", "function", "loop", "variable", "computer", "class",
        "book", "page", "chapter", "cat", "mouse", "car", "dog", "cup",
    ],
    mass_nouns=["time", "water", "cola", "homework", "code", "memory", "space"],
    proper_nouns=["john", "mary", "alice", "bob"],
    transitive_verbs=[
        "use", "make", "take", "give", "see", "know", "understand",
        "explain", "show", "tell", "help", "learn", "study", "teach",
        "ask", "solve", "check", "test", "move", "copy", "create",
        "define", "describe", "compare", "choose", "drink", "chase",
        "read", "write", "get",
    ],
    intransitive_verbs=["work", "happen", "go", "come", "wait", "listen"],
    optional_verbs=["run", "start", "begin", "finish", "look", "answer", "say"],
    adjectives=[
        "good", "bad", "big", "small", "new", "old", "easy", "hard",
        "difficult", "simple", "complex", "correct", "wrong", "important",
        "useful", "fast", "slow", "long", "short", "high", "low", "last",
        "same", "different", "ready", "clear", "basic", "main", "common",
        "special", "similar", "possible", "sure",
    ],
    prepositions=[
        "of", "in", "on", "at", "into", "onto", "from", "with", "by",
        "for", "about", "over", "under", "inside", "outside", "between",
        "before", "after", "during", "through", "without", "near",
        "behind", "above", "below", "like",
    ],
)


def build_english_dictionary() -> Dictionary:
    """Assemble the function words plus general vocabulary."""
    dictionary = Dictionary(name="english-core")
    for words, formula in FUNCTION_WORDS.items():
        if words == "that_rel":
            dictionary.define("that", formula)
            continue
        dictionary.define(words, formula)
    for word, formula in GENERAL_SPEC.entries().items():
        dictionary.define(word, formula)
    return dictionary
