"""Lexicons: the Figure-1 toy dictionary and the full chat-room dictionary."""

from functools import lru_cache

from ..dictionary import Dictionary
from .domain import build_domain_dictionary
from .english import build_english_dictionary
from .toy import TOY_DICTIONARY_TEXT, toy_dictionary

__all__ = [
    "Dictionary",
    "TOY_DICTIONARY_TEXT",
    "toy_dictionary",
    "build_english_dictionary",
    "build_domain_dictionary",
    "default_dictionary",
]


@lru_cache(maxsize=1)
def default_dictionary() -> Dictionary:
    """The shared full dictionary (built once per process)."""
    return build_domain_dictionary()
