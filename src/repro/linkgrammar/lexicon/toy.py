"""The paper's Figure 1 toy dictionary.

Defines exactly the words of Fig. 1 — ``a``, ``the``, ``cat``, ``mouse``,
``John``, ``ran``, ``chased`` — with the linking requirements drawn there:
determiners offer ``D+``; common nouns require a determiner and then act as
subject or object; the proper noun ``John`` needs no determiner; ``ran`` is
intransitive and ``chased`` transitive.  Figure 2's sentence "The cat
chased a mouse" must parse to exactly the linkage shown in the paper:
``D(the,cat) S(cat,chased) O(chased,mouse) D(a,mouse)``.
"""

from __future__ import annotations

from ..dictionary import Dictionary

TOY_DICTIONARY_TEXT = """
% Figure 1 of the paper: words and connectors.
a the: D+;
cat mouse: D- & (S+ or O-);
John: S+ or O-;
ran: S-;
chased: S- & O+;
"""


def toy_dictionary() -> Dictionary:
    """Build the Figure 1 dictionary (no wall; pure paper semantics)."""
    return Dictionary.from_text(TOY_DICTIONARY_TEXT, name="fig1-toy")
