"""Data-Structure domain vocabulary (the paper's restricted domain).

Section 4.1 restricts the chat room to the "Data Structure" course: the
vocabulary is limited, usage is patterned, and the terms are pre-defined
in the system ontology.  This module is the lexical side of that
restriction; :mod:`repro.ontology.domains.data_structures` is the
conceptual side.  Tests assert that every ontology term is parseable with
this lexicon.
"""

from __future__ import annotations

from ..dictionary import Dictionary
from .builder import LexiconSpec
from .english import build_english_dictionary

DOMAIN_SPEC = LexiconSpec(
    count_nouns=[
        # Container concepts.
        "stack", "queue", "tree", "heap", "array", "list", "graph",
        "table", "deque", "set", "structure", "buffer", "string",
        # Parts and positions.
        "node", "element", "item", "pointer", "index", "key", "root",
        "leaf", "child", "parent", "edge", "vertex", "bucket", "cell",
        "level", "slot", "entry", "record", "field", "branch", "subtree",
        "path", "cycle", "link", "top", "bottom", "front", "rear",
        "head", "tail", "side", "position", "label", "weight",
        # Operations and measures as nouns.
        "method", "operation", "algorithm", "definition", "relation",
        "insertion", "deletion", "traversal", "search", "sort", "order",
        "size", "length", "capacity", "priority", "degree", "depth",
        "height", "complexity", "collision", "rotation", "partition",
        "comparison", "iteration", "recursion", "implementation",
        "application", "property", "symbol", "value",
        # Operation names usable as nouns ("the push method", "a pop").
        "push", "pop", "peek", "enqueue", "dequeue", "lookup", "insert",
        "delete", "update", "append", "merge", "split", "swap", "hash",
        "traverse", "prepend", "rotate", "balance", "access", "store",
    ],
    mass_nouns=["data", "lifo", "fifo", "storage", "hashing", "overflow", "underflow"],
    proper_nouns=["dijkstra", "kruskal", "prim", "huffman"],
    transitive_verbs=[
        "push", "insert", "delete", "remove", "add", "enqueue", "dequeue",
        "store", "access", "implement", "contain", "hold", "support",
        "allocate", "free", "visit", "append", "prepend", "merge",
        "swap", "compare", "sort", "search", "traverse", "link", "hash",
        "index", "balance", "rotate", "update", "extend", "reverse",
        "partition", "restrict", "connect", "retrieve",
    ],
    intransitive_verbs=["overflow", "underflow", "recurse", "terminate"],
    optional_verbs=["pop", "peek", "grow", "shrink", "split", "return", "point", "iterate"],
    adjectives=[
        "linked", "binary", "balanced", "sorted", "unsorted", "ordered",
        "unordered", "dynamic", "static", "linear", "circular",
        "complete", "perfect", "abstract", "recursive", "iterative",
        "empty", "full", "constant", "logarithmic", "amortized",
        "contiguous", "adjacent", "directed", "undirected", "weighted",
        "rooted", "minimum", "maximum", "internal", "external", "doubly",
        "singly", "efficient", "leftmost", "rightmost", "hierarchical",
        "quick", "priority",
    ],
)


def build_domain_dictionary() -> Dictionary:
    """The full chat-room dictionary: English core + Data Structure domain."""
    dictionary = build_english_dictionary()
    dictionary.name = "english+data-structures"
    for word, formula in DOMAIN_SPEC.entries().items():
        dictionary.define(word, formula)
    return dictionary
