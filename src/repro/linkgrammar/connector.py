"""Connectors: the atomic linking requirements of link grammar.

A connector is written, in dictionary formulas, as an optional multi-marker
``@``, an upper-case *head* naming the link type (``S``, ``O``, ``D`` ...),
an optional lower-case/star *subscript* refining it (``Ss``, ``D*u`` ...),
and a mandatory direction suffix: ``+`` (links rightward) or ``-`` (links
leftward).

Two connectors can join to form a link when they point at each other
(one ``+``, one ``-``), their heads are equal, and their subscripts are
compatible position by position, where ``*`` (and an absent position)
matches anything.  This is the matching rule of Sleator & Temperley's
link grammar (CMU-CS-91-196), which the paper builds on (section 2.1).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

RIGHT = "+"
LEFT = "-"

_CONNECTOR_RE = re.compile(r"^(@?)([A-Z]+)([a-z*]*)([+-])$")


class ConnectorError(ValueError):
    """Raised when a connector expression cannot be parsed."""


@dataclass(frozen=True, slots=True)
class Connector:
    """A single linking requirement of a word.

    Attributes:
        head: upper-case link type, e.g. ``"S"`` or ``"MV"``.
        subscript: lower-case/``*`` refinement, e.g. ``"s"`` in ``Ss+``.
        direction: ``"+"`` if the link partner lies to the right of the
            word carrying this connector, ``"-"`` if to the left.
        multi: True for ``@``-connectors, which may participate in any
            number (>= 1) of links instead of exactly one.
    """

    head: str
    subscript: str = ""
    direction: str = RIGHT
    multi: bool = False

    def __post_init__(self) -> None:
        if not self.head or not self.head.isupper():
            raise ConnectorError(f"connector head must be upper-case: {self.head!r}")
        if self.direction not in (LEFT, RIGHT):
            raise ConnectorError(f"connector direction must be + or -: {self.direction!r}")
        for ch in self.subscript:
            if not (ch.islower() or ch == "*"):
                raise ConnectorError(f"bad subscript character {ch!r} in {self.head}{self.subscript}")

    @classmethod
    def parse(cls, text: str) -> "Connector":
        """Parse a connector expression such as ``"Ss+"`` or ``"@A-"``."""
        match = _CONNECTOR_RE.match(text.strip())
        if match is None:
            raise ConnectorError(f"not a connector: {text!r}")
        multi, head, subscript, direction = match.groups()
        return cls._trusted(head, subscript, direction, bool(multi))

    @classmethod
    def _trusted(cls, head: str, subscript: str, direction: str, multi: bool) -> "Connector":
        """Construct without re-validating.

        The dictionary-formula regex already guarantees a well-formed
        connector; per-field validation in ``__post_init__`` was a
        measurable share of dictionary build time, so trusted producers
        (the formula parser, the interning tables) skip it.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "subscript", subscript)
        object.__setattr__(self, "direction", direction)
        object.__setattr__(self, "multi", multi)
        return self

    @property
    def label(self) -> str:
        """The link label contributed by this connector (head + subscript)."""
        return self.head + self.subscript

    def __str__(self) -> str:
        return ("@" if self.multi else "") + self.head + self.subscript + self.direction

    def matches(self, other: "Connector") -> bool:
        """True if this connector and ``other`` can join into a link.

        The caller is responsible for orientation (this must be the ``+``
        connector of the pair); see :func:`connectors_match` for the
        orientation-checked form.
        """
        return connectors_match(self, other)


def subscripts_match(left: str, right: str) -> bool:
    """Position-wise subscript compatibility with ``*``/absence wildcards."""
    if left == right or not left or not right:
        # Fast path: identical subscripts trivially agree, and an empty
        # subscript is all-wildcard, matching anything.
        return True
    for a, b in zip(left, right):
        if a != b and a != "*" and b != "*":
            return False
    # The longer subscript's tail is compared against implicit padding
    # ("*"), which always matches, so the shared prefix decides.
    return True


def connectors_match(plus: Connector, minus: Connector) -> bool:
    """True if ``plus`` (a ``+`` connector) can link with ``minus`` (a ``-``).

    Returns False (rather than raising) when the orientation is wrong, so
    the parser can probe candidate pairs freely.
    """
    if plus.direction != RIGHT or minus.direction != LEFT:
        return False
    if plus.head != minus.head:
        return False
    return subscripts_match(plus.subscript, minus.subscript)


def link_label(plus: Connector, minus: Connector) -> str:
    """Label for the link formed by a matched pair.

    Following link-grammar convention, the label is the shared head plus
    the position-wise intersection of the subscripts, preferring concrete
    letters over ``*`` wildcards (``Ss+`` joined with ``S-`` yields ``Ss``).
    """
    length = max(len(plus.subscript), len(minus.subscript))
    merged = []
    for a, b in zip(plus.subscript.ljust(length, "*"), minus.subscript.ljust(length, "*")):
        merged.append(a if b == "*" else b)
    return plus.head + "".join(merged).rstrip("*")
