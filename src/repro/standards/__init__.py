"""Distance-learning standards export (the paper's section-5 future work).

SCORM/IMS-CP content packaging of the knowledge body and IMS QTI-style
assessments generated from the accumulated FAQ.
"""

from .qti import build_assessment, write_assessment
from .scorm import MANIFEST_NAME, build_manifest, write_package

__all__ = [
    "MANIFEST_NAME",
    "build_assessment",
    "build_manifest",
    "write_assessment",
    "write_package",
]
