"""SCORM-style content packaging of the course knowledge.

Section 5 names "trying to follow some famous distance-learning
standards" as future work; this module implements it for the dominant
packaging standard of the paper's era, SCORM (ADL) / IMS Content
Packaging: the knowledge body is exported as a content package with an
``imsmanifest.xml`` (organizations → items mirroring the ontology
taxonomy) plus one HTML resource per concept built from its definition,
symbols, operations and algorithm attachments.

The writer produces an on-disk package directory; no zip step is taken
(offline determinism), but the layout matches what an LMS importer
expects structurally.
"""

from __future__ import annotations

import html
import xml.etree.ElementTree as ET
from pathlib import Path

from repro.ontology.model import Item, ItemKind, Ontology, RelationKind

MANIFEST_NAME = "imsmanifest.xml"


def _resource_filename(item: Item) -> str:
    return f"sco_{item.item_id:03d}_{item.name.replace(' ', '_')}.html"


def _concept_html(ontology: Ontology, item: Item) -> str:
    """One SCO page: definition, symbols, operations, algorithms."""
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{html.escape(item.name)}</title></head><body>",
        f"<h1>{html.escape(item.name)}</h1>",
    ]
    if item.definition.description:
        parts.append(f"<p class='definition'>{html.escape(item.definition.description)}</p>")
    for symbol, text in item.definition.symbols.items():
        parts.append(
            f"<p class='symbol'><b>{html.escape(symbol)}</b>: {html.escape(text)}</p>"
        )
    operations = ontology.operations_of(item.item_id)
    if operations:
        parts.append("<h2>Operations</h2><ul>")
        for operation in sorted(operations, key=lambda op: op.name):
            description = operation.definition.description
            parts.append(
                f"<li><b>{html.escape(operation.name)}</b>"
                + (f": {html.escape(description)}" if description else "")
                + "</li>"
            )
        parts.append("</ul>")
    properties = ontology.properties_of(item.item_id)
    if properties:
        names = ", ".join(sorted(p.name for p in properties))
        parts.append(f"<p class='properties'>Properties: {html.escape(names)}</p>")
    for algorithm in item.algorithms:
        parts.append(
            f"<h2>Algorithm: {html.escape(algorithm.name)} "
            f"({html.escape(algorithm.type)})</h2>"
        )
        parts.append(f"<pre>{html.escape(algorithm.body)}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts)


def build_manifest(ontology: Ontology, package_id: str = "repro-course") -> str:
    """The ``imsmanifest.xml`` text for the knowledge body."""
    manifest = ET.Element(
        "manifest",
        {
            "identifier": package_id,
            "version": "1.1",
            "xmlns": "http://www.imsproject.org/xsd/imscp_rootv1p1p2",
            "xmlns:adlcp": "http://www.adlnet.org/xsd/adlcp_rootv1p2",
        },
    )
    metadata = ET.SubElement(manifest, "metadata")
    schema = ET.SubElement(metadata, "schema")
    schema.text = "ADL SCORM"
    schemaversion = ET.SubElement(metadata, "schemaversion")
    schemaversion.text = "1.2"

    organizations = ET.SubElement(manifest, "organizations", {"default": "taxonomy"})
    organization = ET.SubElement(organizations, "organization", {"identifier": "taxonomy"})
    title = ET.SubElement(organization, "title")
    title.text = f"{ontology.domain} (generated course)"

    concepts = ontology.items_of_kind(ItemKind.CONCEPT)
    children: dict[int, list[Item]] = {}
    roots: list[Item] = []
    for item in concepts:
        parents = ontology.parents(item.item_id)
        if parents:
            children.setdefault(parents[0].item_id, []).append(item)
        else:
            roots.append(item)

    def add_item(parent_element: ET.Element, item: Item) -> None:
        element = ET.SubElement(
            parent_element,
            "item",
            {
                "identifier": f"item_{item.item_id}",
                "identifierref": f"res_{item.item_id}",
            },
        )
        item_title = ET.SubElement(element, "title")
        item_title.text = item.name
        for child in sorted(children.get(item.item_id, []), key=lambda c: c.item_id):
            add_item(element, child)

    for root in sorted(roots, key=lambda c: c.item_id):
        add_item(organization, root)

    resources = ET.SubElement(manifest, "resources")
    for item in concepts:
        resource = ET.SubElement(
            resources,
            "resource",
            {
                "identifier": f"res_{item.item_id}",
                "type": "webcontent",
                "adlcp:scormtype": "sco",
                "href": _resource_filename(item),
            },
        )
        ET.SubElement(resource, "file", {"href": _resource_filename(item)})
    ET.indent(manifest)
    return ET.tostring(manifest, encoding="unicode")


def write_package(ontology: Ontology, target: str | Path, package_id: str = "repro-course") -> Path:
    """Write the full content package; returns the package directory."""
    directory = Path(target)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / MANIFEST_NAME).write_text(
        build_manifest(ontology, package_id), encoding="utf-8"
    )
    for item in ontology.items_of_kind(ItemKind.CONCEPT):
        page = _concept_html(ontology, item)
        (directory / _resource_filename(item)).write_text(page, encoding="utf-8")
    return directory
