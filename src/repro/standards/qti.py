"""IMS QTI-style assessment export from the FAQ database.

The second half of the standards future-work: the accumulated FAQ pairs
("a powerful learning tool for the learners", section 1) are turned into
an IMS QTI 1.2-flavoured assessment: each frequent QA pair becomes an
item whose prompt is the question and whose response options are the true
answer plus distractors drawn from *other* pairs of the same template
family (so "What is a stack?" is distracted by other definitions, not by
yes/no answers).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from pathlib import Path

from repro.qa.faq import FAQDatabase, QAPair


def _distractors(target: QAPair, pool: list[QAPair], count: int) -> list[str]:
    """Plausible wrong answers: same template family, different items."""
    same_family = [
        pair.answer
        for pair in pool
        if pair.key != target.key and pair.kind == target.kind and pair.answer != target.answer
    ]
    if len(same_family) < count:
        same_family += [
            pair.answer
            for pair in pool
            if pair.key != target.key and pair.answer != target.answer
            and pair.answer not in same_family
        ]
    return same_family[:count]


def build_assessment(
    faq: FAQDatabase,
    title: str = "FAQ self-check",
    max_items: int = 10,
    distractors: int = 3,
) -> str:
    """QTI-style XML for the top FAQ pairs.

    Items with no available distractor are skipped (a one-option multiple
    choice teaches nothing).
    """
    root = ET.Element("questestinterop")
    assessment = ET.SubElement(root, "assessment", {"ident": "faq", "title": title})
    section = ET.SubElement(assessment, "section", {"ident": "main"})
    pool = faq.pairs()
    emitted = 0
    for pair in pool:
        if emitted >= max_items:
            break
        wrong = _distractors(pair, pool, distractors)
        if not wrong:
            continue
        item = ET.SubElement(
            section, "item", {"ident": f"item_{emitted}", "title": pair.question}
        )
        presentation = ET.SubElement(item, "presentation")
        material = ET.SubElement(presentation, "material")
        mattext = ET.SubElement(material, "mattext")
        mattext.text = pair.question
        response = ET.SubElement(
            presentation, "response_lid", {"ident": "answer", "rcardinality": "Single"}
        )
        render = ET.SubElement(response, "render_choice")
        options = [("correct", pair.answer)] + [
            (f"wrong_{i}", text) for i, text in enumerate(wrong)
        ]
        for ident, text in options:
            label = ET.SubElement(render, "response_label", {"ident": ident})
            label_material = ET.SubElement(label, "material")
            label_text = ET.SubElement(label_material, "mattext")
            label_text.text = text
        processing = ET.SubElement(item, "resprocessing")
        condition = ET.SubElement(processing, "respcondition")
        varequal = ET.SubElement(condition, "varequal", {"respident": "answer"})
        varequal.text = "correct"
        setvar = ET.SubElement(condition, "setvar", {"action": "Set"})
        setvar.text = "1"
        emitted += 1
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def write_assessment(faq: FAQDatabase, target: str | Path, **kwargs) -> Path:
    """Write the assessment XML; returns the file path."""
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(build_assessment(faq, **kwargs), encoding="utf-8")
    return path
