"""Token-level inverted index and the bounded suggestion-search scan.

The unconstrained path (no keyword floor) must return exactly what the
old full-corpus walk returned whenever retrieval fits the candidate
bound, and must never score more than ``max_candidates`` records."""

from __future__ import annotations

from repro.corpus.records import Correctness, CorpusRecord
from repro.corpus.search import SuggestionSearch
from repro.corpus.store import LearnerCorpus
from repro.linkgrammar.tokenizer import tokenize


def add(corpus: LearnerCorpus, text: str, verdict=Correctness.CORRECT, keywords=()):
    return corpus.add(
        CorpusRecord(
            record_id=corpus.next_id(),
            user="u",
            room="r",
            text=text,
            timestamp=float(corpus.next_id()),
            pattern="simple",
            verdict=verdict,
            syntax_issues=[],
            semantic_issues=[],
            keywords=list(keywords),
            links="",
            cost=0,
        )
    )


def seeded() -> LearnerCorpus:
    corpus = LearnerCorpus()
    add(corpus, "We push an element onto the stack.", keywords=["stack", "push"])
    add(corpus, "The queue has dequeue operation.", keywords=["queue", "dequeue"])
    add(corpus, "A binary tree is a tree.", keywords=["binary tree", "tree"])
    add(corpus, "tree have pop", Correctness.SYNTAX_ERROR, keywords=["tree", "pop"])
    add(corpus, "Pop removes the top element.", keywords=["pop", "top"])
    add(corpus, "What is a queue?", Correctness.QUESTION, keywords=["queue"])
    add(corpus, "The weather is nice.")
    return corpus


def brute_force_find(corpus, text, keywords=None, limit=3, min_keyword_overlap=0.0):
    """The pre-index semantics: walk every correct record and score it."""

    def jaccard(a, b):
        union = a | b
        return len(a & b) / len(union) if union else 0.0

    sentence = tokenize(text)
    query_tokens = frozenset(sentence.words)
    query_raw = sentence.raw.strip().lower()
    query_keywords = frozenset(k.lower() for k in (keywords or []))
    hits = []
    for position, record in enumerate(corpus.records()):
        if record.verdict != Correctness.CORRECT:
            continue
        if record.text.strip().lower() == query_raw:
            continue
        keyword_overlap = jaccard(query_keywords, corpus.keyword_set(position))
        if query_keywords and keyword_overlap < min_keyword_overlap:
            continue
        token_overlap = jaccard(query_tokens, corpus.token_set(position))
        if keyword_overlap == 0.0 and token_overlap == 0.0:
            continue
        hits.append((record, keyword_overlap, token_overlap))
    hits.sort(key=lambda h: (-h[1], -h[2], h[0].record_id))
    return [h[0].record_id for h in hits[:limit]]


class TestTokenIndex:
    def test_positions_agree_with_scan(self):
        corpus = seeded()
        for token in ("tree", "queue", "the", "pop", "unseen"):
            expected = tuple(
                position
                for position in range(len(corpus))
                if token in corpus.token_set(position)
            )
            assert corpus.token_positions(token) == expected, token

    def test_index_covers_loaded_corpora(self, tmp_path):
        corpus = seeded()
        path = tmp_path / "corpus.jsonl"
        corpus.save(path)
        loaded = LearnerCorpus.load(path)
        assert loaded.token_positions("tree") == corpus.token_positions("tree")


class TestUnconstrainedSearchEquivalence:
    QUERIES = [
        ("The tree doesn't have pop method.", None),
        ("The tree doesn't have pop method.", ["tree", "pop"]),
        ("queue operation", ["queue"]),
        ("stack", None),
        ("nothing matches here zebra", None),
        ("", None),
    ]

    def test_find_matches_brute_force(self):
        corpus = seeded()
        search = SuggestionSearch(corpus)
        for text, keywords in self.QUERIES:
            got = [h.record.record_id for h in search.find(text, keywords=keywords)]
            assert got == brute_force_find(corpus, text, keywords), (text, keywords)

    def test_find_matches_brute_force_with_floor(self):
        corpus = seeded()
        search = SuggestionSearch(corpus)
        got = [
            h.record.record_id
            for h in search.find(
                "The tree doesn't have pop method.",
                keywords=["tree", "pop"],
                min_keyword_overlap=0.2,
            )
        ]
        expected = brute_force_find(
            corpus,
            "The tree doesn't have pop method.",
            ["tree", "pop"],
            min_keyword_overlap=0.2,
        )
        assert got == expected

    def test_no_shared_token_means_no_candidates(self):
        corpus = seeded()
        search = SuggestionSearch(corpus)
        assert search.find("zebra xylophone") == []


class TestTopKCut:
    def test_scan_is_bounded(self):
        corpus = LearnerCorpus()
        for index in range(50):
            add(corpus, f"The stack holds item number {index}.", keywords=["stack"])
        search = SuggestionSearch(corpus, max_candidates=10)
        candidates = search._candidates(
            frozenset(tokenize("The stack holds data.").words), frozenset(), 0.0
        )
        assert len(candidates) == 10
        assert candidates == sorted(candidates)

    def test_cut_keeps_best_shared_posting_records(self):
        corpus = LearnerCorpus()
        # 30 weak matches (share only "the"), one strong match added last.
        for index in range(30):
            add(corpus, f"The weather report number {index}.")
        strong = add(corpus, "The stack holds data tightly.", keywords=["stack"])
        search = SuggestionSearch(corpus, max_candidates=5)
        hits = search.find("The stack holds data.", keywords=["stack"])
        assert hits and hits[0].record.record_id == strong.record_id

    def test_exact_when_within_bound(self):
        corpus = seeded()
        bounded = SuggestionSearch(corpus, max_candidates=100)
        unbounded = SuggestionSearch(corpus, max_candidates=10_000)
        # Retrieval fits inside max_candidates → results are exact.
        for query in ("A tree has a top element.", "The stack holds data."):
            got = [h.record.record_id for h in bounded.find(query)]
            full = [h.record.record_id for h in unbounded.find(query)]
            assert got == full, query

    def test_tight_bound_still_finds_a_best_sentence(self):
        corpus = seeded()
        tight = SuggestionSearch(corpus, max_candidates=3)
        loose = SuggestionSearch(corpus, max_candidates=10_000)
        query = "A tree has a top element."
        # The cut is an approximation: weak-tail candidates may differ,
        # but the head of the ranking (what learners see) survives.
        assert tight.find(query)[0].record == loose.find(query)[0].record
