"""Streaming-intersection oracles: galloping posting walks and the
suggestion-search exact-within-bound contract.

Two layers, mirroring docs/corpus.md:

* **Posting machinery** — :func:`intersect_iter`'s galloping walk over
  delta runs (skip-table seeks) must equal set intersection on random
  ascending position lists, across driver orders, checkpoint
  boundaries and pop/eviction churn.
* **Search contract** — fuzzed ``SuggestionSearch`` queries (rare-only,
  capped-only, mixed, empty, self-matching) against a brute-force
  full-scan oracle on small corpora, asserting each branch of the
  exact-vs-bounded retrieval contract — including the regression for
  the capped-walk budget: the query's own previously-ingested sentence
  must not consume ``max_candidates`` budget on either tier.
"""

from __future__ import annotations

from random import Random

import pytest

from repro.corpus.index import (
    IndexConfig,
    PostingList,
    intersect_count,
    intersect_iter,
)
from repro.corpus.records import Correctness, CorpusRecord
from repro.corpus.search import SuggestionSearch
from repro.corpus.segments import (
    SegmentedCorpus,
    intersect_tiered_count,
    intersect_tiered_iter,
    union_tiered_iter,
)
from repro.corpus.store import LearnerCorpus
from repro.linkgrammar.tokenizer import tokenize


def posting_list(positions) -> PostingList:
    postings = PostingList()
    for position in positions:
        postings.append(position)
    return postings


def random_positions(rng: Random, size: int, universe: int) -> list[int]:
    return sorted(rng.sample(range(universe), min(size, universe)))


class TestGallopingIntersection:
    @pytest.mark.parametrize("seed", range(60))
    def test_matches_set_intersection(self, seed: int):
        rng = Random(seed)
        universe = rng.choice([10, 100, 1000, 5000])
        a = random_positions(rng, rng.randrange(0, 40), universe)
        b = random_positions(rng, rng.randrange(0, 400), universe)
        expected = sorted(set(a) & set(b))
        assert list(intersect_iter(posting_list(a), posting_list(b))) == expected
        # Driver order is an internal choice, never a semantic one.
        assert list(intersect_iter(posting_list(b), posting_list(a))) == expected
        assert intersect_count(posting_list(a), posting_list(b)) == len(expected)

    def test_skip_boundaries(self):
        # Runs straddling several 32-entry skip blocks, with the probe
        # list hitting first/last entries of blocks and gaps between.
        big = list(range(0, 1000, 3))  # 334 entries, ~11 blocks
        probes = [0, 3, 4, 96, 97, 501, 999, 998]
        expected = sorted(set(big) & set(probes))
        assert list(intersect_iter(posting_list(sorted(probes)), posting_list(big))) == expected

    def test_sparse_vs_dense_extremes(self):
        dense = posting_list(range(2000))
        sparse = posting_list([0, 1999])
        assert list(intersect_iter(sparse, dense)) == [0, 1999]
        assert list(intersect_iter(dense, sparse)) == [0, 1999]
        empty = PostingList()
        assert list(intersect_iter(empty, dense)) == []
        assert list(intersect_iter(dense, empty)) == []

    def test_disjoint_and_interleaved(self):
        evens = posting_list(range(0, 200, 2))
        odds = posting_list(range(1, 200, 2))
        assert list(intersect_iter(evens, odds)) == []
        assert intersect_count(evens, evens) == 100

    @pytest.mark.parametrize("seed", range(20))
    def test_skip_table_survives_pop_churn(self, seed: int):
        # Append/pop interleavings must keep checkpoints exact: a stale
        # skip entry would make the gallop land past a real position.
        rng = Random(seed)
        postings = PostingList()
        mirror: list[int] = []
        nxt = 0
        for _ in range(300):
            if mirror and rng.random() < 0.4:
                assert postings.pop() == mirror.pop()
            else:
                nxt += rng.randrange(1, 5)
                postings.append(nxt)
                mirror.append(nxt)
        probe = posting_list(sorted(rng.sample(range(nxt + 2), min(40, nxt + 2))))
        expected = sorted(set(mirror) & set(probe.positions()))
        assert list(intersect_iter(probe, postings)) == expected
        assert list(postings) == mirror


def make_record(corpus, text, verdict=Correctness.CORRECT, keywords=()):
    return corpus.add(
        CorpusRecord(
            record_id=corpus.next_id(),
            user="u",
            room="r",
            text=text,
            timestamp=float(corpus.next_id()),
            pattern="simple",
            verdict=verdict,
            keywords=list(keywords),
        )
    )


def brute_force(corpus, text, keywords=None, limit=3, min_keyword_overlap=0.0):
    """Full-scan oracle with the exact scoring rule of ``find``."""

    def jaccard(a, b):
        union = a | b
        return len(a & b) / len(union) if union else 0.0

    sentence = tokenize(text)
    query_tokens = frozenset(sentence.words)
    query_raw = sentence.raw.strip().lower()
    query_keywords = frozenset(k.lower() for k in (keywords or []))
    hits = []
    for position in range(len(corpus)):
        record = corpus.record_at(position)
        if record.verdict is not Correctness.CORRECT:
            continue
        if record.text.strip().lower() == query_raw:
            continue
        keyword_overlap = jaccard(query_keywords, corpus.keyword_set(position))
        if query_keywords and keyword_overlap < min_keyword_overlap:
            continue
        token_overlap = jaccard(query_tokens, corpus.token_set(position))
        if keyword_overlap == 0.0 and token_overlap == 0.0:
            continue
        hits.append((record.record_id, keyword_overlap, token_overlap))
    hits.sort(key=lambda h: (-h[1], -h[2], h[0]))
    return hits[:limit]


WORDS = ["the", "a", "data", "stack", "queue", "tree", "push", "pop", "holds", "top"]
STOPWORDS = {"the", "a", "data"}


def mixed_tier_oracle(corpus, text, limit=3):
    """Full-scan oracle restricted to the documented mixed-query pool:
    records sharing a rare-tier query token (plus the capped fallback
    pool when the rare pool has no usable correct candidate)."""
    sentence = tokenize(text)
    query_tokens = frozenset(sentence.words)
    query_raw = sentence.raw.strip().lower()
    rare_tokens, capped_tokens = corpus.index.split_tokens(query_tokens)
    allowed: set[int] = set()
    for token in rare_tokens:
        allowed.update(corpus.token_positions(token))
    if not any(
        corpus.is_correct(position)
        and corpus.text_at(position).strip().lower() != query_raw
        for position in allowed
    ):
        for token in capped_tokens:
            allowed.update(corpus.token_positions(token))

    def jaccard(a, b):
        union = a | b
        return len(a & b) / len(union) if union else 0.0

    hits = []
    for position in sorted(allowed):
        record = corpus.record_at(position)
        if record.verdict is not Correctness.CORRECT:
            continue
        if record.text.strip().lower() == query_raw:
            continue
        token_overlap = jaccard(query_tokens, corpus.token_set(position))
        if token_overlap == 0.0:
            continue
        hits.append((record.record_id, 0.0, token_overlap))
    hits.sort(key=lambda h: (-h[1], -h[2], h[0]))
    return hits[:limit]


#: Content vocabulary wide enough that, at ~50 records and cap 4, some
#: words land in each tier — rare-only, capped-only and mixed queries
#: are all constructible against the same corpus.
CONTENT = [f"w{i}" for i in range(30)] + [w for w in WORDS if w not in STOPWORDS]


def fuzz_corpus(rng: Random, records: int = 50) -> LearnerCorpus:
    corpus = LearnerCorpus(IndexConfig(stopword_df_cap=4))
    for i in range(records):
        words = ["the", "data"] if rng.random() < 0.6 else []
        words += [rng.choice(CONTENT) for _ in range(rng.randrange(1, 4))]
        rng.shuffle(words)
        make_record(
            corpus,
            " ".join(words),
            verdict=rng.choice(
                [Correctness.CORRECT] * 3 + [Correctness.SYNTAX_ERROR]
            ),
            keywords=[w for w in words if w not in STOPWORDS][:2],
        )
    return corpus


def rare_pool(corpus) -> list[str]:
    return [
        w for w in CONTENT
        if corpus.index.token_df(w) and not corpus.index.is_capped_token(w)
    ]


def hit_tuples(hits):
    return [(h.record.record_id, h.keyword_overlap, h.token_overlap) for h in hits]


def paired_fuzz_corpora(
    rng: Random, records: int, boundaries
) -> tuple[LearnerCorpus, SegmentedCorpus]:
    """The same fuzzed records in a plain corpus and in a segmented one
    frozen at every position in ``boundaries`` (ascending, 1-based)."""
    plain = LearnerCorpus(IndexConfig(stopword_df_cap=4))
    segmented = SegmentedCorpus(
        IndexConfig(stopword_df_cap=4), segment_records=1 << 30, auto_freeze=False
    )
    cuts = set(boundaries)
    for i in range(records):
        words = ["the", "data"] if rng.random() < 0.6 else []
        words += [rng.choice(CONTENT) for _ in range(rng.randrange(1, 4))]
        rng.shuffle(words)
        text = " ".join(words)
        verdict = rng.choice([Correctness.CORRECT] * 3 + [Correctness.SYNTAX_ERROR])
        keywords = [w for w in words if w not in STOPWORDS][:2]
        make_record(plain, text, verdict=verdict, keywords=keywords)
        make_record(segmented, text, verdict=verdict, keywords=keywords)
        if i + 1 in cuts:
            segmented.freeze()
    return plain, segmented


class TestCrossTierGallopingOracle:
    """Satellite property tests: posting iterators straddling the
    RAM/disk seam must equal their single-tier twins and plain set
    algebra — whatever the freeze boundaries, including boundaries that
    leave an empty or single-record tail and terms absent from whole
    tiers."""

    def postings_pairs(self, plain, segmented):
        """(in-RAM postings, tiered postings) per indexed token; the
        presence decision itself must agree across layouts."""
        tokens = sorted(
            {t for i in range(len(plain)) for t in plain.token_set(i)}
        )
        pairs = []
        for token in tokens + ["zzz-absent"]:
            flat = plain.index.token_postings(token)
            tiered = segmented.index.token_postings(token)
            assert (flat is None) == (tiered is None), token
            if flat is not None:
                pairs.append((token, flat, tiered))
        return pairs

    @pytest.mark.parametrize("seed", range(40))
    def test_tiered_postings_equal_flat_postings(self, seed: int):
        rng = Random(seed)
        records = rng.randrange(2, 60)
        boundaries = sorted(
            rng.sample(range(1, records + 1), rng.randrange(0, min(6, records)))
        )
        plain, segmented = paired_fuzz_corpora(rng, records, boundaries)
        for token, flat, tiered in self.postings_pairs(plain, segmented):
            expected = list(flat.positions())
            assert list(tiered) == expected, token
            assert list(tiered.positions()) == expected, token
            assert len(tiered) == len(flat) and bool(tiered) == bool(flat)
            assert tiered.last == expected[-1]
            # The global delta stream must rebuild the positions: it is
            # what the budgeted capped walk consumes across the seam.
            positions, total = [], 0
            for gap in tiered.gaps:
                total += gap
                positions.append(total)
            assert positions == expected, token
            counts: dict[int, int] = {}
            tiered.accumulate_into(counts)
            assert sorted(counts) == expected and set(counts.values()) <= {1}

    @pytest.mark.parametrize("seed", range(40))
    def test_tiered_set_algebra_matches_oracle(self, seed: int):
        rng = Random(seed)
        records = rng.randrange(2, 60)
        boundaries = sorted(
            rng.sample(range(1, records + 1), rng.randrange(0, min(6, records)))
        )
        plain, segmented = paired_fuzz_corpora(rng, records, boundaries)
        pairs = self.postings_pairs(plain, segmented)
        for _ in range(12):
            _ta, flat_a, tiered_a = rng.choice(pairs)
            _tb, flat_b, tiered_b = rng.choice(pairs)
            a, b = set(flat_a.positions()), set(flat_b.positions())
            assert list(intersect_tiered_iter(tiered_a, tiered_b)) == sorted(a & b)
            assert intersect_tiered_count(tiered_a, tiered_b) == len(a & b)
            assert list(union_tiered_iter(tiered_a, tiered_b)) == sorted(a | b)

    def test_term_absent_from_middle_tier(self):
        # "gap" lives in segment 0 and the tail but not segment 1: the
        # tiered walk must hop over the partless middle segment.
        segmented = SegmentedCorpus(
            IndexConfig(stopword_df_cap=None), segment_records=1 << 30, auto_freeze=False
        )
        make_record(segmented, "gap alpha")
        segmented.freeze()
        make_record(segmented, "beta gamma")
        segmented.freeze()
        make_record(segmented, "gap delta")
        postings = segmented.index.token_postings("gap")
        assert [base for base, _run in postings.parts] == [0, 2]
        assert list(postings) == [0, 2] and postings.last == 2
        other = segmented.index.token_postings("alpha")
        assert list(intersect_tiered_iter(postings, other)) == [0]
        assert list(union_tiered_iter(postings, other)) == [0, 2]

    def test_single_record_and_empty_tails(self):
        rng = Random(7)
        # Freeze after every record: tail is empty at the end...
        plain, all_frozen = paired_fuzz_corpora(rng, 9, range(1, 10))
        assert all_frozen.frozen_records == 9 and len(all_frozen.segments) == 9
        for _token, flat, tiered in self.postings_pairs(plain, all_frozen):
            assert list(tiered) == list(flat.positions())
        # ...and freezing all but the last leaves a single-record tail.
        rng = Random(7)
        plain, one_tail = paired_fuzz_corpora(rng, 9, range(1, 9))
        assert one_tail.frozen_records == 8
        for _token, flat, tiered in self.postings_pairs(plain, one_tail):
            assert list(tiered) == list(flat.positions())

    @pytest.mark.parametrize("seed", range(10))
    def test_search_across_seam_equals_flat_search(self, seed: int):
        # End to end: SuggestionSearch streams candidate unions through
        # the tiered iterators without materialising a segment; results
        # must match the identical in-RAM corpus query for query.
        rng = Random(seed)
        records = rng.randrange(10, 50)
        boundaries = sorted(
            rng.sample(range(1, records + 1), rng.randrange(1, 5))
        )
        plain, segmented = paired_fuzz_corpora(rng, records, boundaries)
        flat_search = SuggestionSearch(plain, max_candidates=8)
        seam_search = SuggestionSearch(segmented, max_candidates=8)
        for _ in range(6):
            query = " ".join(
                rng.choice(CONTENT + ["the", "data"])
                for _ in range(rng.randrange(1, 4))
            )
            assert hit_tuples(seam_search.find(query)) == hit_tuples(
                flat_search.find(query)
            ), query


class TestSearchVsBruteForceOracle:
    """docs/corpus.md retrieval contract, branch by branch, fuzzed."""

    @pytest.mark.parametrize("seed", range(30))
    def test_rare_only_queries_are_exact(self, seed: int):
        rng = Random(seed)
        corpus = fuzz_corpus(rng)
        search = SuggestionSearch(corpus)  # bound far above corpus size
        pool = rare_pool(corpus)
        assert len(pool) >= 2, "fuzz corpus lost its rare tier"
        for _ in range(5):
            query = " ".join(rng.sample(pool, 2))
            assert hit_tuples(search.find(query)) == brute_force(corpus, query), query

    @pytest.mark.parametrize("seed", range(30))
    def test_keyword_floor_queries_are_exact(self, seed: int):
        rng = Random(seed)
        corpus = fuzz_corpus(rng)
        search = SuggestionSearch(corpus)
        for _ in range(5):
            query = " ".join(rng.sample(WORDS, 3))
            keywords = rng.sample(CONTENT, 2)
            assert hit_tuples(
                search.find(query, keywords=keywords, min_keyword_overlap=0.2)
            ) == brute_force(corpus, query, keywords=keywords, min_keyword_overlap=0.2)

    @pytest.mark.parametrize("seed", range(30))
    def test_capped_only_queries_exact_within_unexhausted_budget(self, seed: int):
        # With the budget above the number of correct candidates, the
        # fallback walk sees everything: results must equal brute force.
        rng = Random(seed)
        corpus = fuzz_corpus(rng)
        search = SuggestionSearch(corpus)
        query = "the data"
        assert corpus.index.is_capped_token("the")
        assert hit_tuples(search.find(query)) == brute_force(corpus, query)

    @pytest.mark.parametrize("seed", range(30))
    def test_mixed_queries_match_restricted_pool_oracle(self, seed: int):
        # Mixed rare+capped: per docs/corpus.md, the candidate pool is
        # exactly the records sharing a rare term (capped tier skipped)
        # whenever that pool holds a usable correct candidate — else the
        # capped fallback widens it.  Scoring over that pool is exact,
        # and nothing outside brute force is ever invented.
        rng = Random(seed)
        corpus = fuzz_corpus(rng)
        search = SuggestionSearch(corpus)
        rare_words = rare_pool(corpus)
        for _ in range(5):
            query = "the data " + rng.choice(rare_words)
            got = hit_tuples(search.find(query))
            expected = mixed_tier_oracle(corpus, query)
            assert got == expected, query
            assert {record_id for record_id, _, _ in got} <= {
                record_id for record_id, _, _ in brute_force(corpus, query, limit=len(corpus))
            }, query

    def test_empty_and_unknown_queries(self):
        corpus = fuzz_corpus(Random(1))
        search = SuggestionSearch(corpus)
        assert search.find("") == []
        assert search.find("zzz qqq xyzzy") == []
        assert search.find("zzz", keywords=["nosuchkeyword"]) == []

    def test_early_cut_returns_earliest_k_correct(self):
        corpus = LearnerCorpus(IndexConfig(stopword_df_cap=3))
        for i in range(30):
            make_record(corpus, f"the data item number{i}")
        search = SuggestionSearch(corpus, max_candidates=6)
        candidates = search._candidates(frozenset({"the", "data"}), frozenset(), 0.0)
        assert candidates == [0, 1, 2, 3, 4, 5]


class TestSelfMatchBudgetRegression:
    """The budgeted capped walk must not charge the query's own sentence
    against ``max_candidates`` (satellite fix + regression tests)."""

    def build(self) -> LearnerCorpus:
        corpus = LearnerCorpus(IndexConfig(stopword_df_cap=2))
        make_record(corpus, "the data holds")  # position 0: the self-match
        make_record(corpus, "the data stores")  # position 1: the real suggestion
        make_record(corpus, "the data keeps")
        assert corpus.index.is_capped_token("the")
        assert corpus.index.is_capped_token("data")
        return corpus

    def test_capped_walk_budget_skips_self_match(self):
        corpus = self.build()
        # Budget 1: pre-fix, the walk spent its only slot on position 0
        # (the query's own sentence), find dropped it, and the learner
        # got nothing despite two perfectly good capped-tier matches.
        search = SuggestionSearch(corpus, max_candidates=1)
        hits = search.find("the data holds")
        assert [h.record.record_id for h in hits] == [1]

    def test_rare_tier_cut_skips_self_match(self):
        corpus = LearnerCorpus(IndexConfig(stopword_df_cap=None))
        make_record(corpus, "stack push top")  # the self-match, id 0
        make_record(corpus, "stack push element")  # id 1
        search = SuggestionSearch(corpus, max_candidates=1)
        hits = search.find("stack push top")
        # Uncapped config: every token is rare-tier.  The top-k cut must
        # not let the unusable self-match occupy the single slot.
        assert [h.record.record_id for h in hits] == [1]

    def test_self_match_still_counts_into_shared_union(self):
        # The self-match is excluded from budget, not from the union:
        # other consumers of shared counts (the skip decision) still see
        # it, and a query that matches *only* itself returns nothing.
        corpus = LearnerCorpus(IndexConfig(stopword_df_cap=2))
        make_record(corpus, "solo unique sentence")
        search = SuggestionSearch(corpus)
        assert search.find("solo unique sentence") == []

    def test_ingested_query_unaffected_when_budget_is_ample(self):
        corpus = self.build()
        roomy = SuggestionSearch(corpus, max_candidates=512)
        tight = SuggestionSearch(corpus, max_candidates=2)
        query = "the data holds"
        assert hit_tuples(roomy.find(query)) == brute_force(corpus, query)
        assert hit_tuples(tight.find(query)) == hit_tuples(roomy.find(query))[:3]
