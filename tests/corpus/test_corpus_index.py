"""The CorpusIndex subsystem: delta-encoded postings, DF tiers, and the
tiered suggestion-search retrieval contract.

Three concerns, mirroring docs/corpus.md:

* **Compaction is invisible** — posting lists round-trip positions,
  evict O(tail), and the store's index-backed queries stay equal to
  brute-force scans.
* **Tier boundary exactness** — queries made only of capped
  (stopword-tier) terms, mixed rare+capped queries, and the fallback /
  early-cut behaviour of the capped walk.
* **Merge canonicality** — compacted postings built through any
  permutation of shard-replica merges equal single-store postings,
  DF tiers included.
"""

from __future__ import annotations

import itertools

import pytest

from repro.corpus.index import CorpusIndex, IndexConfig, PostingList
from repro.corpus.records import Correctness, CorpusRecord
from repro.corpus.search import SuggestionSearch
from repro.corpus.store import LearnerCorpus


def make_record(
    record_id: int,
    text: str,
    verdict=Correctness.CORRECT,
    keywords=(),
    user: str = "u",
    ts: float | None = None,
):
    return CorpusRecord(
        record_id=record_id,
        user=user,
        room="r",
        text=text,
        timestamp=float(record_id) if ts is None else ts,
        pattern="simple",
        verdict=verdict,
        keywords=list(keywords),
    )


def add(corpus, text, verdict=Correctness.CORRECT, keywords=(), user="u"):
    return corpus.add(make_record(corpus.next_id(), text, verdict, keywords, user))


class TestPostingList:
    def test_round_trips_positions(self):
        postings = PostingList()
        for position in (0, 3, 4, 100, 101, 4096):
            postings.append(position)
        assert postings.positions() == (0, 3, 4, 100, 101, 4096)
        assert list(postings) == [0, 3, 4, 100, 101, 4096]
        assert len(postings) == 6
        assert postings.last == 4096

    def test_rejects_non_increasing_positions(self):
        postings = PostingList()
        postings.append(5)
        with pytest.raises(ValueError):
            postings.append(5)
        with pytest.raises(ValueError):
            postings.append(4)

    def test_pop_restores_previous_tail(self):
        postings = PostingList()
        for position in (2, 7, 9):
            postings.append(position)
        assert postings.pop() == 9
        assert postings.last == 7
        assert postings.positions() == (2, 7)
        assert postings.pop() == 7
        assert postings.pop() == 2
        assert postings.last == -1
        assert not postings
        # Empty -> append works again from scratch.
        postings.append(11)
        assert postings.positions() == (11,)

    def test_payload_is_flat_machine_words(self):
        postings = PostingList()
        for position in range(1000):
            postings.append(position)
        # Delta encoding keeps each posting at array('I') item size —
        # no boxed ints, no pointers — plus one skip-table checkpoint
        # per _SKIP entries for the galloping seeks.
        item = postings._gaps.itemsize
        assert postings.nbytes() == 1000 * item + len(postings._skips) * item
        assert len(postings._skips) == -(-1000 // 32)  # ceil(n / _SKIP)


class TestCorpusIndex:
    def test_document_frequencies_track_adds_and_pops(self):
        index = CorpusIndex()
        index.append_record(Correctness.CORRECT, {"stack"}, {"the", "stack"}, "ann")
        index.append_record(Correctness.QUESTION, {"stack"}, {"the", "queue"}, "bob")
        assert index.token_df("the") == 2
        assert index.token_df("queue") == 1
        assert index.keyword_df("stack") == 2
        assert index.token_df("unseen") == 0
        index.pop_record(Correctness.QUESTION, {"stack"}, {"the", "queue"}, "bob")
        assert index.token_df("the") == 1
        assert index.token_df("queue") == 0  # empty postings are dropped
        assert index.keyword_df("stack") == 1

    def test_verdict_lookup_without_record_reads(self):
        index = CorpusIndex()
        index.append_record(Correctness.CORRECT, (), {"a"}, "u")
        index.append_record(Correctness.SYNTAX_ERROR, (), {"b"}, "u")
        assert index.is_correct(0) and not index.is_correct(1)
        assert index.verdict_at(1) is Correctness.SYNTAX_ERROR
        assert index.verdict_counts() == {
            Correctness.CORRECT: 1,
            Correctness.SYNTAX_ERROR: 1,
        }

    def test_pop_with_mismatched_terms_raises(self):
        index = CorpusIndex()
        index.append_record(Correctness.CORRECT, (), {"a"}, "u")
        index.append_record(Correctness.CORRECT, (), {"a", "b"}, "u")
        with pytest.raises((AssertionError, KeyError)):
            index.pop_record(Correctness.CORRECT, (), {"c"}, "u")

    def test_split_tokens_tiers_by_df_rarest_first(self):
        index = CorpusIndex(IndexConfig(stopword_df_cap=2))
        for i in range(4):
            index.append_record(
                Correctness.CORRECT, (), {"the", "data"} | ({"rare"} if i == 0 else set()), "u"
            )
        # DFs: the=4 (capped), data=4 (capped), rare=1.
        rare, capped = index.split_tokens({"the", "data", "rare", "zebra"})
        assert rare == ["rare"]  # zebra: df 0, dropped
        assert capped == ["data", "the"]  # df ties break lexicographically
        assert index.is_capped_token("the") and not index.is_capped_token("rare")

    def test_cap_none_disables_tiering(self):
        index = CorpusIndex(IndexConfig(stopword_df_cap=None))
        for _ in range(10):
            index.append_record(Correctness.CORRECT, (), {"the"}, "u")
        rare, capped = index.split_tokens({"the"})
        assert rare == ["the"] and capped == []
        assert not index.is_capped_token("the")

    def test_stats_reports_compacted_payload(self):
        index = CorpusIndex(IndexConfig(stopword_df_cap=1))
        index.append_record(Correctness.CORRECT, {"k"}, {"the", "a"}, "u")
        index.append_record(Correctness.CORRECT, {"k"}, {"the"}, "u")
        stats = index.stats()
        assert stats["records"] == 2
        assert stats["capped_tokens"] == 1  # "the" (df 2 > cap 1)
        assert stats["postings"] > 0 and stats["payload_bytes"] > 0


class TestStoreIndexDelegation:
    def seeded(self, cap=None) -> LearnerCorpus:
        corpus = LearnerCorpus(IndexConfig(stopword_df_cap=cap))
        add(corpus, "the stack holds the data", keywords=("stack",), user="ann")
        add(corpus, "the queue holds the data", keywords=("queue",), user="bob")
        add(corpus, "the tree the data holds", Correctness.SYNTAX_ERROR, ("tree",), "ann")
        add(corpus, "pop removes the top element", keywords=("pop", "top"), user="cat")
        add(corpus, "what is the queue", Correctness.QUESTION, ("queue",), "bob")
        return corpus

    def test_by_user_matches_filter(self):
        corpus = self.seeded()
        for user in ("ann", "bob", "cat", "nobody"):
            assert corpus.by_user(user) == corpus.filter(lambda r: r.user == user)

    def test_is_correct_matches_records(self):
        corpus = self.seeded()
        for position, record in enumerate(corpus.records()):
            assert corpus.is_correct(position) == (record.verdict is Correctness.CORRECT)
            assert corpus.verdict_at(position) is record.verdict

    def test_verdict_counts_match_scan(self):
        corpus = self.seeded()
        counts = corpus.verdict_counts()
        for verdict in Correctness:
            scanned = sum(1 for r in corpus.records() if r.verdict is verdict)
            assert counts.get(verdict, 0) == scanned

    def test_token_postings_match_scan_under_capped_config(self):
        corpus = self.seeded(cap=2)
        for token in ("the", "data", "queue", "pop", "unseen"):
            expected = tuple(
                position
                for position in range(len(corpus))
                if token in corpus.token_set(position)
            )
            assert corpus.token_positions(token) == expected, token


class TestTierBoundaryRetrieval:
    """Retrieval exactness at the stopword-tier boundary.

    Cap 2 on a small corpus makes "the"/"data" capped while the content
    words stay rare, so every contract branch is reachable cheaply.
    """

    def build(self, cap=2, max_candidates=512) -> tuple[LearnerCorpus, SuggestionSearch]:
        corpus = LearnerCorpus(IndexConfig(stopword_df_cap=cap))
        add(corpus, "the stack holds the data", keywords=("stack",))
        add(corpus, "the queue holds the data", keywords=("queue",))
        add(corpus, "the tree stores the data", keywords=("tree",))
        add(corpus, "the list keeps the data", keywords=("list",))
        add(corpus, "pop removes the top element", keywords=("pop",))
        add(corpus, "the data the data", Correctness.SYNTAX_ERROR)
        return corpus, SuggestionSearch(corpus, max_candidates=max_candidates)

    def brute_force(self, corpus, text, keywords=None, limit=3):
        from repro.linkgrammar.tokenizer import tokenize

        def jaccard(a, b):
            union = a | b
            return len(a & b) / len(union) if union else 0.0

        sentence = tokenize(text)
        query_tokens = frozenset(sentence.words)
        query_raw = sentence.raw.strip().lower()
        query_keywords = frozenset(k.lower() for k in (keywords or []))
        hits = []
        for position, record in enumerate(corpus.records()):
            if record.verdict != Correctness.CORRECT:
                continue
            if record.text.strip().lower() == query_raw:
                continue
            keyword_overlap = jaccard(query_keywords, corpus.keyword_set(position))
            token_overlap = jaccard(query_tokens, corpus.token_set(position))
            if keyword_overlap == 0.0 and token_overlap == 0.0:
                continue
            hits.append((record, keyword_overlap, token_overlap))
        hits.sort(key=lambda h: (-h[1], -h[2], h[0].record_id))
        return [h[0].record_id for h in hits[:limit]]

    def test_capped_only_query_falls_back_and_stays_exact(self):
        corpus, search = self.build()
        # "the data" — every query token is stopword-tier; retrieval
        # must fall back to the capped postings and, within the bound,
        # return exactly the brute-force ranking.
        got = [h.record.record_id for h in search.find("the data")]
        assert got == self.brute_force(corpus, "the data")
        assert got  # the fallback really produced suggestions

    def test_mixed_query_skips_capped_tier_but_keeps_exact_head(self):
        corpus, search = self.build()
        # "queue" is rare, "the"/"data" capped: the rare union already
        # finds the queue record, and the capped tier is skipped.  The
        # head of the ranking equals brute force (rare-term hits always
        # outscore records sharing only stopwords).
        got = [h.record.record_id for h in search.find("the queue data")]
        brute = self.brute_force(corpus, "the queue data")
        assert got[0] == brute[0] == 1
        # Documented approximation: candidates sharing *only* capped
        # terms with the query may be dropped from the weak tail.
        assert set(got) <= set(brute)

    def test_rare_terms_matching_no_correct_record_trigger_fallback(self):
        corpus, search = self.build()
        # "tree" matches a correct record, but "stores" only that same
        # one; craft a query whose sole rare token appears only in the
        # syntax-error record: rare union yields no CORRECT candidate,
        # so the capped tier must be walked rather than returning [].
        add(corpus, "zzz the data", Correctness.SYNTAX_ERROR)
        got = search.find("zzz the data")
        assert got  # fallback engaged; stopword-tier hits returned
        assert all(h.record.verdict is Correctness.CORRECT for h in got)

    def test_early_cut_bounds_the_capped_walk(self):
        corpus = LearnerCorpus(IndexConfig(stopword_df_cap=3))
        for i in range(40):
            add(corpus, f"the data item number {i}")
        search = SuggestionSearch(corpus, max_candidates=5)
        candidates = search._candidates(frozenset({"the", "data"}), frozenset(), 0.0)
        assert len(candidates) == 5
        assert candidates == sorted(candidates)
        # Earliest-records-first bias of the budgeted walk.
        assert candidates == [0, 1, 2, 3, 4]

    def test_query_matching_only_its_own_record_still_gets_fallback(self):
        # The rare union may retrieve exactly one correct record: the
        # query's own sentence, which ``find`` drops (never suggest a
        # sentence back to its author).  The capped tier must still be
        # walked so the learner gets the stopword-overlap suggestions
        # an uncapped index would have returned.
        corpus, search = self.build()
        plain_corpus, plain_search = self.build(cap=None)
        for target in (corpus, plain_corpus):
            add(target, "the zorbule keeps the data", keywords=())
        query = "the zorbule keeps the data"  # 'zorbule' df=1: rare, self-only
        capped_hits = [h.record.record_id for h in search.find(query)]
        plain_hits = [h.record.record_id for h in plain_search.find(query)]
        assert capped_hits  # fallback engaged despite the self-match
        assert set(capped_hits) <= set(plain_hits)

    def test_keyword_floor_path_ignores_token_tiers(self):
        corpus, search = self.build()
        hits = search.find("the data", keywords=["queue"], min_keyword_overlap=0.5)
        assert [h.record.record_id for h in hits] == [1]

    def test_uncapped_config_matches_capped_on_rare_queries(self):
        capped_corpus, capped = self.build(cap=2)
        plain_corpus, plain = self.build(cap=None)
        # No capped term in the query: the tiers cannot diverge at all.
        query = "pop removes an element"
        assert [h.record.record_id for h in capped.find(query)] == [
            h.record.record_id for h in plain.find(query)
        ]
        # Capped terms present alongside a rare one: the best hit (what
        # the learner sees) agrees; the capped config may drop the weak
        # stopword-only tail, never add to it.
        query = "the tree stores nodes"
        capped_hits = [h.record.record_id for h in capped.find(query)]
        plain_hits = [h.record.record_id for h in plain.find(query)]
        assert capped_hits[0] == plain_hits[0]
        assert set(capped_hits) <= set(plain_hits)


class TestMergePermutationCompactedPostings:
    """Shard-replica merges must keep compacted postings canonical:
    whatever order replicas merge in, the delta-encoded postings, DFs
    and tier assignments equal a single store fed in origin order."""

    SENTENCES = [
        ("the stack holds the data", Correctness.CORRECT, ("stack",), "ann"),
        ("the queue holds the data", Correctness.CORRECT, ("queue",), "bob"),
        ("push stores the element", Correctness.CORRECT, ("push",), "ann"),
        ("the tree the data holds", Correctness.SYNTAX_ERROR, ("tree",), "cat"),
        ("the stack has the pop", Correctness.CORRECT, ("stack", "pop"), "bob"),
        ("what is the queue", Correctness.QUESTION, ("queue",), "ann"),
        ("the list keeps the data", Correctness.CORRECT, ("list",), "cat"),
    ]
    CONFIG = IndexConfig(stopword_df_cap=2)  # "the"/"data" cross the cap mid-stream

    def sequential(self) -> LearnerCorpus:
        corpus = LearnerCorpus(self.CONFIG)
        for seq, (text, verdict, keywords, user) in enumerate(self.SENTENCES):
            corpus.add(
                make_record(corpus.next_id(), text, verdict, keywords, user, ts=float(seq))
            )
        return corpus

    def replicated(self, order: tuple[int, ...], shards: int = 3) -> LearnerCorpus:
        corpus = LearnerCorpus(self.CONFIG)
        replicas = [corpus.fork() for _ in range(shards)]
        for seq, (text, verdict, keywords, user) in enumerate(self.SENTENCES):
            replica = replicas[seq % shards]
            replica.begin_origin(seq)
            replica.add(
                make_record(replica.next_id(), text, verdict, keywords, user, ts=float(seq))
            )
        for index in order:
            corpus.merge(replicas[index])
        for replica in replicas:
            replica.rebase()
        return corpus

    def assert_indexes_equal(self, merged: LearnerCorpus, single: LearnerCorpus):
        tokens = {t for text, _, _, _ in self.SENTENCES for t in text.split()}
        for token in tokens:
            assert merged.token_positions(token) == single.token_positions(token), token
            assert merged.index.token_df(token) == single.index.token_df(token), token
            assert merged.index.is_capped_token(token) == single.index.is_capped_token(
                token
            ), token
        for keyword in ("stack", "queue", "tree", "push", "pop", "list"):
            assert merged.keyword_positions(keyword) == single.keyword_positions(keyword)
        for verdict in Correctness:
            assert merged.index.verdict_positions(verdict) == single.index.verdict_positions(
                verdict
            )
        for user in ("ann", "bob", "cat"):
            assert merged.index.user_positions(user) == single.index.user_positions(user)
        for position in range(len(single)):
            assert merged.verdict_at(position) is single.verdict_at(position)
        assert merged.index.stats() == single.index.stats()

    def test_every_merge_permutation_is_canonical(self):
        single = self.sequential()
        for order in itertools.permutations(range(3)):
            merged = self.replicated(order)
            assert merged.snapshot() == single.snapshot(), order
            self.assert_indexes_equal(merged, single)

    def test_merged_corpus_searches_like_single_store(self):
        single = self.sequential()
        merged = self.replicated((2, 0, 1))
        for query in ("the data", "the queue holds it", "push the element"):
            assert [h.record.record_id for h in SuggestionSearch(merged).find(query)] == [
                h.record.record_id for h in SuggestionSearch(single).find(query)
            ], query

    def test_multi_barrier_eviction_keeps_postings_compacted(self):
        # Two successive barriers: the second merge evicts and re-ingests
        # the first barrier's tail sibling records; postings must stay
        # identical to the sequential store and dataless terms must not
        # linger in the index.
        corpus = LearnerCorpus(self.CONFIG)
        first = self.SENTENCES[:4]
        second = self.SENTENCES[4:]
        for batch_base, batch in ((0, first), (len(first), second)):
            replicas = [corpus.fork() for _ in range(2)]
            for offset, (text, verdict, keywords, user) in enumerate(batch):
                replica = replicas[offset % 2]
                replica.begin_origin(batch_base + offset)
                replica.add(
                    make_record(
                        replica.next_id(),
                        text,
                        verdict,
                        keywords,
                        user,
                        ts=float(batch_base + offset),
                    )
                )
            for replica in reversed(replicas):  # worst-case order
                corpus.merge(replica)
            for replica in replicas:
                replica.rebase()
        self.assert_indexes_equal(corpus, self.sequential())
