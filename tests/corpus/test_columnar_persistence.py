"""Columnar corpus persistence: save/load without re-tokenisation."""

from __future__ import annotations

import json

import pytest

import repro.corpus.store as corpus_store
from repro.corpus.generator import CorporaGenerator
from repro.corpus.index import IndexConfig
from repro.corpus.records import Correctness, CorpusRecord
from repro.corpus.store import CORPUS_COLUMNAR_FORMAT, LearnerCorpus
from repro.ontology.domains import default_ontology
from repro.state.mergeable import snapshots_equal


@pytest.fixture(scope="module")
def seeded_corpus():
    corpus = LearnerCorpus()
    CorporaGenerator(default_ontology()).populate(corpus)
    corpus.add(
        CorpusRecord(
            record_id=corpus.next_id(),
            user="alice",
            room="ds-101",
            text="the stack overflowed badly",
            timestamp=7,
            pattern="statement",
            verdict=Correctness.SYNTAX_ERROR,
            syntax_issues=[("agreement", "overflowed")],
            semantic_issues=["stack is not a queue"],
            keywords=["Stack"],
            links="S(stack,overflowed)",
            cost=2,
        )
    )
    return corpus


class TestColumnarRoundTrip:
    def test_save_writes_one_columnar_document(self, seeded_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        seeded_corpus.save(path)
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert len(lines) == 1
        document = json.loads(lines[0])
        assert document["format"] == CORPUS_COLUMNAR_FORMAT
        assert document["records"] == len(seeded_corpus)

    def test_load_round_trips_records_and_queries(self, seeded_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        seeded_corpus.save(path)
        loaded = LearnerCorpus.load(path)
        assert snapshots_equal(loaded, seeded_corpus)
        assert loaded.index.stats() == seeded_corpus.index.stats()
        assert loaded.verdict_counts() == seeded_corpus.verdict_counts()
        for keyword in ("stack", "queue"):
            assert [r.to_dict() for r in loaded.with_keyword(keyword)] == [
                r.to_dict() for r in seeded_corpus.with_keyword(keyword)
            ]
        assert [r.to_dict() for r in loaded.by_user("alice")] == [
            r.to_dict() for r in seeded_corpus.by_user("alice")
        ]

    def test_load_never_tokenises(self, seeded_corpus, tmp_path, monkeypatch):
        """The PR-5 leftover, closed: corpus load is a columnar restore,
        not a re-ingestion — zero tokenizer calls."""
        path = tmp_path / "corpus.json"
        seeded_corpus.save(path)

        def forbidden(text):  # pragma: no cover - the assertion is that it never runs
            raise AssertionError(f"load re-tokenised {text!r}")

        monkeypatch.setattr(corpus_store, "tokenize", forbidden)
        loaded = LearnerCorpus.load(path)
        assert snapshots_equal(loaded, seeded_corpus)

    def test_loaded_corpus_accepts_new_records(self, seeded_corpus, tmp_path):
        path = tmp_path / "corpus.json"
        seeded_corpus.save(path)
        loaded = LearnerCorpus.load(path)
        record = CorpusRecord(
            record_id=loaded.next_id(),
            user="bob",
            room="ds-101",
            text="a queue uses enqueue",
            timestamp=9,
            pattern="statement",
            verdict=Correctness.CORRECT,
            keywords=["Queue"],
        )
        loaded.add(record)
        assert loaded.records()[-1] == record
        assert loaded.with_keyword("queue")[-1].user == "bob"

    def test_round_trip_preserves_index_config(self, tmp_path):
        corpus = LearnerCorpus(IndexConfig(stopword_df_cap=7))
        path = tmp_path / "corpus.json"
        corpus.save(path)
        loaded = LearnerCorpus.load(path, IndexConfig(stopword_df_cap=7))
        assert loaded.index.config.stopword_df_cap == 7

    def test_empty_corpus_round_trips(self, tmp_path):
        path = tmp_path / "empty.json"
        LearnerCorpus().save(path)
        assert len(LearnerCorpus.load(path)) == 0

    def test_empty_file_loads_as_empty_corpus(self, tmp_path):
        path = tmp_path / "blank.json"
        path.write_text("", encoding="utf-8")
        assert len(LearnerCorpus.load(path)) == 0


class TestLegacyFormat:
    def test_legacy_jsonl_rows_still_load(self, seeded_corpus, tmp_path):
        path = tmp_path / "legacy.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            for position in range(len(seeded_corpus)):
                row = seeded_corpus.columns.to_dict(position)
                handle.write(json.dumps(row, ensure_ascii=False) + "\n")
        loaded = LearnerCorpus.load(path)
        assert snapshots_equal(loaded, seeded_corpus)


class TestColumnValidation:
    def test_misaligned_scalar_column_fails_loudly(self, seeded_corpus, tmp_path):
        document = seeded_corpus.to_columnar()
        document["columns"]["verdicts"] = document["columns"]["verdicts"][:-1]
        fresh = LearnerCorpus()
        with pytest.raises(ValueError, match="misaligned"):
            fresh.restore_columnar(document)

    def test_malformed_offset_table_fails_loudly(self, seeded_corpus):
        document = seeded_corpus.to_columnar()
        document["columns"]["token_offsets"][0] = 1
        fresh = LearnerCorpus()
        with pytest.raises(ValueError, match="offset table"):
            fresh.restore_columnar(document)

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(ValueError, match="columnar"):
            LearnerCorpus().restore_columnar({"format": "something-else"})
