"""Learner corpus: records, store, search, statistics, generation."""

from __future__ import annotations

import pytest

from repro.corpus import (
    CorporaGenerator,
    Correctness,
    CorpusRecord,
    LearnerCorpus,
    StatisticAnalyzer,
    SuggestionSearch,
)
from repro.ontology.domains import default_ontology


def _record(
    corpus: LearnerCorpus,
    text: str,
    user: str = "alice",
    verdict: Correctness = Correctness.CORRECT,
    keywords: list[str] | None = None,
    syntax_issues: list[tuple[str, str]] | None = None,
    pattern: str = "simple",
) -> CorpusRecord:
    return corpus.add(
        CorpusRecord(
            record_id=corpus.next_id(),
            user=user,
            room="r",
            text=text,
            timestamp=float(corpus.next_id()),
            pattern=pattern,
            verdict=verdict,
            keywords=keywords or [],
            syntax_issues=syntax_issues or [],
        )
    )


class TestStore:
    def test_add_and_len(self):
        corpus = LearnerCorpus()
        _record(corpus, "The stack is full.")
        assert len(corpus) == 1

    def test_query_by_user(self):
        corpus = LearnerCorpus()
        _record(corpus, "a", user="alice")
        _record(corpus, "b", user="bob")
        assert len(corpus.by_user("alice")) == 1

    def test_query_by_verdict(self):
        corpus = LearnerCorpus()
        _record(corpus, "a")
        _record(corpus, "b", verdict=Correctness.SYNTAX_ERROR)
        assert len(corpus.correct_records()) == 1
        assert len(corpus.by_verdict(Correctness.SYNTAX_ERROR)) == 1

    def test_with_keyword_case_insensitive(self):
        corpus = LearnerCorpus()
        _record(corpus, "a", keywords=["Stack"])
        assert len(corpus.with_keyword("stack")) == 1

    def test_round_trip(self, tmp_path):
        corpus = LearnerCorpus()
        _record(corpus, "The stack is full.", keywords=["stack"],
                syntax_issues=[("style", "")])
        _record(corpus, "bad one", verdict=Correctness.SYNTAX_ERROR)
        path = tmp_path / "corpus.jsonl"
        corpus.save(path)
        loaded = LearnerCorpus.load(path)
        assert len(loaded) == 2
        assert loaded.records()[0].text == "The stack is full."
        assert loaded.records()[0].syntax_issues == [("style", "")]
        assert loaded.records()[1].verdict == Correctness.SYNTAX_ERROR


class TestSuggestionSearch:
    def test_prefers_keyword_overlap(self):
        corpus = LearnerCorpus()
        _record(corpus, "The stack supports push.", keywords=["stack", "push"])
        _record(corpus, "The queue supports enqueue.", keywords=["queue", "enqueue"])
        search = SuggestionSearch(corpus)
        best = search.best_sentence("stack push wrong", keywords=["stack", "push"])
        assert best == "The stack supports push."

    def test_never_suggests_input_back(self):
        corpus = LearnerCorpus()
        _record(corpus, "The stack is full.", keywords=["stack"])
        search = SuggestionSearch(corpus)
        assert search.best_sentence("The stack is full.", keywords=["stack"]) is None

    def test_incorrect_records_excluded(self):
        corpus = LearnerCorpus()
        _record(corpus, "stack the broken", verdict=Correctness.SYNTAX_ERROR,
                keywords=["stack"])
        search = SuggestionSearch(corpus)
        assert search.best_sentence("stack something", keywords=["stack"]) is None

    def test_token_overlap_fallback(self):
        corpus = LearnerCorpus()
        _record(corpus, "The tree is tall.")
        search = SuggestionSearch(corpus)
        hits = search.find("the tree is big")
        assert hits and hits[0].record.text == "The tree is tall."

    def test_limit(self):
        corpus = LearnerCorpus()
        for i in range(10):
            _record(corpus, f"The stack is number {i}.", keywords=["stack"])
        search = SuggestionSearch(corpus)
        assert len(search.find("stack", keywords=["stack"], limit=3)) == 3


class TestStatistics:
    def _populated(self) -> LearnerCorpus:
        corpus = LearnerCorpus()
        _record(corpus, "good", user="alice", keywords=["stack"])
        _record(corpus, "bad", user="alice", verdict=Correctness.SYNTAX_ERROR,
                syntax_issues=[("unlinked-word", "the")])
        _record(corpus, "odd", user="bob", verdict=Correctness.SEMANTIC_ERROR)
        _record(corpus, "q?", user="bob", verdict=Correctness.QUESTION, pattern="question")
        return corpus

    def test_report_counts(self):
        report = StatisticAnalyzer(self._populated()).report()
        assert report.messages == 4
        assert dict(report.verdict_counts)["syntax-error"] == 1
        assert dict(report.pattern_counts)["question"] == 1

    def test_user_report(self):
        analyzer = StatisticAnalyzer(self._populated())
        alice = analyzer.user_report("alice")
        assert alice.messages == 2
        assert alice.syntax_errors == 1
        assert alice.accuracy == 0.5

    def test_question_excluded_from_accuracy(self):
        analyzer = StatisticAnalyzer(self._populated())
        bob = analyzer.user_report("bob")
        assert bob.questions == 1
        assert bob.accuracy == 0.0  # one statement, which was a semantic error

    def test_most_common_mistakes(self):
        analyzer = StatisticAnalyzer(self._populated())
        mistakes = dict(analyzer.most_common_mistakes())
        assert mistakes["unlinked-word"] == 1
        # The semantic-error record carried no itemised notes, so no
        # semantic-violation entries are counted.
        assert "semantic-violation" not in mistakes

    def test_struggling_users_sorted(self):
        analyzer = StatisticAnalyzer(self._populated())
        worst = analyzer.struggling_users(minimum_messages=1)
        assert worst[0].accuracy <= worst[-1].accuracy

    def test_topic_counts(self):
        report = StatisticAnalyzer(self._populated()).report()
        assert dict(report.topic_counts).get("stack") == 1


class TestCorporaGenerator:
    def test_populates_seed_sentences(self):
        corpus = LearnerCorpus()
        count = CorporaGenerator(default_ontology()).populate(corpus)
        assert count == len(corpus) > 80

    def test_seed_records_are_correct(self):
        corpus = LearnerCorpus()
        CorporaGenerator(default_ontology()).populate(corpus)
        assert all(r.verdict == Correctness.CORRECT for r in corpus)

    def test_seed_sentences_parse(self, full_parser):
        generator = CorporaGenerator(default_ontology())
        capability = [
            text for text, _kw in generator.seed_sentences() if "supports the" in text
        ]
        assert capability
        for text in capability[:10]:
            assert full_parser.parse(text).null_count == 0, text

    def test_paper_definition_seeded(self):
        corpus = LearnerCorpus()
        CorporaGenerator(default_ontology()).populate(corpus)
        texts = [record.text for record in corpus]
        assert any(text.startswith("A stack is a Last In, First Out") for text in texts)
